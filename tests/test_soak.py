"""Soak test: every feature active at once on one network.

A single scenario exercises the full surface in sequence — relay-driven
compact blocks with parity protection, a fork + reorg, churn (join,
graceful leave, crash with parity recovery), SPV checks, and retrieval
under failure — then asserts the global invariants one last time.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS

#: Population multiplier for CI soak runs (block counts stay fixed so the
#: height/reorg assertions hold at any scale).
SOAK_SCALE = max(1, int(os.environ.get("SOAK_SCALE", "1")))


@pytest.fixture(scope="module")
def soaked():
    deployment = ICIDeployment(
        24 * SOAK_SCALE,
        config=ICIConfig(
            n_clusters=3 * SOAK_SCALE,
            replication=1,
            parity_group_size=3,
            compact_blocks=True,
            limits=TEST_LIMITS,
            seed=42,
        ),
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=42)

    # Phase 1: relay-driven production with compact dissemination.
    runner.produce_blocks_via_relay(6, txs_per_block=5)
    # Phase 2: a fork that wins.
    runner.produce_fork(fork_from_height=4, length=4)
    # Phase 3: more production on the new chain (direct mode).
    runner.produce_blocks(4, txs_per_block=4)
    # Phase 4: churn — join, then graceful leave, then crash.
    join = deployment.join_new_node()
    deployment.run()
    assert join.complete
    cluster = join.cluster_id
    leaver = next(
        m
        for m in deployment.clusters.members_of(cluster)
        if m != join.node_id
    )
    leave = deployment.leave_node(leaver)
    deployment.run()
    assert leave.complete
    deployment.parity.flush(deployment)
    crash_victim = next(
        m
        for m in deployment.clusters.members_of(cluster)
        if m != join.node_id
    )
    crash = deployment.repair_after_crash(crash_victim)
    deployment.run()
    # Phase 5: final production round proving the network still works.
    report = runner.produce_blocks(2, txs_per_block=3)
    return deployment, runner, crash, report


class TestSoak:
    def test_chain_advanced_through_everything(self, soaked):
        deployment, runner, _crash, _report = soaked
        # 6 relay + 4 fork (replacing 2) + 4 + 2 = height 14.
        assert deployment.ledger.height == 14
        assert deployment.reorg_count == 1

    def test_no_blocks_rejected(self, soaked):
        deployment, *_ = soaked
        assert not deployment.metrics.blocks_rejected

    def test_crash_lost_nothing_thanks_to_parity(self, soaked):
        _deployment, _runner, crash, _report = soaked
        assert crash.complete
        assert not crash.lost_blocks

    def test_intra_cluster_integrity_everywhere(self, soaked):
        deployment, *_ = soaked
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_every_node_fully_synced_headers(self, soaked):
        deployment, _runner, _crash, report = soaked
        # All *active* headers are known to every surviving node.
        for node in deployment.nodes.values():
            for header in deployment.ledger.store.iter_active_headers():
                assert node.store.has_header(header.block_hash)

    def test_final_blocks_finalized_everywhere(self, soaked):
        deployment, _runner, _crash, report = soaked
        for block_hash in report.block_hashes:
            for view in deployment.clusters.views():
                assert (
                    block_hash,
                    view.cluster_id,
                ) in deployment.metrics.cluster_finalized_at

    def test_spv_works_after_the_dust_settles(self, soaked):
        deployment, _runner, _crash, report = soaked
        light = deployment.attach_light_client()
        block = report.blocks[-1]
        record = deployment.spv_check(
            light.node_id, block.block_hash, block.transactions[0].txid
        )
        deployment.run()
        assert record.verified is True

    def test_retrieval_still_works(self, soaked):
        deployment, _runner, _crash, report = soaked
        block_hash = report.block_hashes[0]
        header = deployment.ledger.store.header(block_hash)
        for view in deployment.clusters.views():
            holders = set(
                deployment.holders_in_cluster(header, view.cluster_id)
            )
            requester = next(
                m for m in view.members if m not in holders
            )
            record = deployment.retrieve_block(requester, block_hash)
            deployment.run()
            assert record.latency is not None

    def test_storage_stays_fractional(self, soaked):
        deployment, *_ = soaked
        ledger_bytes = deployment.ledger.store.stored_bytes
        storage = deployment.storage_report()
        assert storage.mean_node_bytes < 0.6 * ledger_bytes


class TestChaosSoak:
    """Chaos endurance at soak scale: hostile weather on a big population."""

    def test_chaos_endurance_at_scale(self):
        from repro.sim.chaos import ChaosConfig, run_chaos

        outcome = run_chaos(
            ChaosConfig(
                seed=42,
                n_nodes=16 * SOAK_SCALE,
                n_clusters=4 * SOAK_SCALE,
                replication=2,
                n_blocks=8,
                drop_rate=0.2,
                duplicate_rate=0.05,
                delay_rate=0.05,
                crash_count=SOAK_SCALE,
                partition=True,
            ),
            limits=TEST_LIMITS,
        )
        assert outcome.integrity_restored, outcome.cluster_integrity
        assert outcome.bootstrap_complete
        assert outcome.fault_stats["recoveries"] == SOAK_SCALE
        assert outcome.queries_completed == outcome.queries_attempted
