"""Unit + property tests for clustering: coordinates, membership, algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.algorithms import (
    KMeansClustering,
    LatencyAwareGreedyClustering,
    RandomBalancedClustering,
    clusters_for_target_size,
)
from repro.clustering.coordinates import (
    centroid,
    distance,
    mean_pairwise_distance,
    place_regions,
    place_uniform,
)
from repro.clustering.membership import ClusterTable
from repro.errors import ClusteringError, ConfigurationError


class TestCoordinates:
    def test_place_uniform_count_and_bounds(self):
        points = place_uniform(50, extent=10.0, seed=1)
        assert len(points) == 50
        for x, y in points:
            assert 0.0 <= x <= 10.0
            assert 0.0 <= y <= 10.0

    def test_place_uniform_deterministic(self):
        assert place_uniform(10, seed=3) == place_uniform(10, seed=3)

    def test_place_regions_clumps(self):
        """Same-region nodes sit closer than the global average."""
        points = place_regions(100, n_regions=4, seed=0)
        same_region = [points[i] for i in range(0, 100, 4)]  # region 0
        assert mean_pairwise_distance(same_region) < mean_pairwise_distance(
            points
        )

    def test_distance_and_centroid(self):
        assert distance((0, 0), (3, 4)) == 5.0
        assert centroid([(0, 0), (2, 2)]) == (1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ConfigurationError):
            centroid([])

    def test_mean_pairwise_small_sets(self):
        assert mean_pairwise_distance([]) == 0.0
        assert mean_pairwise_distance([(1, 1)]) == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            place_uniform(-1)


class TestClusterTable:
    def test_from_assignment_and_lookup(self):
        table = ClusterTable.from_assignment([[0, 1], [2, 3, 4]])
        assert table.cluster_count == 2
        assert table.node_count == 5
        assert table.cluster_of(3) == 1
        assert table.members_of(0) == (0, 1)
        assert table.peers_of(3) == (2, 4)

    def test_duplicate_membership_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterTable.from_assignment([[0, 1], [1, 2]])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusteringError):
            ClusterTable.from_assignment([[0], []])

    def test_unknown_lookups_raise(self):
        table = ClusterTable.from_assignment([[0]])
        with pytest.raises(ClusteringError):
            table.cluster_of(9)
        with pytest.raises(ClusteringError):
            table.members_of(5)

    def test_add_node_defaults_to_smallest(self):
        table = ClusterTable.from_assignment([[0, 1, 2], [3]])
        joined = table.add_node(10)
        assert joined == 1
        assert table.cluster_of(10) == 1

    def test_add_duplicate_rejected(self):
        table = ClusterTable.from_assignment([[0]])
        with pytest.raises(ClusteringError):
            table.add_node(0)

    def test_remove_node(self):
        table = ClusterTable.from_assignment([[0, 1], [2]])
        assert table.remove_node(1) == 0
        assert not table.contains(1)

    def test_remove_last_member_rejected(self):
        table = ClusterTable.from_assignment([[0, 1], [2]])
        with pytest.raises(ClusteringError):
            table.remove_node(2)

    def test_move_node(self):
        table = ClusterTable.from_assignment([[0, 1], [2]])
        table.move_node(1, 1)
        assert table.cluster_of(1) == 1
        assert table.sizes() == [1, 2]

    def test_move_would_empty_rejected(self):
        table = ClusterTable.from_assignment([[0], [1]])
        with pytest.raises(ClusteringError):
            table.move_node(0, 1)

    def test_views_and_sizes(self):
        table = ClusterTable.from_assignment([[0, 1], [2]])
        views = list(table.views())
        assert views[0].size == 2
        assert views[1].members == (2,)
        assert table.sizes() == [2, 1]

    def test_invariants_pass_after_mutations(self):
        table = ClusterTable.from_assignment([[0, 1, 2], [3, 4]])
        table.add_node(5)
        table.move_node(0, 1)
        table.remove_node(4)
        table.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=30),
    )
    def test_random_mutation_sequence_keeps_invariants(self, k, size, ops):
        import random

        rng = random.Random(ops)
        table = ClusterTable.from_assignment(
            [list(range(i * size, (i + 1) * size)) for i in range(k)]
        )
        next_id = k * size
        for _ in range(ops):
            action = rng.choice(["add", "remove", "move"])
            try:
                if action == "add":
                    table.add_node(next_id)
                    next_id += 1
                elif action == "remove":
                    table.remove_node(rng.choice(table.all_nodes()))
                else:
                    table.move_node(
                        rng.choice(table.all_nodes()),
                        rng.randrange(table.cluster_count),
                    )
            except ClusteringError:
                pass  # rejected mutations must leave the table intact
            table.check_invariants()


class TestRandomBalanced:
    def test_sizes_differ_by_at_most_one(self):
        table = RandomBalancedClustering(seed=0).form_clusters(
            list(range(23)), 4
        )
        sizes = table.sizes()
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 23

    def test_deterministic(self):
        a = RandomBalancedClustering(seed=5).form_clusters(range(12), 3)
        b = RandomBalancedClustering(seed=5).form_clusters(range(12), 3)
        assert [v.members for v in a.views()] == [
            v.members for v in b.views()
        ]

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ClusteringError):
            RandomBalancedClustering().form_clusters([0, 1], 3)

    def test_zero_clusters_rejected(self):
        with pytest.raises(ClusteringError):
            RandomBalancedClustering().form_clusters([0, 1], 0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ClusteringError):
            RandomBalancedClustering().form_clusters([0, 0, 1], 2)


class TestKMeans:
    def test_partitions_everything(self):
        points = place_regions(40, n_regions=4, seed=1)
        table = KMeansClustering(points, seed=1).form_clusters(
            list(range(40)), 4
        )
        assert table.node_count == 40
        table.check_invariants()

    def test_balancing_caps_cluster_size(self):
        points = place_regions(40, n_regions=2, seed=2)
        table = KMeansClustering(points, seed=2).form_clusters(
            list(range(40)), 4
        )
        assert max(table.sizes()) <= 10 + 1  # ceil(40/4) with slack

    def test_compactness_beats_random(self):
        """k-means clusters are geographically tighter than random ones."""
        points = place_regions(60, n_regions=4, seed=3)
        kmeans = KMeansClustering(points, seed=3).form_clusters(
            list(range(60)), 4
        )
        rand = RandomBalancedClustering(seed=3).form_clusters(
            list(range(60)), 4
        )

        def spread(table):
            total = 0.0
            for view in table.views():
                total += mean_pairwise_distance(
                    [points[m] for m in view.members]
                )
            return total

        assert spread(kmeans) < spread(rand)

    def test_missing_coordinate_raises(self):
        with pytest.raises(ClusteringError):
            KMeansClustering([(0, 0)]).form_clusters([0, 5], 1)


class TestLatencyAwareGreedy:
    def test_balanced_sizes(self):
        points = place_uniform(30, seed=4)
        table = LatencyAwareGreedyClustering(points, seed=4).form_clusters(
            list(range(30)), 5
        )
        sizes = table.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_all_assigned(self):
        points = place_uniform(17, seed=5)
        table = LatencyAwareGreedyClustering(points, seed=5).form_clusters(
            list(range(17)), 3
        )
        assert table.node_count == 17
        table.check_invariants()

    def test_compactness_beats_random(self):
        points = place_regions(48, n_regions=4, seed=6)
        greedy = LatencyAwareGreedyClustering(points, seed=6).form_clusters(
            list(range(48)), 4
        )
        rand = RandomBalancedClustering(seed=6).form_clusters(
            list(range(48)), 4
        )

        def spread(table):
            return sum(
                mean_pairwise_distance([points[m] for m in view.members])
                for view in table.views()
            )

        assert spread(greedy) < spread(rand)


class TestTargetSize:
    def test_rounds_to_nearest_cluster_count(self):
        table = clusters_for_target_size(
            list(range(100)), 25, RandomBalancedClustering(seed=0)
        )
        assert table.cluster_count == 4

    def test_minimum_one_cluster(self):
        table = clusters_for_target_size(
            list(range(3)), 100, RandomBalancedClustering(seed=0)
        )
        assert table.cluster_count == 1

    def test_bad_target_rejected(self):
        with pytest.raises(ClusteringError):
            clusters_for_target_size(
                [0, 1], 0, RandomBalancedClustering()
            )
