"""Integration tests for intra-cluster retrieval and bootstrap."""

from __future__ import annotations

import pytest

from repro.chain.block import HEADER_SIZE
from repro.core.config import ICIConfig
from repro.core.icistrategy import QUERY_TIMEOUT, ICIDeployment
from repro.errors import UnknownBlockError
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deployed(n_nodes=16, n_blocks=6, **config_kwargs):
    config_kwargs.setdefault("n_clusters", 4)
    config_kwargs.setdefault("replication", 2)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(n_nodes, config=ICIConfig(**config_kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(n_blocks, txs_per_block=3)
    return deployment, report


def non_holder_of(deployment, block_hash):
    header = deployment.ledger.store.header(block_hash)
    for view in deployment.clusters.views():
        holders = set(
            deployment.holders_in_cluster(header, view.cluster_id)
        )
        for member in view.members:
            if member not in holders:
                return member, holders
    raise AssertionError("every member is a holder?")


class TestRetrieval:
    def test_local_hit_is_instant(self):
        deployment, report = deployed()
        block_hash = report.block_hashes[0]
        header = deployment.ledger.store.header(block_hash)
        holder = deployment.holders_in_cluster(header, 0)[0]
        record = deployment.retrieve_block(holder, block_hash)
        assert record.latency == 0.0

    def test_remote_fetch_from_cluster_mate(self):
        deployment, report = deployed()
        block_hash = report.block_hashes[1]
        requester, _ = non_holder_of(deployment, block_hash)
        record = deployment.retrieve_block(requester, block_hash)
        deployment.run()
        assert record.latency is not None
        assert 0 < record.latency < QUERY_TIMEOUT
        assert record.attempts == 1

    def test_unknown_block_raises(self):
        deployment, _ = deployed()
        from repro.crypto.hashing import sha256

        with pytest.raises(UnknownBlockError):
            deployment.retrieve_block(0, sha256(b"nonexistent"))

    def test_failed_holder_triggers_retry(self):
        deployment, report = deployed()
        block_hash = report.block_hashes[2]
        requester, _holders = non_holder_of(deployment, block_hash)
        header = deployment.ledger.store.header(block_hash)
        cluster = deployment.nodes[requester].cluster_id
        in_cluster_holders = [
            h
            for h in deployment.holders_in_cluster(header, cluster)
            if h != requester
        ]
        deployment.network.set_online(in_cluster_holders[0], False)
        record = deployment.retrieve_block(requester, block_hash)
        deployment.run()
        assert record.latency is not None
        assert record.attempts >= 2

    def test_all_holders_down_query_fails(self):
        deployment, report = deployed()
        block_hash = report.block_hashes[3]
        requester, _ = non_holder_of(deployment, block_hash)
        header = deployment.ledger.store.header(block_hash)
        cluster = deployment.nodes[requester].cluster_id
        for holder in deployment.holders_in_cluster(header, cluster):
            deployment.network.set_online(holder, False)
        record = deployment.retrieve_block(requester, block_hash)
        deployment.run()
        assert record.latency is None  # data unavailable in-cluster

    def test_mean_query_latency_metric(self):
        deployment, report = deployed()
        requester, _ = non_holder_of(deployment, report.block_hashes[0])
        deployment.retrieve_block(requester, report.block_hashes[0])
        deployment.run()
        assert deployment.metrics.mean_query_latency() is not None


class TestBootstrap:
    def test_join_completes_and_is_cheap(self):
        deployment, report = deployed(n_blocks=8)
        total_ledger = deployment.ledger.store.stored_bytes
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        assert join.header_bytes == HEADER_SIZE * 9  # genesis + 8
        # The joiner downloads far less than the ledger.
        assert join.total_bytes < total_ledger
        assert join.duration is not None and join.duration > 0

    def test_joiner_gets_exactly_its_assignment(self):
        deployment, _ = deployed(n_blocks=8)
        join = deployment.join_new_node()
        deployment.run()
        joiner = deployment.nodes[join.node_id]
        members = deployment.clusters.members_of(join.cluster_id)
        expected = sum(
            join.node_id
            in deployment.placement.holders(header, members, 2)
            for header in joiner.store.iter_active_headers()
        )
        assert joiner.store.body_count == expected
        assert join.bodies_fetched == expected

    def test_integrity_preserved_through_join(self):
        deployment, _ = deployed(n_blocks=8)
        join = deployment.join_new_node()
        deployment.run()
        assert deployment.cluster_holds_full_ledger(join.cluster_id)

    def test_displaced_holders_prune(self):
        """After a join, each block still has exactly r in-cluster copies."""
        deployment, _ = deployed(n_blocks=10)
        join = deployment.join_new_node()
        deployment.run()
        members = deployment.clusters.members_of(join.cluster_id)
        for header in deployment.ledger.store.iter_active_headers():
            copies = sum(
                deployment.nodes[m].store.has_body(header.block_hash)
                for m in members
            )
            assert copies == 2, f"height {header.height} has {copies} copies"

    def test_join_lands_in_smallest_cluster(self):
        deployment, _ = deployed()
        smallest = deployment.clusters.smallest_cluster()
        join = deployment.join_new_node()
        deployment.run()
        assert join.cluster_id == smallest

    def test_successive_joins(self):
        deployment, _ = deployed(n_blocks=6)
        for _ in range(3):
            join = deployment.join_new_node()
            deployment.run()
            assert join.complete
        assert deployment.node_count == 19
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_joiner_can_serve_and_query(self):
        deployment, report = deployed(n_blocks=8)
        join = deployment.join_new_node()
        deployment.run()
        # The joiner can retrieve any block it does not hold.
        target = next(
            h
            for h in report.block_hashes
            if not deployment.nodes[join.node_id].store.has_body(h)
        )
        record = deployment.retrieve_block(join.node_id, target)
        deployment.run()
        assert record.latency is not None

    def test_bootstrap_cost_scales_inversely_with_cluster_size(self):
        small, _ = deployed(n_nodes=8, n_clusters=4, n_blocks=8)  # m=2
        big, _ = deployed(n_nodes=16, n_clusters=2, n_blocks=8)  # m=8
        join_small = small.join_new_node()
        small.run()
        join_big = big.join_new_node()
        big.run()
        assert join_big.body_bytes < join_small.body_bytes

    def test_state_snapshot_charged(self):
        deployment, _ = deployed(state_snapshot_bytes=5000)
        join = deployment.join_new_node()
        deployment.run()
        assert join.snapshot_bytes == 5000
        assert join.total_bytes >= 5000

    def test_join_completes_despite_preexisting_data_loss(self):
        """Regression: an r=1 crash loses blocks; a later join must not
        hang waiting for bodies nobody can serve."""
        deployment, _ = deployed(
            n_nodes=16, n_clusters=4, replication=1, n_blocks=8
        )
        # Crash members until some cluster has actually lost blocks.
        lost_any = False
        for view in list(deployment.clusters.views()):
            if view.size <= 2:
                continue
            crash = deployment.repair_after_crash(view.members[0])
            deployment.run()
            if crash.lost_blocks:
                lost_any = True
                break
        if not lost_any:
            pytest.skip("no cluster lost data under this seed")
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        # Lost bodies that fell to the joiner are recorded, not hung on.
        for block_hash in join.bodies_unavailable:
            assert block_hash in crash.lost_blocks
