"""Unit tests for attestations, commit votes, quorum certificates, costs."""

from __future__ import annotations

import pytest

from repro.consensus.quorum import Vote
from repro.core.verification import (
    CommitVote,
    PrepareAttestation,
    QuorumCertificate,
    VerificationCosts,
)
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import ConsensusError

BLOCK = sha256(b"block")


class TestPrepareAttestation:
    def test_create_and_check(self):
        keypair = KeyPair.from_seed(1)
        att = PrepareAttestation.create(keypair, BLOCK, 1, Vote.ACCEPT)
        assert att.check(keypair.public_key)

    def test_wrong_key_fails(self):
        att = PrepareAttestation.create(
            KeyPair.from_seed(1), BLOCK, 1, Vote.ACCEPT
        )
        assert not att.check(KeyPair.from_seed(2).public_key)

    def test_vote_is_bound(self):
        keypair = KeyPair.from_seed(1)
        att = PrepareAttestation.create(keypair, BLOCK, 1, Vote.ACCEPT)
        flipped = PrepareAttestation(
            block_hash=att.block_hash,
            holder=att.holder,
            vote=Vote.REJECT,
            signature=att.signature,
        )
        assert not flipped.check(keypair.public_key)

    def test_holder_is_bound(self):
        keypair = KeyPair.from_seed(1)
        att = PrepareAttestation.create(keypair, BLOCK, 1, Vote.ACCEPT)
        moved = PrepareAttestation(
            block_hash=att.block_hash,
            holder=2,
            vote=att.vote,
            signature=att.signature,
        )
        assert not moved.check(keypair.public_key)


class TestCommitVote:
    def test_create_and_check(self):
        keypair = KeyPair.from_seed(3)
        commit = CommitVote.create(keypair, BLOCK, 3, Vote.ACCEPT)
        assert commit.check(keypair.public_key)

    def test_prepare_and_commit_domains_differ(self):
        """A prepare signature must not validate as a commit."""
        keypair = KeyPair.from_seed(3)
        prepare = PrepareAttestation.create(keypair, BLOCK, 3, Vote.ACCEPT)
        cross = CommitVote(
            block_hash=BLOCK,
            member=3,
            vote=Vote.ACCEPT,
            signature=prepare.signature,
        )
        assert not cross.check(keypair.public_key)


def certificate_for(members: range, vote: Vote = Vote.ACCEPT):
    commits = tuple(
        CommitVote.create(KeyPair.from_seed(m), BLOCK, m, vote)
        for m in members
    )
    return QuorumCertificate(block_hash=BLOCK, vote=vote, commits=commits)


class TestQuorumCertificate:
    def test_valid_certificate_checks(self):
        cert = certificate_for(range(3))
        keys = {
            m: KeyPair.from_seed(m).public_key for m in range(3)
        }
        assert cert.check(keys, quorum=3)

    def test_below_quorum_fails(self):
        cert = certificate_for(range(2))
        keys = {m: KeyPair.from_seed(m).public_key for m in range(2)}
        assert not cert.check(keys, quorum=3)

    def test_duplicate_members_do_not_inflate(self):
        keypair = KeyPair.from_seed(0)
        commit = CommitVote.create(keypair, BLOCK, 0, Vote.ACCEPT)
        cert = QuorumCertificate(
            block_hash=BLOCK, vote=Vote.ACCEPT, commits=(commit, commit)
        )
        assert not cert.check({0: keypair.public_key}, quorum=2)

    def test_unknown_member_fails(self):
        cert = certificate_for(range(3))
        keys = {m: KeyPair.from_seed(m).public_key for m in range(2)}
        assert not cert.check(keys, quorum=3)

    def test_mixed_blocks_rejected_at_construction(self):
        good = CommitVote.create(KeyPair.from_seed(0), BLOCK, 0, Vote.ACCEPT)
        other = CommitVote.create(
            KeyPair.from_seed(1), sha256(b"other"), 1, Vote.ACCEPT
        )
        with pytest.raises(ConsensusError):
            QuorumCertificate(
                block_hash=BLOCK, vote=Vote.ACCEPT, commits=(good, other)
            )

    def test_mixed_verdicts_rejected(self):
        accept = CommitVote.create(
            KeyPair.from_seed(0), BLOCK, 0, Vote.ACCEPT
        )
        reject = CommitVote.create(
            KeyPair.from_seed(1), BLOCK, 1, Vote.REJECT
        )
        with pytest.raises(ConsensusError):
            QuorumCertificate(
                block_hash=BLOCK, vote=Vote.ACCEPT, commits=(accept, reject)
            )

    def test_wire_bytes_grow_with_quorum(self):
        small = certificate_for(range(2))
        large = certificate_for(range(5))
        assert large.wire_bytes > small.wire_bytes


class TestVerificationCosts:
    def test_charges_accumulate(self, ledger, alice, bob):
        from tests.conftest import make_transfer_block

        block = make_transfer_block(ledger, alice, bob, 10)
        costs = VerificationCosts()
        full = costs.charge_full_validation(block)
        header = costs.charge_header_check()
        assert costs.full_validations == 1
        assert costs.header_checks == 1
        assert costs.cpu_seconds == pytest.approx(full + header)
        assert full > header
