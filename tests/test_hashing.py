"""Unit tests for repro.crypto.hashing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import hashing


class TestSha256:
    def test_sha256_known_vector(self):
        # SHA-256("") is a published constant.
        assert (
            hashing.sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256d_is_double_hash(self):
        data = b"repro"
        assert hashing.sha256d(data) == hashing.sha256(hashing.sha256(data))

    def test_digest_sizes(self):
        assert len(hashing.sha256(b"x")) == hashing.HASH_SIZE
        assert len(hashing.sha256d(b"x")) == hashing.HASH_SIZE
        assert len(hashing.ZERO_HASH) == hashing.HASH_SIZE

    def test_accepts_bytearray_and_memoryview(self):
        raw = b"payload"
        assert hashing.sha256(bytearray(raw)) == hashing.sha256(raw)
        assert hashing.sha256(memoryview(raw)) == hashing.sha256(raw)


class TestStructuredHashing:
    def test_hash_concat_order_matters(self):
        a, b = hashing.sha256(b"a"), hashing.sha256(b"b")
        assert hashing.hash_concat(a, b) != hashing.hash_concat(b, a)

    def test_hash_int_distinct(self):
        assert hashing.hash_int(1) != hashing.hash_int(2)

    def test_hash_int_wraps_to_64_bits(self):
        assert hashing.hash_int(2**64 + 5) == hashing.hash_int(5)

    def test_hash_str_utf8(self):
        assert hashing.hash_str("héllo") == hashing.sha256d(
            "héllo".encode("utf-8")
        )

    def test_hash_fields_injective_framing(self):
        # Without length framing these two would collide.
        assert hashing.hash_fields(b"ab", b"c") != hashing.hash_fields(
            b"a", b"bc"
        )

    def test_hash_fields_empty_ok(self):
        assert len(hashing.hash_fields()) == 32

    @given(st.lists(st.binary(max_size=64), max_size=8))
    def test_hash_fields_deterministic(self, fields):
        assert hashing.hash_fields(*fields) == hashing.hash_fields(*fields)


class TestHexHelpers:
    def test_hex_digest_roundtrip(self):
        digest = hashing.sha256(b"z")
        assert bytes.fromhex(hashing.hex_digest(digest)) == digest

    def test_short_hex_prefix(self):
        digest = hashing.sha256(b"z")
        assert hashing.short_hex(digest, 6) == digest.hex()[:6]


class TestXorBytes:
    def test_xor_identity(self):
        data = b"\x01\x02\x03"
        assert hashing.xor_bytes([data, data]) == b"\x00\x00\x00"

    def test_xor_single_chunk(self):
        assert hashing.xor_bytes([b"\xff"]) == b"\xff"

    def test_xor_empty_raises(self):
        with pytest.raises(ValueError):
            hashing.xor_bytes([])

    def test_xor_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hashing.xor_bytes([b"\x01", b"\x01\x02"])

    @given(
        st.lists(st.binary(min_size=8, max_size=8), min_size=1, max_size=6)
    )
    def test_xor_is_self_inverse(self, chunks):
        folded = hashing.xor_bytes(chunks)
        assert hashing.xor_bytes([folded, *chunks[1:]]) == chunks[0]
