"""Property-based tests (hypothesis) for the GF(256) Reed–Solomon codec.

The archival tier (``repro.storage.coded``) stakes cluster durability on
this codec, so the battery is exhaustive where it matters: for every
drawn ``(k, n, body)`` the round-trip is checked under **every** loss
pattern of up to ``n - k`` chunks, and the first pattern past the MDS
bound must be rejected loudly.  ``derandomize=True`` keeps CI
deterministic — hypothesis explores the same example set every run.

A bounded ``ci`` profile is registered for the codec fuzz smoke step in
the workflow (``HYPOTHESIS_PROFILE=ci``); the default profile matches
``tests/test_properties.py``.
"""

from __future__ import annotations

import os
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import StorageError
from repro.storage.erasure import rs_decode, rs_encode, rs_shard_length
from repro.storage.placement import RendezvousPlacement

SETTINGS = settings(derandomize=True, max_examples=60, deadline=None)

settings.register_profile(
    "ci", derandomize=True, max_examples=25, deadline=None
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


def header_at(height: int, salt: int = 0) -> BlockHeader:
    return BlockHeader(
        height=height,
        prev_hash=ZERO_HASH,
        merkle_root=sha256(f"coded-{salt}-{height}".encode()),
        timestamp=float(height),
        nonce=height,
    )


code_shape = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=3),
).map(lambda pair: (pair[0], pair[0] + pair[1]))

body_strategy = st.binary(min_size=0, max_size=160)


class TestReedSolomonProperties:
    @SETTINGS
    @given(shape=code_shape, body=body_strategy)
    def test_every_loss_pattern_within_bound_round_trips(self, shape, body):
        """MDS contract: any ``<= n - k`` erasures recover byte-exact."""
        k, n = shape
        chunks = rs_encode(body, k, n)
        assert len(chunks) == n
        indices = range(n)
        for losses in range(n - k + 1):
            for lost in combinations(indices, losses):
                present = {
                    index: chunks[index]
                    for index in indices
                    if index not in lost
                }
                assert rs_decode(present, k, n, len(body)) == body

    @SETTINGS
    @given(shape=code_shape, body=body_strategy, data=st.data())
    def test_one_past_the_bound_is_rejected(self, shape, body, data):
        """``n - k + 1`` erasures must raise, never return garbage."""
        k, n = shape
        chunks = rs_encode(body, k, n)
        lost = data.draw(
            st.permutations(range(n)).map(lambda p: set(p[: n - k + 1]))
        )
        present = {
            index: chunks[index]
            for index in range(n)
            if index not in lost
        }
        with pytest.raises(StorageError):
            rs_decode(present, k, n, len(body))

    @SETTINGS
    @given(shape=code_shape, body=body_strategy)
    def test_padding_is_exact_for_arbitrary_lengths(self, shape, body):
        """Shards share one ceil(len/k) length; decode strips the pad."""
        k, n = shape
        chunks = rs_encode(body, k, n)
        shard_len = rs_shard_length(len(body), k)
        assert all(len(chunk) == shard_len for chunk in chunks)
        assert shard_len * k >= len(body)
        assert shard_len * k - len(body) < max(k, 1)
        # Systematic prefix: data chunks are the body verbatim.
        assert b"".join(chunks[:k])[: len(body)] == body
        decoded = rs_decode(dict(enumerate(chunks)), k, n, len(body))
        assert decoded == body
        assert len(decoded) == len(body)

    @SETTINGS
    @given(shape=code_shape, body=body_strategy)
    def test_encode_decode_deterministic_across_repetitions(
        self, shape, body
    ):
        """Same input → byte-identical chunks and decode, every time."""
        k, n = shape
        first = rs_encode(body, k, n)
        for _ in range(3):
            assert rs_encode(body, k, n) == first
        survivors = {index: first[index] for index in range(n - k, n)}
        reference = rs_decode(survivors, k, n, len(body))
        for _ in range(3):
            assert rs_decode(survivors, k, n, len(body)) == reference

    @SETTINGS
    @given(
        members=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=4,
            max_size=12,
            unique=True,
        ),
        height=st.integers(min_value=0, max_value=500),
        shape=code_shape,
    )
    def test_chunk_placement_is_distinct(self, members, height, shape):
        """The archival tier never co-locates two chunks of one block."""
        _, n = shape
        if n > len(members):
            return
        holders = RendezvousPlacement().holders(
            header_at(height), members, n
        )
        assert len(holders) == n
        assert len(set(holders)) == n
        assert set(holders) <= set(members)

    def test_shape_validation(self):
        with pytest.raises(StorageError):
            rs_encode(b"x", 0, 1)
        with pytest.raises(StorageError):
            rs_encode(b"x", 3, 2)
        with pytest.raises(StorageError):
            rs_encode(b"x", 2, 257)
        with pytest.raises(StorageError):
            rs_decode({0: b""}, 1, 1, -1)

    def test_wrong_length_survivor_rejected(self):
        chunks = rs_encode(b"hello world", 3, 5)
        bad = {0: chunks[0], 1: chunks[1], 2: chunks[2] + b"\x00"}
        with pytest.raises(StorageError):
            rs_decode(bad, 3, 5, 11)

    def test_out_of_range_index_rejected(self):
        chunks = rs_encode(b"hello world", 2, 3)
        with pytest.raises(StorageError):
            rs_decode({0: chunks[0], 7: chunks[1]}, 2, 3, 11)

    def test_empty_body_round_trips(self):
        chunks = rs_encode(b"", 3, 5)
        assert all(chunk == b"" for chunk in chunks)
        assert rs_decode({0: b"", 3: b"", 4: b""}, 3, 5, 0) == b""
