"""Unit tests for blocks, headers, and their commitments."""

from __future__ import annotations

import pytest

from repro.chain.block import (
    HEADER_SIZE,
    Block,
    BlockHeader,
    build_block,
)
from repro.chain.genesis import make_genesis
from repro.chain.transaction import make_coinbase
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.crypto.keys import KeyPair
from repro.errors import ValidationError


def simple_block(height: int = 1, n_extra: int = 3) -> Block:
    txs = [make_coinbase(50, b"\x01" * 20, height=height)]
    txs += [
        make_coinbase(0, b"\x02" * 20, height=height, extra=bytes([i]))
        for i in range(n_extra)
    ]
    return build_block(
        height=height,
        prev_hash=sha256(b"prev"),
        transactions=txs,
        timestamp=10.0,
    )


class TestBlockHeader:
    def test_serialize_roundtrip(self):
        header = simple_block().header
        assert BlockHeader.deserialize(header.serialize()) == header

    def test_wire_size_fixed(self):
        header = simple_block().header
        assert len(header.serialize()) == HEADER_SIZE
        assert header.size_bytes == HEADER_SIZE

    def test_deserialize_bad_length(self):
        with pytest.raises(ValidationError):
            BlockHeader.deserialize(b"\x00" * (HEADER_SIZE - 1))

    def test_negative_height_rejected(self):
        with pytest.raises(ValidationError):
            BlockHeader(
                height=-1,
                prev_hash=ZERO_HASH,
                merkle_root=ZERO_HASH,
                timestamp=0.0,
            )

    def test_bad_hash_length_rejected(self):
        with pytest.raises(ValidationError):
            BlockHeader(
                height=0,
                prev_hash=b"short",
                merkle_root=ZERO_HASH,
                timestamp=0.0,
            )

    def test_block_hash_depends_on_every_field(self):
        base = simple_block().header
        changed = BlockHeader(
            height=base.height,
            prev_hash=base.prev_hash,
            merkle_root=base.merkle_root,
            timestamp=base.timestamp,
            nonce=base.nonce + 1,
        )
        assert base.block_hash != changed.block_hash

    def test_genesis_detection(self):
        genesis = make_genesis([KeyPair.from_seed(0).address])
        assert genesis.header.is_genesis
        assert not simple_block().header.is_genesis


class TestBlockBody:
    def test_size_accounting(self):
        block = simple_block(n_extra=2)
        assert block.body_size_bytes == sum(
            tx.size_bytes for tx in block.transactions
        )
        assert block.size_bytes == HEADER_SIZE + block.body_size_bytes

    def test_merkle_commitment_valid(self):
        assert simple_block().verify_merkle_commitment()

    def test_tampered_body_detected(self):
        block = simple_block()
        tampered = Block(
            header=block.header,
            transactions=block.transactions[:-1],
        )
        assert not tampered.verify_merkle_commitment()

    def test_merkle_proofs_per_transaction(self):
        block = simple_block(n_extra=4)
        for index, tx in enumerate(block.transactions):
            proof = block.merkle_proof(index)
            assert proof.leaf == tx.txid
            assert proof.verify(block.header.merkle_root)

    def test_transaction_by_id(self):
        block = simple_block()
        target = block.transactions[1]
        assert block.transaction_by_id(target.txid) == target
        assert block.transaction_by_id(sha256(b"nope")) is None

    def test_build_block_commits_to_body(self):
        block = simple_block()
        assert block.header.merkle_root == block.merkle_tree.root

    def test_height_shortcut(self):
        assert simple_block(height=9).height == 9
