"""Tests for the churn workload and endurance driver."""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.churn import (
    ChurnConfig,
    ChurnDriver,
    ChurnEvent,
    ChurnKind,
    make_schedule,
)
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def driver_for(n_nodes=24, n_clusters=3, replication=2, **churn_kwargs):
    deployment = ICIDeployment(
        n_nodes,
        config=ICIConfig(
            n_clusters=n_clusters,
            replication=replication,
            limits=TEST_LIMITS,
        ),
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    return deployment, ChurnDriver(
        deployment, runner, ChurnConfig(**churn_kwargs)
    )


class TestSchedule:
    def test_deterministic(self):
        config = ChurnConfig(join_rate=0.5, seed=3)
        assert make_schedule(config, 20) == make_schedule(config, 20)

    def test_rates_scale_event_counts(self):
        sparse = make_schedule(ChurnConfig(join_rate=0.05, seed=1), 200)
        dense = make_schedule(ChurnConfig(join_rate=0.8, seed=1), 200)
        assert len(dense) > len(sparse)

    def test_zero_rates_empty(self):
        config = ChurnConfig(join_rate=0, leave_rate=0, crash_rate=0)
        assert make_schedule(config, 50) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(join_rate=-0.1)

    def test_events_ordered_within_run(self):
        events = make_schedule(
            ChurnConfig(join_rate=0.5, crash_rate=0.5, seed=2), 30
        )
        blocks = [event.after_block for event in events]
        assert blocks == sorted(blocks)
        assert all(1 <= b <= 30 for b in blocks)


class TestDriver:
    def test_endurance_preserves_integrity(self):
        deployment, driver = driver_for(
            join_rate=0.4, leave_rate=0.2, crash_rate=0.2, seed=5
        )
        outcome = driver.run(12, txs_per_block=3)
        assert outcome.blocks_produced == 12
        assert outcome.integrity_violations == 0
        assert outcome.lost_blocks == 0
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_population_tracks_events(self):
        deployment, driver = driver_for(
            join_rate=1.0, leave_rate=0.0, crash_rate=0.0, seed=1
        )
        outcome = driver.run(5, txs_per_block=2)
        assert outcome.joins == 5
        assert deployment.node_count == 29
        assert outcome.population_history[-1] == 29

    def test_departures_shrink_population(self):
        deployment, driver = driver_for(
            join_rate=0.0, leave_rate=1.0, crash_rate=0.0, seed=1
        )
        outcome = driver.run(4, txs_per_block=2)
        assert outcome.leaves == 4
        assert deployment.node_count == 20

    def test_crashes_repair_with_r2(self):
        deployment, driver = driver_for(
            join_rate=0.0, leave_rate=0.0, crash_rate=1.0, seed=1
        )
        outcome = driver.run(4, txs_per_block=2)
        assert outcome.crashes == 4
        assert outcome.lost_blocks == 0

    def test_events_skipped_when_clusters_too_small(self):
        # Clusters of 3 with r=2: minimum viable is r+1=3 → no departures.
        deployment, driver = driver_for(
            n_nodes=9,
            n_clusters=3,
            replication=2,
            join_rate=0.0,
            leave_rate=1.0,
            crash_rate=0.0,
            seed=1,
        )
        outcome = driver.run(3, txs_per_block=2)
        assert outcome.leaves == 0
        assert outcome.skipped_events == 3

    def test_joined_nodes_can_propose(self):
        deployment, driver = driver_for(
            join_rate=1.0, leave_rate=0.0, crash_rate=0.0, seed=1
        )
        driver.run(3, txs_per_block=2)
        assert any(
            node_id >= 24 for node_id in driver.runner.schedule.eligible
        )

    def test_costs_accumulate(self):
        deployment, driver = driver_for(
            join_rate=0.6, leave_rate=0.3, crash_rate=0.0, seed=9
        )
        outcome = driver.run(10, txs_per_block=3)
        if outcome.joins:
            assert outcome.bootstrap_bytes > 0
        if outcome.leaves:
            assert outcome.repair_bytes >= 0


class TestEventModel:
    def test_event_fields(self):
        event = ChurnEvent(after_block=3, kind=ChurnKind.CRASH)
        assert event.after_block == 3
        assert event.kind is ChurnKind.CRASH
