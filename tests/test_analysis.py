"""Tests for tables, ASCII plots, and summary statistics."""

from __future__ import annotations

import math

import pytest

from repro.analysis.plots import ascii_bars, ascii_series
from repro.analysis.stats import (
    geometric_mean,
    percentile,
    relative_error,
    summarize,
)
from repro.analysis.tables import (
    format_bytes,
    format_seconds,
    render_ratio_row,
    render_table,
)
from repro.errors import ConfigurationError


class TestFormatting:
    @pytest.mark.parametrize(
        "count,expected",
        [
            (0, "0.00 B"),
            (512, "512.00 B"),
            (2048, "2.00 KiB"),
            (5 * 1024**2, "5.00 MiB"),
            (3 * 1024**3, "3.00 GiB"),
        ],
    )
    def test_format_bytes(self, count, expected):
        assert format_bytes(count) == expected

    def test_format_seconds(self):
        assert format_seconds(0.0031) == "3.1 ms"
        assert format_seconds(2.5) == "2.50 s"

    def test_render_ratio_row(self):
        label, value, percent = render_ratio_row("ici", 250.0, 1000.0)
        assert label == "ici"
        assert percent == "25.0%"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "count"],
            [("alpha", 10), ("b", 2)],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        # Numeric column right-aligned: 10 and 2 end at same offset.
        assert lines[-1].rstrip().endswith("2")
        assert lines[-2].rstrip().endswith("10")

    def test_wide_cells_stretch_columns(self):
        text = render_table(["h"], [("a-very-long-cell",)])
        header_line = text.splitlines()[0]
        assert len(header_line) >= len("a-very-long-cell")


class TestAsciiPlots:
    def test_series_renders_legend_and_axes(self):
        text = ascii_series(
            [1, 2, 3],
            {"ici": [1, 2, 3], "full": [3, 6, 9]},
            width=20,
            height=6,
            x_label="blocks",
            y_label="bytes",
        )
        assert "legend" in text
        assert "blocks" in text
        assert "bytes" in text

    def test_series_ragged_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_series([1, 2], {"a": [1]})

    def test_series_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_series([], {})

    def test_bars_scale_to_peak(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_mismatched_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_constant_series_does_not_crash(self):
        text = ascii_series([1, 2], {"flat": [5, 5]})
        assert "flat" in text


class TestStats:
    def test_summarize(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.p95 == pytest.approx(4.8)

    def test_summarize_single(self):
        summary = summarize([7.0])
        assert summary.stdev == 0.0
        assert summary.p95 == 7.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([1, 2, 3], 0) == 1.0
        assert percentile([1, 2, 3], 100) == 3.0

    def test_percentile_bounds(self):
        with pytest.raises(ConfigurationError):
            percentile([1], 101)
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(1, 0))

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1, 0])
