"""Integration tests: competing branches and chain reorganization."""

from __future__ import annotations


from repro.chain.block import build_block
from repro.chain.transaction import make_coinbase
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deployed(n_blocks=6, **config_kwargs):
    config_kwargs.setdefault("n_clusters", 4)
    config_kwargs.setdefault("replication", 1)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(16, config=ICIConfig(**config_kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    runner.produce_blocks(n_blocks, txs_per_block=3)
    return deployment, runner


class TestShortForks:
    def test_short_fork_does_not_reorg(self):
        deployment, runner = deployed()
        tip_before = deployment.ledger.tip.block_hash
        branch = runner.produce_fork(fork_from_height=4, length=1)
        assert deployment.reorg_count == 0
        assert deployment.ledger.tip.block_hash == tip_before
        assert deployment.ledger.height == 6

    def test_side_blocks_still_stored_by_holders(self):
        deployment, runner = deployed()
        branch = runner.produce_fork(fork_from_height=4, length=1)
        side = branch[0]
        copies = sum(
            node.store.has_body(side.block_hash)
            for node in deployment.nodes.values()
        )
        assert copies >= deployment.clusters.cluster_count  # r per cluster

    def test_side_blocks_finalize_in_clusters(self):
        deployment, runner = deployed()
        branch = runner.produce_fork(fork_from_height=4, length=1)
        for view in deployment.clusters.views():
            assert (
                branch[0].block_hash,
                view.cluster_id,
            ) in deployment.metrics.cluster_finalized_at

    def test_equal_length_fork_does_not_reorg(self):
        deployment, runner = deployed()
        runner.produce_fork(fork_from_height=4, length=2)  # ties at 6
        assert deployment.reorg_count == 0
        assert deployment.ledger.height == 6


class TestReorgs:
    def test_longer_fork_wins(self):
        deployment, runner = deployed()
        branch = runner.produce_fork(fork_from_height=4, length=3)
        assert deployment.reorg_count == 1
        assert deployment.ledger.height == 7
        assert (
            deployment.ledger.tip.block_hash == branch[-1].block_hash
        )

    def test_integrity_holds_on_new_chain(self):
        deployment, runner = deployed()
        runner.produce_fork(fork_from_height=3, length=5)
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_production_continues_on_new_chain(self):
        deployment, runner = deployed()
        runner.produce_fork(fork_from_height=4, length=3)
        report = runner.produce_blocks(2, txs_per_block=3)
        assert deployment.ledger.height == 9
        assert not deployment.metrics.blocks_rejected
        assert report.transactions_produced > 0

    def test_reorg_back_onto_original_branch(self):
        """Extend the stale branch past the fork: chain flips back."""
        deployment, runner = deployed()
        original_tip = deployment.ledger.tip
        runner.produce_fork(fork_from_height=4, length=3)  # now on fork
        assert deployment.reorg_count == 1
        # Build on the *original* (now stale) chain until it outgrows.
        prev = original_tip
        from repro.crypto.keys import KeyPair

        for offset in range(1, 3):
            height = original_tip.height + offset
            block = build_block(
                height=height,
                prev_hash=prev.block_hash,
                transactions=[
                    make_coinbase(
                        TEST_LIMITS.block_reward,
                        KeyPair.from_seed(8_000_000 + height).address,
                        height,
                    )
                ],
                timestamp=prev.timestamp + 1.0,
            )
            deployment.disseminate(block, proposer_id=0)
            deployment.run()
            prev = block.header
        assert deployment.reorg_count == 2
        assert deployment.ledger.tip.block_hash == prev.block_hash

    def test_deep_fork_from_genesis(self):
        deployment, runner = deployed(n_blocks=3)
        branch = runner.produce_fork(fork_from_height=0, length=5)
        assert deployment.reorg_count == 1
        assert deployment.ledger.height == 5
        assert deployment.ledger.tip.block_hash == branch[-1].block_hash


class TestForksWithChurn:
    def test_production_survives_departed_proposer(self):
        """Regression: the runner's proposer rotation must skip members
        that departed, instead of crashing on a stale schedule entry."""
        deployment, runner = deployed()
        # Retire whichever node the schedule would pick for height 7.
        scheduled = runner.schedule.proposer_at(7)
        cluster = deployment.nodes[scheduled].cluster_id
        if len(deployment.clusters.members_of(cluster)) > 2:
            departure = deployment.leave_node(scheduled)
            deployment.run()
            assert departure.complete
        report = runner.produce_blocks(2, txs_per_block=2)
        assert report.blocks_produced == 2
        assert not deployment.metrics.blocks_rejected

    def test_fork_then_churn_then_production(self):
        deployment, runner = deployed()
        runner.produce_fork(fork_from_height=3, length=5)
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        victim = next(
            m
            for m in deployment.clusters.members_of(join.cluster_id)
            if m != join.node_id
        )
        leave = deployment.leave_node(victim)
        deployment.run()
        assert leave.complete and not leave.lost_blocks
        report = runner.produce_blocks(2, txs_per_block=2)
        assert not deployment.metrics.blocks_rejected
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)


class TestInvalidForks:
    def test_stateless_invalid_fork_block_rejected(self):
        deployment, runner = deployed()
        fork_parent = deployment.ledger.active_hash_at(4)
        bad = build_block(
            height=5,
            prev_hash=fork_parent,
            transactions=[
                make_coinbase(1, b"\x01" * 20, 5),
                make_coinbase(1, b"\x02" * 20, 5),  # second coinbase
            ],
            timestamp=99.0,
        )
        deployment.disseminate(bad, proposer_id=0)
        deployment.run()
        assert bad.block_hash in deployment.metrics.blocks_rejected

    def test_stateful_invalid_branch_never_becomes_canonical(self):
        """An overpaying-coinbase branch fails at reorg time."""
        deployment, runner = deployed()
        fork_parent = deployment.ledger.active_hash_at(4)
        parent_header = deployment.ledger.store.header(fork_parent)
        prev_hash, prev_ts = fork_parent, parent_header.timestamp
        for offset in range(1, 4):  # longer than canonical
            height = 4 + offset
            greedy = build_block(
                height=height,
                prev_hash=prev_hash,
                transactions=[
                    make_coinbase(
                        TEST_LIMITS.block_reward * 50,
                        b"\x03" * 20,
                        height,
                    )
                ],
                timestamp=prev_ts + 1.0,
            )
            deployment.disseminate(greedy, proposer_id=0)
            deployment.run()
            prev_hash = greedy.block_hash
            prev_ts = greedy.header.timestamp
        assert deployment.reorg_count == 0
        assert deployment.ledger.height == 6  # canonical untouched

    def test_detached_block_stays_orphaned(self):
        """No known parent: the block waits in orphan buffers forever —
        it is never finalized, never applied, never stored as assigned."""
        from repro.crypto.hashing import sha256

        deployment, runner = deployed()
        orphan = build_block(
            height=3,
            prev_hash=sha256(b"unknown parent"),
            transactions=[make_coinbase(1, b"\x01" * 20, 3)],
            timestamp=50.0,
        )
        deployment.disseminate(orphan, proposer_id=0)
        deployment.run()
        assert deployment.ledger.height == 6  # untouched
        assert not any(
            (orphan.block_hash, view.cluster_id)
            in deployment.metrics.cluster_finalized_at
            for view in deployment.clusters.views()
        )
        for node in deployment.nodes.values():
            assert not node.is_holder_of(orphan.block_hash)
