"""Unit + property tests for block placement policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import PlacementError
from repro.storage.placement import (
    CapacityWeightedPlacement,
    ModuloSlotPlacement,
    RendezvousPlacement,
    RoundRobinPlacement,
    load_imbalance,
    placement_load,
)

POLICIES = [
    RendezvousPlacement(),
    ModuloSlotPlacement(),
    RoundRobinPlacement(),
    CapacityWeightedPlacement(capacities={}),
]


def header_at(height: int) -> BlockHeader:
    return BlockHeader(
        height=height,
        prev_hash=sha256(f"p{height}".encode()),
        merkle_root=ZERO_HASH,
        timestamp=float(height),
    )


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: type(p).__name__)
class TestPolicyContract:
    def test_returns_r_distinct_members(self, policy):
        members = list(range(10))
        holders = policy.holders(header_at(5), members, replication=3)
        assert len(holders) == 3
        assert len(set(holders)) == 3
        assert set(holders) <= set(members)

    def test_deterministic(self, policy):
        members = list(range(8))
        a = policy.holders(header_at(7), members, 2)
        b = policy.holders(header_at(7), members, 2)
        assert a == b

    def test_independent_of_member_ordering(self, policy):
        members = [5, 1, 9, 3, 7]
        a = policy.holders(header_at(4), members, 2)
        b = policy.holders(header_at(4), list(reversed(members)), 2)
        assert set(a) == set(b)

    def test_replication_equal_cluster_size(self, policy):
        members = [3, 1, 2]
        holders = policy.holders(header_at(1), members, 3)
        assert set(holders) == {1, 2, 3}

    def test_zero_replication_rejected(self, policy):
        with pytest.raises(PlacementError):
            policy.holders(header_at(1), [0, 1], 0)

    def test_replication_exceeding_cluster_rejected(self, policy):
        with pytest.raises(PlacementError):
            policy.holders(header_at(1), [0, 1], 3)

    def test_empty_cluster_rejected(self, policy):
        with pytest.raises(PlacementError):
            policy.holders(header_at(1), [], 1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 20), st.data())
    def test_contract_property(self, policy, height, m, data):
        r = data.draw(st.integers(1, m))
        members = list(range(100, 100 + m))
        holders = policy.holders(header_at(height), members, r)
        assert len(set(holders)) == r
        assert set(holders) <= set(members)


class TestBalance:
    def test_rendezvous_roughly_uniform(self):
        members = list(range(10))
        headers = [header_at(h) for h in range(500)]
        load = placement_load(headers, members, 1, RendezvousPlacement())
        assert load_imbalance(load) < 1.5

    def test_round_robin_perfectly_uniform(self):
        members = list(range(10))
        headers = [header_at(h) for h in range(500)]
        load = placement_load(headers, members, 1, RoundRobinPlacement())
        assert load_imbalance(load) == 1.0

    def test_capacity_weighting_shifts_load(self):
        members = list(range(4))
        heavy = CapacityWeightedPlacement(
            capacities={0: 4.0, 1: 1.0, 2: 1.0, 3: 1.0}
        )
        headers = [header_at(h) for h in range(800)]
        load = placement_load(headers, members, 1, heavy)
        assert load[0] > 2 * max(load[1], load[2], load[3]) * 0.7

    def test_capacity_must_be_positive(self):
        with pytest.raises(PlacementError):
            CapacityWeightedPlacement(capacities={0: 0.0})

    def test_load_imbalance_empty_rejected(self):
        with pytest.raises(PlacementError):
            load_imbalance({})


class TestMembershipStability:
    def test_rendezvous_moves_few_blocks_on_join(self):
        """HRW: a join moves ≈ r/(m+1) of blocks; modulo moves ~all."""
        members = list(range(10))
        grown = members + [10]
        headers = [header_at(h) for h in range(400)]
        policy = RendezvousPlacement()
        moved = sum(
            set(policy.holders(h, members, 1))
            != set(policy.holders(h, grown, 1))
            for h in headers
        )
        assert moved / len(headers) < 0.2  # expected ≈ 1/11

    def test_modulo_reshuffles_on_join(self):
        members = list(range(10))
        grown = members + [10]
        headers = [header_at(h) for h in range(400)]
        policy = ModuloSlotPlacement()
        moved = sum(
            set(policy.holders(h, members, 1))
            != set(policy.holders(h, grown, 1))
            for h in headers
        )
        assert moved / len(headers) > 0.7

    def test_join_only_wins_blocks_it_should(self):
        """Under HRW, every reassigned block moves *to the joiner*."""
        members = list(range(10))
        grown = members + [10]
        policy = RendezvousPlacement()
        for h in range(300):
            old = set(policy.holders(header_at(h), members, 2))
            new = set(policy.holders(header_at(h), grown, 2))
            if old != new:
                assert new - old == {10}


class TestRoundRobinSemantics:
    def test_rotation_by_height(self):
        members = [0, 1, 2, 3]
        policy = RoundRobinPlacement()
        assert policy.holders(header_at(0), members, 1) == (0,)
        assert policy.holders(header_at(1), members, 1) == (1,)
        assert policy.holders(header_at(5), members, 1) == (1,)

    def test_replicas_are_consecutive(self):
        members = [0, 1, 2, 3]
        policy = RoundRobinPlacement()
        assert policy.holders(header_at(3), members, 2) == (3, 0)
