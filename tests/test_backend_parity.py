"""Serial/parallel backend parity: identical simulated metrics.

The sharded backend's whole contract is that worker scheduling never
leaks into the simulation story.  These tests drive real experiment
kernels (e8 pipelined throughput, e17 scalability — both multi-cluster,
both cross-shard-heavy) and the seeded chaos scenario under both
backends and require the machine-independent simulated metrics to match
exactly, not approximately.
"""

from __future__ import annotations

import pytest

from repro.bench.profile import QUICK
from repro.bench.runner import discover_workloads
from repro.bench.workload import simulated_metrics
from repro.net.shard import ShardedClock
from repro.sim.backend import (
    ParallelBackend,
    SerialBackend,
    backend_scope,
    parse_backend,
)
from repro.sim.chaos import ChaosConfig, run_chaos
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario

PARITY_KERNELS = ("e8", "e17")


def run_workload(workload, backend):
    with backend_scope(backend):
        outputs = workload.run(QUICK)
    return {
        label: simulated_metrics(deployment)
        for label, deployment in outputs
    }


@pytest.fixture(scope="module")
def kernels():
    by_id = {w.bench_id: w for w in discover_workloads()}
    return [by_id[bench_id] for bench_id in PARITY_KERNELS]


class TestKernelParity:
    @pytest.mark.parametrize("bench_id", PARITY_KERNELS)
    def test_parallel_matches_serial_exactly(self, kernels, bench_id):
        workload = next(w for w in kernels if w.bench_id == bench_id)
        serial = run_workload(workload, None)
        parallel = run_workload(workload, ParallelBackend(workers=2))
        assert serial == parallel

    def test_parallel_clock_really_shards(self):
        """Guard against parity passing because nothing sharded."""
        runner = ScenarioRunner.for_scenario(
            Scenario(n_nodes=24, n_groups=4, replication=2, seed=3),
            backend="parallel",
            workers=2,
        )
        clock = runner.deployment.network.clock
        assert isinstance(clock, ShardedClock)
        runner.produce_blocks(3, txs_per_block=4)
        assert not clock.coupled
        # More than one node lane actually drained events.
        assert len(clock.lane_times()) > 2


class TestChaosParity:
    def test_signatures_match_across_backends(self):
        base = dict(seed=42, n_blocks=4, drop_rate=0.2, crash_count=1)
        serial = run_chaos(ChaosConfig(**base, backend="serial"))
        parallel = run_chaos(
            ChaosConfig(**base, backend="parallel", workers=2)
        )
        assert serial.signature() == parallel.signature()


class TestBackendSelection:
    def test_parse_backend_names(self):
        assert parse_backend(None) is None
        assert parse_backend("serial") is None
        backend = parse_backend("parallel", workers=3)
        assert isinstance(backend, ParallelBackend)
        assert backend.make_clock().workers == 3

    def test_serial_backend_makes_plain_clock(self):
        clock = SerialBackend().make_clock()
        assert not isinstance(clock, ShardedClock)

    def test_unknown_backend_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            parse_backend("quantum")
