"""Tests for the structured tracing subsystem (:mod:`repro.obs`).

Covers the acceptance surface of the observability PR: ring-buffer
bounding and eviction, the disabled-path no-op contract, span nesting
across simclock callbacks, fault/retry event capture under a seeded
fault plan, Chrome trace-event export + schema validation (one track
per node), and — the load-bearing guarantee — that simulated metrics
stay byte-identical with tracing on.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.profile import BenchProfile
from repro.bench.workload import BenchWorkload, simulated_metrics
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ObservabilityError
from repro.net.simclock import SimClock
from repro.obs.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hooks import TracingObserver
from repro.obs.summary import TIMELINE_BUCKETS, percentile, summarize
from repro.obs.tracer import (
    CLOCK_TRACK,
    FAULTS_TRACK,
    PHASE_TRACK,
    Tracer,
    active_tracer,
    node_track,
    tracing,
)
from repro.sim.chaos import ChaosConfig, run_chaos
from repro.sim.runner import ScenarioRunner

from tests.conftest import TEST_LIMITS

TRACK = ("sim", "test")


def bound_tracer(**kwargs) -> Tracer:
    """A tracer with a fresh clock already bound (ts-less calls work)."""
    tracer = Tracer(**kwargs)
    tracer.bind_clock(SimClock())
    return tracer


def ici_deployment(n_nodes: int = 12, **kwargs) -> ICIDeployment:
    kwargs.setdefault("n_clusters", 3)
    kwargs.setdefault("replication", 1)
    kwargs.setdefault("limits", TEST_LIMITS)
    return ICIDeployment(n_nodes, config=ICIConfig(**kwargs))


def traced_run(tracer: Tracer | None = None, blocks: int = 3):
    """Stream a few blocks through an ICI deployment under tracing."""
    tracer = tracer or Tracer()
    with tracing(tracer):
        deployment = ici_deployment()
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks(blocks, txs_per_block=2)
    return tracer, deployment


class TestRingBuffer:
    def test_bounded_with_oldest_evicted_first(self):
        tracer = bound_tracer(capacity=10)
        for index in range(25):
            tracer.instant(f"e{index}", TRACK, ts=float(index))
        assert len(tracer) == 10
        assert tracer.recorded == 25
        assert tracer.evicted == 15
        names = [event.name for event in tracer.events()]
        assert names == [f"e{i}" for i in range(15, 25)]

    def test_under_capacity_evicts_nothing(self):
        tracer = bound_tracer(capacity=100)
        for index in range(5):
            tracer.instant("e", TRACK, ts=float(index))
        assert tracer.evicted == 0 and len(tracer) == 5

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ObservabilityError):
            Tracer(capacity=0)

    def test_clear_keeps_the_counters(self):
        tracer = bound_tracer(capacity=4)
        for index in range(6):
            tracer.instant("e", TRACK, ts=float(index))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 6


class TestDisabledTracer:
    def test_record_methods_are_no_ops(self):
        tracer = Tracer(enabled=False)  # note: no clock bound either
        tracer.instant("a", TRACK)
        tracer.complete("b", TRACK, 0.0, 1.0)
        tracer.callback_event(len, 0.0, 0.001)
        with tracer.span("c"):
            pass
        assert len(tracer) == 0 and tracer.recorded == 0

    def test_disabled_span_reuses_one_null_context(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_enabled_tracer_without_clock_demands_explicit_ts(self):
        tracer = Tracer()
        tracer.instant("ok", TRACK, ts=1.0)
        with pytest.raises(ObservabilityError):
            tracer.instant("no-clock", TRACK)


class TestActiveTracer:
    def test_tracing_scopes_the_active_tracer(self):
        assert active_tracer() is None
        tracer = Tracer()
        with tracing(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_two_active_tracers_conflict(self):
        with tracing(Tracer()):
            with pytest.raises(ObservabilityError):
                with tracing(Tracer()):
                    pass  # pragma: no cover
        assert active_tracer() is None

    def test_deployments_self_attach_inside_the_scope(self):
        tracer = Tracer()
        with tracing(tracer):
            traced = ici_deployment()
        untraced = ici_deployment()
        assert any(
            isinstance(obs, TracingObserver)
            for obs in traced.router._observers
        )
        assert not any(
            isinstance(obs, TracingObserver)
            for obs in untraced.router._observers
        )


class TestSpans:
    def test_nested_spans_record_innermost_first(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.schedule(1.0, lambda: None)
            clock.run()
            with tracer.span("inner"):
                clock.schedule(2.0, lambda: None)
                clock.run()
        inner, outer = tracer.events()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.track == outer.track == PHASE_TRACK
        assert inner.ts == 1.0 and inner.dur == 2.0
        assert outer.ts == 0.0 and outer.dur == 3.0
        assert outer.args["wall_us"] >= inner.args["wall_us"]

    def test_spans_survive_simclock_callbacks(self):
        """A span opened around clock.run() covers callback activity."""
        clock = SimClock()
        tracer = Tracer(clock=clock)
        clock.attach_tracer(tracer)

        def tick(depth: int) -> None:
            if depth:
                clock.schedule(0.5, tick, depth - 1)

        with tracer.span("drive"):
            clock.schedule(0.5, tick, 2)
            clock.run()
        spans = [e for e in tracer.events() if e.track == PHASE_TRACK]
        callbacks = [e for e in tracer.events() if e.track == CLOCK_TRACK]
        (drive,) = spans
        assert drive.ts == 0.0 and drive.dur == 1.5
        assert len(callbacks) == 3
        assert all(c.category == "callback" for c in callbacks)
        assert all("tick" in c.name for c in callbacks)
        assert all(c.args["wall_us"] >= 0 for c in callbacks)
        # every callback executed inside the drive span's window
        assert all(drive.ts <= c.ts <= drive.ts + drive.dur
                   for c in callbacks)


class TestTracedDeployment:
    def test_queue_latency_spans_from_send_to_deliver(self):
        tracer, _ = traced_run()
        delivers = [
            e for e in tracer.events()
            if e.category == "deliver" and e.phase == "X"
        ]
        sends = [e for e in tracer.events() if e.category == "send"]
        assert sends and delivers
        assert all(e.dur > 0 for e in delivers)
        assert all(e.track[0] == "node" for e in sends + delivers)
        assert all(e.args["bytes"] > 0 for e in delivers)

    def test_finalize_instants_mark_consensus(self):
        tracer, _ = traced_run()
        finals = [
            e for e in tracer.events() if e.category == "finalize"
        ]
        assert finals
        assert all(e.args["accepted"] for e in finals)

    def test_simulated_metrics_identical_with_tracing_on(self):
        """The PR's acceptance pin: tracing must not move the simulation."""

        def run_once(trace: bool) -> dict:
            if trace:
                tracer = Tracer(trace_callbacks=True)
                with tracing(tracer):
                    deployment = ici_deployment()
                    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
                    runner.produce_blocks(3, txs_per_block=2)
            else:
                deployment = ici_deployment()
                runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
                runner.produce_blocks(3, txs_per_block=2)
            deployment.join_new_node()
            deployment.run()
            return simulated_metrics(deployment)

        plain = run_once(trace=False)
        traced = run_once(trace=True)
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )


class TestFaultAndRetryCapture:
    @pytest.fixture(scope="class")
    def lossy(self):
        tracer = Tracer()
        outcome = run_chaos(
            ChaosConfig(
                seed=11, n_blocks=4, queries=4, drop_rate=0.3, crash_count=1
            ),
            limits=TEST_LIMITS,
            tracer=tracer,
        )
        return tracer, outcome

    def test_fault_events_match_the_injector_stats(self, lossy):
        tracer, outcome = lossy
        faults = [e for e in tracer.events() if e.track == FAULTS_TRACK]
        by_name: dict[str, int] = {}
        for event in faults:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        assert by_name.get("drop", 0) == outcome.fault_stats["dropped"]
        assert by_name.get("crash", 0) == outcome.fault_stats["crashes"]
        assert (
            by_name.get("recover", 0) == outcome.fault_stats["recoveries"]
        )
        dropped = [e for e in faults if e.name == "drop"]
        assert all(e.args["kind"] for e in dropped)

    def test_retry_and_timeout_events_flow_through(self, lossy):
        tracer, outcome = lossy
        retries = [e for e in tracer.events() if e.category == "retry"]
        timeouts = [e for e in tracer.events() if e.category == "timeout"]
        assert len(retries) == sum(outcome.retries.values())
        assert len(timeouts) == sum(outcome.timeouts.values())

    def test_phase_spans_tell_the_chaos_story(self, lossy):
        tracer, _ = lossy
        phases = {
            e.name for e in tracer.events() if e.track == PHASE_TRACK
        }
        assert {"produce:degraded", "heal:reconcile"} <= phases

    def test_outcome_carries_latency_percentiles(self, lossy):
        _, outcome = lossy
        assert outcome.latency_percentiles
        for stats in outcome.latency_percentiles.values():
            assert stats["p50"] <= stats["p95"] <= stats["p99"]
            assert stats["p99"] <= stats["max"]


class TestChromeExport:
    def test_export_validates_with_one_track_per_node(self):
        tracer, deployment = traced_run()
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        threads = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        node_tids = {
            e["tid"] for e in threads if e["args"]["name"].startswith("node ")
        }
        assert node_tids == set(deployment.nodes)

    def test_validator_flags_broken_documents(self):
        assert validate_chrome_trace([]) == ["payload is not a JSON object"]
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents must be a non-empty list"
        ]
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Q", "pid": 1, "tid": 1, "ts": 0},
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
                ]
            }
        )
        assert any("ph" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("process_name" in p for p in problems)

    def test_write_round_trips_and_jsonl_keeps_fidelity(self, tmp_path):
        tracer, _ = traced_run()
        chrome = write_chrome_trace(tracer, tmp_path / "t.json")
        payload = json.loads(chrome.read_text())
        assert validate_chrome_trace(payload) == []
        jsonl = write_jsonl(tracer, tmp_path / "t.jsonl")
        rows = [
            json.loads(line)
            for line in jsonl.read_text().splitlines()
        ]
        assert len(rows) == len(tracer)
        assert all("wall" in row for row in rows)

    def test_multi_deployment_traces_keep_labels_apart(self):
        tracer = Tracer()
        with tracing(tracer):
            for deployment in (ici_deployment(9), ici_deployment(9)):
                runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
                runner.produce_blocks(2, txs_per_block=2)
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(n.startswith("ICIDeployment node") for n in names)
        assert any(n.startswith("ICIDeployment#2 node") for n in names)


class TestSummary:
    def test_percentile_is_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([7.0], 0.99) == 7.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize_counts_traffic_and_phases(self):
        tracer, deployment = traced_run()
        summary = summarize(tracer)
        assert summary.events == len(tracer)
        assert summary.span_seconds > 0
        sends = sum(n.sends for n in summary.nodes.values())
        recvs = sum(n.receives for n in summary.nodes.values())
        assert sends == len(
            [e for e in tracer.events() if e.category == "send"]
        )
        assert recvs == len(
            [e for e in tracer.events() if e.category == "deliver"]
        )
        assert set(summary.nodes) <= {
            ("ICIDeployment", node_id) for node_id in deployment.nodes
        }
        for node in summary.nodes.values():
            assert len(node.timeline) == TIMELINE_BUCKETS
            assert sum(node.timeline) == node.sends + node.receives

    def test_latency_percentiles_are_ordered_per_kind(self):
        tracer, _ = traced_run()
        table = summarize(tracer).latency_percentiles()
        assert table
        assert list(table) == sorted(table)
        measured = [s for s in table.values() if s["count"]]
        assert measured
        for stats in measured:
            assert 0 < stats["p50"] <= stats["p95"] <= stats["p99"]

    def test_summarize_accepts_raw_event_lists(self):
        tracer = bound_tracer()
        tracer.instant(
            "block_body",
            node_track(3),
            ts=1.0,
            category="send",
            args={"to": 4, "bytes": 100},
        )
        summary = summarize(tracer.events())
        assert summary.nodes[("", 3)].sends == 1
        assert summary.evicted == 0


class TestBenchTracing:
    def test_runner_writes_one_trace_per_workload(self, tmp_path):
        from repro.bench.runner import BenchmarkRunner

        def kernel(profile):
            deployment = ici_deployment(9)
            runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
            runner.produce_blocks(
                profile.pick(2, 4), txs_per_block=2
            )
            return [("ici", deployment)]

        workload = BenchWorkload(
            bench_id="e99", title="obs test kernel", run=kernel
        )
        profile = BenchProfile(
            name="quick", warmup=0, repetitions=1, time_budget_seconds=60
        )
        runner = BenchmarkRunner(
            [workload], profile, trace_dir=tmp_path
        )
        payload = runner.run()
        trace_path = tmp_path / "TRACE_e99.json"
        assert trace_path.exists()
        assert validate_chrome_trace(
            json.loads(trace_path.read_text())
        ) == []
        assert payload["benchmarks"]["e99"]["simulated"]


class TestTraceCli:
    def test_trace_command_exports_valid_chrome_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "ici",
                "--nodes", "10",
                "--groups", "2",
                "--blocks", "2",
                "--txs", "2",
                "--queries", "2",
                "--out", str(out),
                "--summary", str(tmp_path / "summary.md"),
                "--jsonl", str(tmp_path / "trace.jsonl"),
            ]
        )
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        summary = (tmp_path / "summary.md").read_text()
        assert "## Delivery latency by message kind" in summary
        assert "## Per-node timelines" in summary
        assert (tmp_path / "trace.jsonl").exists()
        assert "trace written" in capsys.readouterr().out

    def test_trace_chaos_requires_ici(self, capsys):
        from repro.cli import main

        code = main(["trace", "full", "--chaos"])
        assert code == 2
        assert "ici" in capsys.readouterr().err


class TestTraceProfile:
    def export_trace(self, tmp_path):
        tracer = Tracer()
        clock = SimClock()
        tracer.bind_clock(clock)

        def cheap():
            pass

        def costly():
            pass

        tracer.callback_event(cheap, 1.0, 10e-6)
        tracer.callback_event(costly, 1.5, 100e-6)
        tracer.callback_event(costly, 2.0, 300e-6)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(to_chrome_trace(tracer)))
        return path

    def test_aggregates_wall_cost_per_callback(self, tmp_path):
        from repro.obs.profile import profile_chrome_trace

        profiles = profile_chrome_trace(self.export_trace(tmp_path))
        assert [p.calls for p in profiles] == [2, 1]
        top = profiles[0]
        assert "costly" in top.name
        assert top.total_us == pytest.approx(400.0)
        assert top.max_us == pytest.approx(300.0)
        assert top.mean_us == pytest.approx(200.0)

    def test_rejects_non_trace_files(self, tmp_path):
        from repro.errors import ObservabilityError
        from repro.obs.profile import profile_chrome_trace

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(ObservabilityError):
            profile_chrome_trace(bogus)
        with pytest.raises(ObservabilityError):
            profile_chrome_trace(tmp_path / "missing.json")

    def test_cli_renders_ranked_table(self, tmp_path, capsys):
        from repro.cli import main

        path = self.export_trace(tmp_path)
        assert main(["trace", "profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "| callback | calls | total ms" in out
        # Ranked: the expensive handler is listed first.
        assert out.index("costly") < out.index("cheap")

    def test_cli_requires_one_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "profile"]) == 2
        assert "exactly one" in capsys.readouterr().err


class TestCounterEvents:
    def make_tracer(self):
        tracer = Tracer()
        clock = SimClock()
        tracer.bind_clock(clock)
        return tracer

    def test_counter_rows_export_without_span_fields(self):
        tracer = self.make_tracer()
        from repro.obs.tracer import STORAGE_TRACK

        tracer.counter(
            "cluster 0 ledger bytes",
            STORAGE_TRACK,
            {"bytes": 4096},
            ts=1.0,
            category="storage",
        )
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        rows = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert len(rows) == 1
        row = rows[0]
        assert row["args"] == {"bytes": 4096}
        assert "dur" not in row
        assert "s" not in row

    def test_validator_flags_malformed_counters(self):
        base = {"name": "c", "ph": "C", "pid": 3, "tid": 0, "ts": 0}
        meta = [
            {"name": "process_name", "ph": "M", "pid": 3, "tid": 0,
             "ts": 0, "args": {"name": "simulator"}},
            {"name": "thread_name", "ph": "M", "pid": 3, "tid": 0,
             "ts": 0, "args": {"name": "storage"}},
        ]
        missing = validate_chrome_trace({"traceEvents": meta + [dict(base)]})
        assert any("non-empty object" in p for p in missing)
        bad_type = validate_chrome_trace(
            {"traceEvents": meta + [dict(base, args={"bytes": "big"})]}
        )
        assert any("numeric" in p for p in bad_type)
        bool_is_not_a_series = validate_chrome_trace(
            {"traceEvents": meta + [dict(base, args={"ok": True})]}
        )
        assert any("numeric" in p for p in bool_is_not_a_series)
        good = validate_chrome_trace(
            {"traceEvents": meta + [dict(base, args={"bytes": 1})]}
        )
        assert good == []

    def test_finalize_hook_samples_cluster_ledger_bytes(self):
        tracer, deployment = traced_run()
        payload = to_chrome_trace(tracer)
        counters = [
            e for e in payload["traceEvents"] if e["ph"] == "C"
        ]
        assert counters
        assert all("ledger bytes" in e["name"] for e in counters)
        # The series is monotone non-decreasing per cluster: ledgers grow.
        by_name: dict = {}
        for row in counters:
            by_name.setdefault(row["name"], []).append(
                (row["ts"], row["args"]["bytes"])
            )
        for series in by_name.values():
            values = [b for _, b in sorted(series)]
            assert values == sorted(values)


class TestTraceDiff:
    def payload(self, *rows):
        meta = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "ts": 0, "args": {"name": "nodes"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
             "ts": 0, "args": {"name": "node 0"}},
        ]
        return {"traceEvents": meta + list(rows)}

    def row(self, **overrides):
        base = {
            "name": "block_body", "ph": "i", "pid": 1, "tid": 0,
            "ts": 100.0, "cat": "send", "args": {"to": 1, "bytes": 7},
        }
        base.update(overrides)
        return base

    def test_identical_traces_diff_to_none(self):
        from repro.obs.diff import diff_traces, render_divergence

        a, b = self.payload(self.row()), self.payload(self.row())
        assert diff_traces(a, b) is None
        assert "identical" in render_divergence(None)

    def test_first_divergent_field_is_localized(self):
        from repro.obs.diff import diff_traces, render_divergence

        a = self.payload(self.row(), self.row(ts=200.0))
        b = self.payload(self.row(), self.row(ts=250.0))
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.index == 1
        assert divergence.fields == ("ts",)
        assert divergence.a_label == "nodes/node 0"
        text = render_divergence(divergence)
        assert "story event #1" in text
        assert "ts" in text
        assert "block_body" in text

    def test_metadata_rows_do_not_shift_indices(self):
        from repro.obs.diff import diff_traces

        a = self.payload(self.row())
        b = {"traceEvents": [self.row()]}  # no metadata at all
        assert diff_traces(a, b) is None

    def test_length_mismatch_reports_trace_end(self):
        from repro.obs.diff import diff_traces, render_divergence

        a = self.payload(self.row(), self.row(ts=200.0))
        b = self.payload(self.row())
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.index == 1
        assert divergence.fields == ()
        assert divergence.b is None
        assert "ends before" in render_divergence(divergence)

    def test_wall_clock_residue_is_masked(self):
        from repro.obs.diff import diff_traces

        a = self.payload(
            self.row(ph="X", dur=5.0, args={"wall_us": 12.5})
        )
        b = self.payload(
            self.row(ph="X", dur=5.0, args={"wall_us": 99.9})
        )
        assert diff_traces(a, b) is None

    def test_unreadable_file_raises_observability_error(self, tmp_path):
        from repro.obs.diff import diff_traces

        good = tmp_path / "a.json"
        good.write_text(json.dumps(self.payload(self.row())))
        with pytest.raises(ObservabilityError):
            diff_traces(good, tmp_path / "missing.json")
        bad = tmp_path / "b.json"
        bad.write_text("not json")
        with pytest.raises(ObservabilityError):
            diff_traces(good, bad)

    def test_cli_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(self.payload(self.row())))
        b.write_text(json.dumps(self.payload(self.row(ts=999.0))))
        assert main(["trace", "diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "first divergence" in capsys.readouterr().out
        assert main(["trace", "diff", str(a)]) == 2
        assert "exactly two" in capsys.readouterr().err
        # Stray FILE operands on a recording scenario are a usage error.
        assert main(["trace", "ici", str(a), str(b)]) == 2
