"""Tests for UTXO snapshot serialization and bootstrap fast-sync."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction, TxOutput
from repro.chain.utxo import UtxoSet
from repro.errors import ValidationError


def populated_set(n: int = 10, seed: int = 0) -> UtxoSet:
    utxos = UtxoSet()
    for index in range(n):
        tx = Transaction(
            inputs=(),
            outputs=(
                TxOutput(
                    value=100 + index,
                    address=bytes([index % 250]) * 20,
                ),
            ),
            payload=f"{seed}-{index}".encode(),
        )
        utxos.apply_transaction(tx, height=index % 5)
    return utxos


class TestSnapshotRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = populated_set(12)
        restored = UtxoSet.deserialize_snapshot(
            original.serialize_snapshot()
        )
        assert len(restored) == len(original)
        assert restored.total_value == original.total_value
        assert (
            restored.snapshot_addresses() == original.snapshot_addresses()
        )

    def test_empty_set(self):
        restored = UtxoSet.deserialize_snapshot(
            UtxoSet().serialize_snapshot()
        )
        assert len(restored) == 0

    def test_deterministic_bytes(self):
        a = populated_set(8).serialize_snapshot()
        b = populated_set(8).serialize_snapshot()
        assert a == b

    def test_snapshot_bytes_property_matches(self):
        utxos = populated_set(9)
        assert len(utxos.serialize_snapshot()) == utxos.snapshot_bytes

    def test_truncated_rejected(self):
        raw = populated_set(3).serialize_snapshot()
        with pytest.raises(ValidationError, match="truncated"):
            UtxoSet.deserialize_snapshot(raw[:-2])

    def test_trailing_bytes_rejected(self):
        raw = populated_set(3).serialize_snapshot()
        with pytest.raises(ValidationError, match="trailing"):
            UtxoSet.deserialize_snapshot(raw + b"\x00")

    def test_restored_set_is_spendable(self, ledger, alice, bob):
        """A snapshot-restored set validates the same next block."""
        from tests.conftest import make_transfer_block
        from repro.chain.validation import check_block_stateful

        restored = UtxoSet.deserialize_snapshot(
            ledger.utxos.serialize_snapshot()
        )
        block = make_transfer_block(ledger, alice, bob, 500)
        check_block_stateful(block, restored)  # raises on failure

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 30), st.integers(0, 100))
    def test_roundtrip_property(self, n, seed):
        original = populated_set(n, seed=seed)
        restored = UtxoSet.deserialize_snapshot(
            original.serialize_snapshot()
        )
        assert restored.total_value == original.total_value
        assert len(restored) == len(original)


class TestBootstrapFastSync:
    def test_real_snapshot_transferred_and_decoded(self):
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment
        from repro.sim.runner import ScenarioRunner
        from tests.conftest import TEST_LIMITS

        deployment = ICIDeployment(
            12,
            config=ICIConfig(
                n_clusters=3,
                transfer_state_snapshot=True,
                limits=TEST_LIMITS,
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks(5, txs_per_block=4)
        expected = deployment.ledger.utxos.snapshot_bytes
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        assert join.snapshot_bytes == expected
        assert join.snapshot_bytes > 0

    def test_flat_and_real_costs_compose(self):
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment
        from repro.sim.runner import ScenarioRunner
        from tests.conftest import TEST_LIMITS

        deployment = ICIDeployment(
            12,
            config=ICIConfig(
                n_clusters=3,
                transfer_state_snapshot=True,
                state_snapshot_bytes=1_000,
                limits=TEST_LIMITS,
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks(3, txs_per_block=3)
        join = deployment.join_new_node()
        deployment.run()
        assert (
            join.snapshot_bytes
            == 1_000 + deployment.ledger.utxos.snapshot_bytes
        )
