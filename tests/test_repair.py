"""The anti-entropy repair engine: silent damage gets found and fixed.

The event-driven repair paths only fix damage they are told about; these
tests damage storage *without* telling anyone (unassign a body, crash a
repair source mid-transfer) and assert the periodic sweep restores the
replication floor — idempotently, with failover, and with an explicit
unrecoverable verdict when no live replica exists anywhere.
"""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deployed(n_nodes=12, n_blocks=4, faults=True, **config_kwargs):
    config_kwargs.setdefault("n_clusters", 3)
    config_kwargs.setdefault("replication", 2)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(n_nodes, config=ICIConfig(**config_kwargs))
    # A zero-rate fault layer: lossless and deterministic, but its
    # presence routes departures through the tracked repair path.
    injector = FaultPlan().install(deployment.network) if faults else None
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    runner.produce_blocks(n_blocks, txs_per_block=2)
    return deployment, injector


def sweep(deployment, rounds=4, cadence=2.0):
    """Run the engine for ``rounds`` sweep windows, then quiesce."""
    deployment.repair.start(cadence=cadence)
    for _ in range(rounds):
        deployment.network.clock.run_for(cadence)
    deployment.repair.stop()
    deployment.run()


def replicas(deployment, cluster_id, block_hash) -> int:
    return sum(
        deployment.nodes[m].store.has_body(block_hash)
        for m in deployment.clusters.members_of(cluster_id)
        if m in deployment.nodes
    )


def pick_block(deployment, cluster_id):
    """A non-genesis block and one of its in-cluster holders."""
    members = deployment.clusters.members_of(cluster_id)
    for header in deployment.ledger.store.iter_active_headers():
        if header.is_genesis:
            continue
        for member in members:
            if deployment.nodes[member].store.has_body(header.block_hash):
                return header.block_hash, member
    raise AssertionError("no replicated block found")


class TestDormantByDefault:
    def test_installed_but_off_path(self):
        deployment, _ = deployed(faults=False)
        repair = deployment.engines["repair"]
        assert repair is deployment.repair
        assert not repair.active
        # Never swept, never sent: a whole run left no repair footprint.
        assert all(v == 0 for v in repair.stats.as_dict().values())
        assert not repair.tracker.pending
        assert deployment.network.clock.pending == 0

    def test_start_rejects_degenerate_cadence(self):
        deployment, _ = deployed(faults=False)
        with pytest.raises(ConfigurationError):
            deployment.repair.start(cadence=0.0)


class TestSweeping:
    def test_healthy_cluster_sweeps_to_a_noop(self):
        deployment, _ = deployed()
        sweep(deployment, rounds=3)
        stats = deployment.repair.stats
        assert stats.sweeps >= 3
        assert stats.digests_received > 0
        assert stats.digest_failures == 0
        assert stats.under_replicated == 0
        assert stats.repairs_scheduled == 0
        assert stats.blocks_re_replicated == 0

    def test_silent_loss_detected_and_restored(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        block_hash, holder = pick_block(deployment, cluster)
        deployment.nodes[holder].unassign_body(block_hash)
        assert replicas(deployment, cluster, block_hash) == 1
        sweep(deployment)
        assert replicas(deployment, cluster, block_hash) >= 2
        stats = deployment.repair.stats
        assert stats.under_replicated == 1
        assert stats.blocks_re_replicated == 1
        assert stats.bytes_re_replicated > 0
        # Time-to-repair was measured in virtual time.
        assert len(deployment.repair.repair_times) == 1
        assert deployment.repair.repair_times[0] >= 0.0

    def test_overlapping_sweeps_repair_exactly_once(self):
        """Idempotency: many sweeps over one deficit, one transfer."""
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        block_hash, holder = pick_block(deployment, cluster)
        deployment.nodes[holder].unassign_body(block_hash)
        sweep(deployment, rounds=8, cadence=0.5)
        assert replicas(deployment, cluster, block_hash) >= 2
        assert deployment.repair.stats.blocks_re_replicated == 1

    def test_genesis_regenerated_without_a_transfer(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        genesis_hash = next(
            h.block_hash
            for h in deployment.ledger.store.iter_active_headers()
            if h.is_genesis
        )
        holder = next(
            m
            for m in deployment.clusters.members_of(cluster)
            if deployment.nodes[m].store.has_body(genesis_hash)
        )
        deployment.nodes[holder].unassign_body(genesis_hash)
        sweep(deployment)
        assert replicas(deployment, cluster, genesis_hash) >= 2
        stats = deployment.repair.stats
        assert stats.blocks_re_replicated == 1
        assert stats.repairs_scheduled == 0  # local regeneration, no wire


class TestUnrecoverable:
    def test_r1_cross_cluster_failover(self):
        """One crashed r=1 holder is *not* fatal: sibling clusters hold
        the full ledger too, and the plan falls back to them."""
        deployment, injector = deployed(n_nodes=9, replication=1)
        cluster = deployment.nodes[0].cluster_id
        block_hash, holder = pick_block(deployment, cluster)
        injector.crash(holder)
        sweep(deployment, rounds=3)
        assert deployment.repair.stats.unrecoverable == 0
        assert deployment.repair.stats.blocks_re_replicated >= 1
        live = [
            m
            for m in deployment.clusters.members_of(cluster)
            if m != holder
        ]
        assert any(
            deployment.nodes[m].store.has_body(block_hash) for m in live
        )

    def test_r1_every_holder_dead_is_reported_not_hung(self):
        deployment, injector = deployed(n_nodes=9, replication=1)
        block_hash, _ = pick_block(
            deployment, deployment.nodes[0].cluster_id
        )
        holders = sorted(
            node_id
            for node_id, node in deployment.nodes.items()
            if node.store.has_body(block_hash)
        )
        for holder in holders:
            injector.crash(holder)
        sweep(deployment, rounds=3)
        stats = deployment.repair.stats
        assert stats.unrecoverable >= 1
        first_count = stats.unrecoverable

        # Counted once per (cluster, block), not once per sweep.
        sweep(deployment, rounds=2)
        assert deployment.repair.stats.unrecoverable == first_count

        # The verdict is revisited: once the holders recover, the live
        # replicas satisfy the floor again.
        injector.heal()
        sweep(deployment, rounds=2)
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)


class TestMidRepairCrash:
    def test_source_dies_before_sync_bodies_fails_over(self):
        """r=3: the preferred source crashes after receiving the
        SYNC_REQUEST; the tracked transfer fails over to the other
        surviving replica and the departure still completes cleanly."""
        deployment, injector = deployed(n_nodes=20, n_clusters=4,
                                        replication=3)
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        report = deployment.leave_node(victim)
        pending = deployment.repair.tracker.pending
        assert pending  # transfers run on tracker deadlines under faults
        # Crash a node that is purely a repair *source* — crashing a
        # transfer target would (correctly) defer that target's batch.
        targets = set(deployment.sync.sessions)
        source = sorted(
            req.plan[0]
            for req in pending.values()
            if req.plan[0] not in targets
        )[0]
        injector.crash(source)
        deployment.run()
        assert report.complete
        assert report.deferred_blocks == []
        assert victim not in deployment.nodes
        assert deployment.cluster_holds_full_ledger(cluster)

    def test_exhausted_transfer_defers_to_anti_entropy(self):
        """r=2: every replica source of a batch dies mid-transfer.  The
        departure completes *degraded* (owed blocks deferred, stale
        copies kept) and the sweep finishes the job after recovery."""
        deployment, injector = deployed(replication=2)
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        report = deployment.leave_node(victim)
        pending = deployment.repair.tracker.pending
        assert pending
        sources = {req.plan[0] for req in pending.values()}
        for source in sources:
            injector.crash(source)
        deployment.run()
        assert report.complete
        assert report.deferred_blocks  # handed off, not hung
        assert victim not in deployment.nodes

        injector.heal()
        sweep(deployment, rounds=6)
        repair = deployment.repair.stats
        assert repair.blocks_re_replicated >= len(
            set(report.deferred_blocks)
        )
        assert deployment.cluster_holds_full_ledger(cluster)
        for block_hash in set(report.deferred_blocks):
            assert replicas(deployment, cluster, block_hash) >= 2
