"""Unit + property tests for Merkle trees and inclusion proofs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import ZERO_HASH, hash_concat, sha256
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root
from repro.errors import MerkleError


def leaves(n: int) -> list[bytes]:
    return [sha256(f"leaf-{i}".encode()) for i in range(n)]


class TestTreeConstruction:
    def test_empty_tree_root_is_zero(self):
        assert MerkleTree([]).root == ZERO_HASH

    def test_single_leaf_root_is_leaf(self):
        leaf = sha256(b"only")
        assert MerkleTree([leaf]).root == leaf

    def test_two_leaves_root(self):
        a, b = leaves(2)
        assert MerkleTree([a, b]).root == hash_concat(a, b)

    def test_odd_level_duplicates_last(self):
        a, b, c = leaves(3)
        expected = hash_concat(hash_concat(a, b), hash_concat(c, c))
        assert MerkleTree([a, b, c]).root == expected

    def test_rejects_non_digest_leaves(self):
        with pytest.raises(MerkleError):
            MerkleTree([b"too short"])

    def test_merkle_root_helper_matches_tree(self):
        sample = leaves(5)
        assert merkle_root(sample) == MerkleTree(sample).root

    def test_leaf_count(self):
        assert MerkleTree(leaves(7)).leaf_count == 7

    def test_order_sensitivity(self):
        sample = leaves(4)
        assert MerkleTree(sample).root != MerkleTree(sample[::-1]).root


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13, 33])
    def test_every_leaf_proves(self, size):
        sample = leaves(size)
        tree = MerkleTree(sample)
        for index in range(size):
            proof = tree.proof(index)
            assert proof.verify(tree.root)
            assert proof.leaf == sample[index]

    def test_proof_rejects_wrong_root(self):
        tree = MerkleTree(leaves(6))
        assert not tree.proof(2).verify(sha256(b"bogus"))

    def test_proof_rejects_tampered_leaf(self):
        tree = MerkleTree(leaves(6))
        proof = tree.proof(2)
        forged = MerkleProof(
            leaf=sha256(b"forged"), index=proof.index, path=proof.path
        )
        assert not forged.verify(tree.root)

    def test_out_of_range_index_raises(self):
        tree = MerkleTree(leaves(4))
        with pytest.raises(MerkleError):
            tree.proof(4)
        with pytest.raises(MerkleError):
            tree.proof(-1)

    def test_empty_tree_proof_raises(self):
        with pytest.raises(MerkleError):
            MerkleTree([]).proof(0)

    def test_proof_size_is_logarithmic(self):
        tree = MerkleTree(leaves(64))
        proof = tree.proof(0)
        assert len(proof.path) == 6  # log2(64)
        assert proof.size_bytes == 32 * 6 + 32 + 4

    @given(st.integers(min_value=1, max_value=40), st.data())
    def test_proof_roundtrip_property(self, size, data):
        sample = leaves(size)
        tree = MerkleTree(sample)
        index = data.draw(st.integers(0, size - 1))
        assert tree.proof(index).verify(tree.root)

    @given(st.integers(min_value=2, max_value=24), st.data())
    def test_cross_leaf_proofs_do_not_transfer(self, size, data):
        """A proof for leaf i must not verify with leaf j's digest."""
        sample = leaves(size)
        tree = MerkleTree(sample)
        i = data.draw(st.integers(0, size - 1))
        j = data.draw(
            st.integers(0, size - 1).filter(lambda value: value != i)
        )
        proof = tree.proof(i)
        forged = MerkleProof(leaf=sample[j], index=i, path=proof.path)
        assert not forged.verify(tree.root)
