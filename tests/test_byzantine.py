"""Byzantine fault-injection tests for intra-cluster verification.

One cluster of 7 (quorum ⌊14/3⌋+1 = 5, tolerating f = 2 liars) with
replication 3 (holder-prepare majority 2 of 3), so both vote layers'
thresholds are exercised.
"""

from __future__ import annotations


from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def one_cluster(n_nodes=7, replication=3, **kwargs):
    kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(
        n_nodes,
        config=ICIConfig(
            n_clusters=1, replication=replication, **kwargs
        ),
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    return deployment, runner


def honest_members(deployment):
    return [
        node_id
        for node_id in deployment.nodes
        if node_id not in deployment.byzantine
    ]


class TestLyingMembers:
    def test_f_liars_cannot_block_finality(self):
        """2 of 7 members lying REJECT: valid blocks still accepted."""
        deployment, runner = one_cluster()
        deployment.byzantine = {5: "vote_reject", 6: "vote_reject"}
        report = runner.produce_blocks(3, txs_per_block=2)
        for block_hash in report.block_hashes:
            assert block_hash not in deployment.metrics.blocks_rejected
            for node_id in honest_members(deployment):
                assert deployment.nodes[node_id].is_finalized(block_hash)

    def test_beyond_f_liars_can_block_acceptance(self):
        """3 of 7 lying REJECT: the accept quorum (5) becomes impossible."""
        deployment, runner = one_cluster()
        deployment.byzantine = {
            4: "vote_reject",
            5: "vote_reject",
            6: "vote_reject",
        }
        report = runner.produce_blocks(1, txs_per_block=2)
        # 4 honest accepts < quorum 5: the cluster rejects (safe failure —
        # a valid block is refused, never an invalid one accepted).
        assert report.block_hashes[0] in deployment.metrics.blocks_rejected

    def test_lying_holder_majority_outvoted(self):
        """1 lying holder of 3: prepare majority (2 honest) prevails."""
        deployment, runner = one_cluster()
        # Make exactly one node byzantine; with r=3 it can be a holder of
        # some blocks, where the other two holders out-prepare it.
        deployment.byzantine = {6: "vote_reject"}
        report = runner.produce_blocks(4, txs_per_block=2)
        assert not deployment.metrics.blocks_rejected

    def test_sole_lying_holder_poisons_r1(self):
        """With r=1 a block whose only holder lies gets rejected —
        the verification-side argument for r > 1."""
        deployment, runner = one_cluster(replication=1)
        liar = 3
        deployment.byzantine = {liar: "vote_reject"}
        report = runner.produce_blocks(6, txs_per_block=2)
        poisoned = [
            block_hash
            for block_hash in report.block_hashes
            if deployment.holders_in_cluster(
                deployment.ledger.store.header(block_hash), 0
            )
            == (liar,)
        ]
        for block_hash in poisoned:
            assert block_hash in deployment.metrics.blocks_rejected
        for block_hash in set(report.block_hashes) - set(poisoned):
            assert block_hash not in deployment.metrics.blocks_rejected


class TestSilentMembers:
    def test_silent_minority_tolerated_in_broadcast_mode(self):
        deployment, runner = one_cluster(aggregate_votes=False)
        deployment.byzantine = {5: "silent", 6: "silent"}
        report = runner.produce_blocks(3, txs_per_block=2)
        for block_hash in report.block_hashes:
            finalized = sum(
                deployment.nodes[node_id].is_finalized(block_hash)
                for node_id in honest_members(deployment)
            )
            assert finalized == 5

    def test_silent_aggregator_stalls_its_blocks(self):
        """Known limitation: a silent aggregator (primary holder) stalls
        finalization of the blocks it aggregates — the protocol needs a
        view change for liveness, which is out of the paper's scope."""
        deployment, runner = one_cluster(aggregate_votes=True)
        silent = 2
        deployment.byzantine = {silent: "silent"}
        report = runner.produce_blocks(5, txs_per_block=2)
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            aggregator = deployment.aggregator_for(header, 0)
            finalized = sum(
                deployment.nodes[n].is_finalized(block_hash)
                for n in honest_members(deployment)
            )
            if aggregator == silent:
                assert finalized < 6
            else:
                assert finalized == 6


class TestForgedCertificates:
    def test_incomplete_certificate_rejected_by_members(self):
        """A certificate lacking quorum signatures does not finalize."""
        from repro.consensus.quorum import Vote
        from repro.core.verification import CommitVote, QuorumCertificate
        from repro.crypto.keys import KeyPair

        deployment, runner = one_cluster()
        report = runner.produce_blocks(1, txs_per_block=2)
        block_hash = report.block_hashes[0]

        # Forge a 2-signature certificate for a *different* verdict.
        forged = QuorumCertificate(
            block_hash=block_hash,
            vote=Vote.REJECT,
            commits=tuple(
                CommitVote.create(
                    KeyPair.from_seed(member), block_hash, member, Vote.REJECT
                )
                for member in (0, 1)
            ),
        )
        victim = deployment.nodes[3]
        victim.finalized.discard(block_hash)
        deployment.verification.apply_result(victim, forged)
        # Below quorum: the forged certificate is ignored.
        assert not victim.is_finalized(block_hash)

    def test_unsigned_certificate_rejected(self):
        from repro.consensus.quorum import Vote
        from repro.core.verification import CommitVote, QuorumCertificate

        deployment, runner = one_cluster()
        report = runner.produce_blocks(1, txs_per_block=2)
        block_hash = report.block_hashes[0]
        bogus = QuorumCertificate(
            block_hash=block_hash,
            vote=Vote.REJECT,
            commits=tuple(
                CommitVote(
                    block_hash=block_hash,
                    member=member,
                    vote=Vote.REJECT,
                    signature=b"\x00" * 64,
                )
                for member in range(5)
            ),
        )
        victim = deployment.nodes[3]
        victim.finalized.discard(block_hash)
        deployment.verification.apply_result(victim, bogus)
        assert not victim.is_finalized(block_hash)
