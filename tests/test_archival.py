"""Archival coding: RS chunking of cold blocks, thaw, repair, audits.

Covers the whole archival loop (:mod:`repro.storage.coded`): the
cold-block transition from replicas to 3+1 Reed–Solomon chunk sets on
distinct members, lazy reconstruction through the query failover tail,
chunk re-homing when holders depart, thaw on re-warm, the acceptance
comparison (:mod:`repro.sim.archival`) behind the ">= 10% stored bytes
at full read availability" claim, and the endurance audit's coded
floor.  Every scenario is seeded; the key ones are pinned.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.chain.block import serialize_body
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.runner import ScenarioRunner
from repro.storage.coded import ArchivalConfig
from repro.storage.heat import COLD, HeatConfig
from tests.conftest import TEST_LIMITS
from tests.test_adaptive import ADAPTIVE_GOLDEN_SHA

#: Archival flavour of the endurance golden scenario (same seed and
#: population as tests/test_endurance.py's GOLDEN_CONFIG).
ARCHIVAL_GOLDEN_CONFIG = dict(
    seed=42, n_nodes=15, n_clusters=3, n_blocks=6, queries=4, archival=True
)

#: sha256 of the canonical-JSON signature of the archival golden run.
#: Changing it means the archive/thaw/repair interplay changed: confirm
#: intent (trace-diff two runs), then update.
ARCHIVAL_GOLDEN_SHA = (
    "9ac681795fed7d28774d20be9a04cea715fe94caef523693133d40c227bb3a45"
)

#: Small-population tiering knobs (same as tests/test_adaptive.py):
#: with 6 blocks the default quantiles would allot zero hot slots.
SMALL_HEAT = HeatConfig(hot_quantile=0.8, cold_quantile=0.5)


def build_archival(
    n_nodes: int = 6,
    n_clusters: int = 1,
    replication: int = 2,
    n_blocks: int = 6,
    code: ArchivalConfig | None = None,
):
    """One-cluster archival deployment with ``n_blocks`` produced."""
    config = ICIConfig(
        n_clusters=n_clusters,
        replication=replication,
        limits=TEST_LIMITS,
    )
    deployment = ICIDeployment(n_nodes, config=config)
    deployment.enable_adaptive_replication(SMALL_HEAT)
    tier = deployment.enable_archival_tier(code)
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=7)
    report = runner.produce_blocks(n_blocks, txs_per_block=2)
    return deployment, tier, report


def heat_one_block(deployment, block_hash, times: int = 12) -> None:
    """Concentrate accesses so the quantile refresh finds a cold tail."""
    for _ in range(times):
        deployment.heat.note_access(block_hash)


def sweep(deployment, seconds: float = 30.0, cadence: float = 5.0):
    """Run anti-entropy sweeps for a virtual window, then drain.

    Thirty seconds: enough for the refresh → archive → repair cycle to
    run several times even when a degraded digest burns a retry tail.
    """
    deployment.repair.start(cadence=cadence)
    deployment.network.clock.run_for(seconds)
    deployment.repair.stop()
    deployment.run()


def archived_hashes(deployment, tier, report):
    """The produced blocks the (single) cluster holds in coded form."""
    return [
        block_hash
        for block_hash in report.block_hashes
        if tier.is_archived(0, block_hash)
    ]


class TestArchivalConfig:
    def test_defaults_validate(self):
        config = ArchivalConfig()
        assert config.total_chunks == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(data_chunks=0),
            dict(parity_chunks=0),
            dict(parity_chunks=-1),
            dict(data_chunks=200, parity_chunks=100),
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ConfigurationError):
            ArchivalConfig(**kwargs)


class TestArchivalTier:
    def test_cold_blocks_archive_onto_distinct_live_members(self):
        deployment, tier, report = build_archival()
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        archived = archived_hashes(deployment, tier, report)
        assert archived, "no cold block transitioned to coded form"
        assert tier.stats.blocks_archived > 0
        for block_hash in archived:
            assert tier.planner.tier_of(block_hash) == COLD
            # Every full replica dropped from the cluster...
            assert not any(
                node.store.has_body(block_hash)
                for node in deployment.nodes.values()
            )
            # ...and n chunks sit on n distinct live members.
            holders = tier.holders_of(0, block_hash)
            assert len(holders) == tier.config.total_chunks
            assert len(set(holders.values())) == len(holders)
            assert all(
                deployment.network.is_online(holder)
                for holder in holders.values()
            )
            assert tier.coded_floor_ok(0, block_hash)
            assert tier.can_reconstruct(0, block_hash)
        assert tier.total_chunk_bytes > 0

    def test_reconstruct_is_byte_identical(self):
        deployment, tier, report = build_archival()
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        block_hash = archived_hashes(deployment, tier, report)[0]
        block = tier.reconstruct(0, block_hash)
        assert block is not None
        assert serialize_body(block) == serialize_body(
            deployment.ledger.store.body(block_hash)
        )
        assert tier.stats.reconstructions == 1
        # The lazy decode does not re-adopt replicas: cold stays coded.
        assert tier.is_archived(0, block_hash)
        assert not any(
            node.store.has_body(block_hash)
            for node in deployment.nodes.values()
        )

    def test_query_failover_tail_decodes_archived_blocks(self):
        deployment, tier, report = build_archival()
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        block_hash = archived_hashes(deployment, tier, report)[0]
        requester = sorted(deployment.nodes)[0]
        record = deployment.retrieve_block(requester, block_hash)
        deployment.run()
        assert record.completed_at is not None
        assert not record.degraded
        assert tier.stats.reconstructions > 0
        assert tier.stats.failed_reconstructions == 0

    def test_rewarmed_blocks_thaw_back_to_replicas(self):
        deployment, tier, report = build_archival()
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        block_hash = archived_hashes(deployment, tier, report)[0]
        # The archived block becomes the hottest thing on the chain.
        heat_one_block(deployment, block_hash, times=50)
        sweep(deployment)
        assert not tier.is_archived(0, block_hash)
        assert tier.stats.blocks_thawed > 0
        holders = sum(
            1
            for node in deployment.nodes.values()
            if node.store.has_body(block_hash)
        )
        assert holders >= 1

    def test_crashed_chunk_holder_is_re_homed(self):
        deployment, tier, report = build_archival()
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        block_hash = archived_hashes(deployment, tier, report)[0]
        victim = sorted(tier.holders_of(0, block_hash).values())[0]
        deployment.network.set_online(victim, False)
        sweep(deployment)
        holders = tier.holders_of(0, block_hash)
        assert victim not in holders.values()
        assert len(set(holders.values())) == len(holders)
        assert tier.stats.chunks_repaired > 0
        assert tier.coded_floor_ok(0, block_hash)
        assert tier.chunk_bytes_of(victim) == 0

    def test_small_clusters_keep_replicas(self):
        # A 3-member cluster cannot give 3+1 chunks distinct holders:
        # the tier must leave the replica floor untouched.
        deployment, tier, report = build_archival(n_nodes=3)
        heat_one_block(deployment, report.block_hashes[-1])
        sweep(deployment)
        assert tier.archived_blocks == 0
        assert tier.stats.blocks_archived == 0
        for block_hash in report.block_hashes:
            assert any(
                node.store.has_body(block_hash)
                for node in deployment.nodes.values()
            )

    def test_enable_is_idempotent_and_implies_adaptive(self):
        deployment, tier, _ = build_archival()
        assert deployment.enable_archival_tier() is tier
        assert deployment.replication_planner is not None
        assert deployment.archival is tier


class TestArchivalCompare:
    def test_acceptance_savings_and_availability(self):
        """The PR's acceptance gate, verbatim: under Zipf reads at seed
        42 and r=3 the archival deployment stores >= 10% fewer total
        bytes (replicas + chunks) than adaptive-only, every query still
        completes, and no audit round finds a coverage hole or a block
        below its coded/shed floor."""
        from repro.sim.archival import (
            ArchivalCompareConfig,
            run_archival_compare,
        )

        outcome = run_archival_compare(ArchivalCompareConfig(seed=42))
        assert outcome.coded_bytes < outcome.adaptive_bytes
        assert outcome.savings_fraction >= 0.10, outcome.signature()
        assert outcome.reads_ok
        assert outcome.converged_safely
        assert outcome.archival_stats["blocks_archived"] > 0
        assert outcome.archival_stats["reconstructions"] > 0
        assert outcome.archival_stats["failed_reconstructions"] == 0
        assert outcome.adaptive_queries_completed == outcome.config.reads
        assert outcome.coded_queries_completed == outcome.config.reads

    def test_compare_is_deterministic(self):
        from repro.sim.archival import (
            ArchivalCompareConfig,
            run_archival_compare,
        )

        config = ArchivalCompareConfig(n_blocks=8, reads=60, rounds=3)
        assert (
            run_archival_compare(config).signature()
            == run_archival_compare(config).signature()
        )

    def test_rejects_degenerate_configs(self):
        from repro.sim.archival import ArchivalCompareConfig

        with pytest.raises(ConfigurationError):
            ArchivalCompareConfig(n_blocks=1)
        with pytest.raises(ConfigurationError):
            ArchivalCompareConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            ArchivalCompareConfig(repair_cadence=0.0)


class TestArchivalEndurance:
    def endurance(self, **kwargs):
        from repro.sim.chaos import EnduranceConfig, run_endurance

        config = dict(ARCHIVAL_GOLDEN_CONFIG)
        config.update(kwargs)
        return run_endurance(
            EnduranceConfig(**config), limits=TEST_LIMITS
        )

    def test_survives_churn_with_the_coded_floor_met(self):
        outcome = self.endurance()
        assert outcome.integrity_restored
        assert outcome.replica_floor_met  # coded-aware audit
        assert outcome.archival["blocks_archived"] > 0
        assert outcome.archival["chunks_repaired"] > 0
        assert outcome.archival["failed_reconstructions"] == 0
        assert outcome.storage_total_bytes > 0

    def test_archival_golden_signature(self):
        signature = self.endurance().signature()
        assert "archival" in signature
        blob = json.dumps(signature, sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == ARCHIVAL_GOLDEN_SHA, signature

    def test_disabled_runs_carry_no_archival_key(self):
        outcome = self.endurance(archival=False, adaptive=True)
        assert outcome.archival == {}
        signature = outcome.signature()
        assert "archival" not in signature
        # Byte-identical-when-disabled, pinned next to PR 7's: with the
        # tier off, the adaptive endurance run still reproduces its own
        # golden signature exactly.
        blob = json.dumps(signature, sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == ADAPTIVE_GOLDEN_SHA, signature

    def test_trace_carries_archival_story(self):
        from repro.obs.export import to_chrome_trace, validate_chrome_trace
        from repro.obs.tracer import Tracer
        from repro.sim.chaos import EnduranceConfig, run_endurance

        tracer = Tracer()
        run_endurance(
            EnduranceConfig(**ARCHIVAL_GOLDEN_CONFIG),
            limits=TEST_LIMITS,
            tracer=tracer,
        )
        payload = to_chrome_trace(tracer, label="archival test")
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        assert "block_archived" in names
        assert "chunk_repaired" in names
        counters = {
            event["name"]
            for event in events
            if event["ph"] == "C" and event["name"].startswith("tier ")
        }
        assert "tier archival coded bytes" in counters

    def test_report_renders_archival_section(self):
        from repro.analysis.report import render_endurance_summary

        archival = render_endurance_summary(self.endurance())
        assert "## Archival coding" in archival
        assert "blocks archived / thawed" in archival
        assert "lazy reconstructions" in archival
        plain = render_endurance_summary(
            self.endurance(archival=False, adaptive=True)
        )
        assert "## Archival coding" not in plain

    def test_cli_archival_flag(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "archival.md"
        code = main(
            [
                "endurance",
                "--archival",
                "--seed", "42",
                "--nodes", "15",
                "--groups", "3",
                "--blocks", "6",
                "--report", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## Archival coding" in out
        assert "## Archival coding" in report.read_text()

    def test_e19_workload_declares_tags(self):
        from pathlib import Path

        from repro.bench import discover_workloads

        repo_root = Path(__file__).resolve().parents[1]
        workloads = discover_workloads(repo_root / "benchmarks")
        by_id = {w.bench_id: w for w in workloads}
        assert "e19" in by_id
        assert set(by_id["e19"].tags) == {"coded", "archival"}
