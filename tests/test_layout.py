"""Tests for the paper-scale storage-layout simulation."""

from __future__ import annotations

import pytest

from repro.chain.block import HEADER_SIZE
from repro.errors import ConfigurationError
from repro.storage.accounting import ici_total, rapidchain_total
from repro.storage.layout import (
    balanced_clusters,
    full_replication_layout,
    ici_layout,
    rapidchain_layout,
    synthetic_chain,
)
from repro.storage.placement import RoundRobinPlacement


class TestSyntheticChain:
    def test_deterministic(self):
        assert synthetic_chain(10, seed=2) == synthetic_chain(10, seed=2)

    def test_chained_hashes(self):
        blocks = synthetic_chain(5, seed=1)
        for parent, child in zip(blocks, blocks[1:]):
            assert child.header.prev_hash == parent.header.block_hash

    def test_sizes_within_jitter(self):
        blocks = synthetic_chain(
            50, mean_body_bytes=1000, jitter=0.2, seed=3
        )
        for block in blocks:
            assert 800 <= block.body_bytes <= 1200

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            synthetic_chain(-1)
        with pytest.raises(ConfigurationError):
            synthetic_chain(2, jitter=1.5)


class TestLayouts:
    def test_ici_layout_matches_closed_form(self):
        blocks = synthetic_chain(200, mean_body_bytes=10_000, seed=4)
        ledger = sum(b.body_bytes for b in blocks)
        clusters = balanced_clusters(60, 6, seed=4)  # cluster size 10
        report = ici_layout(clusters, blocks, replication=2)
        total_bodies = sum(r.body_bytes for r in report.per_node)
        assert total_bodies == pytest.approx(
            ici_total(60, 10, 2, ledger), rel=1e-9
        )

    def test_rapidchain_layout_matches_closed_form_in_expectation(self):
        blocks = synthetic_chain(400, mean_body_bytes=10_000, seed=5)
        ledger = sum(b.body_bytes for b in blocks)
        committees = balanced_clusters(60, 6, seed=5)
        report = rapidchain_layout(committees, blocks)
        total_bodies = sum(r.body_bytes for r in report.per_node)
        # Shard assignment is hash-random: expect within a few percent.
        assert total_bodies == pytest.approx(
            rapidchain_total(60, 10, ledger), rel=0.05
        )

    def test_full_replication_layout(self):
        blocks = synthetic_chain(20, mean_body_bytes=500, seed=6)
        ledger = sum(b.body_bytes for b in blocks)
        report = full_replication_layout(range(8), blocks)
        assert report.node_count == 8
        for node_report in report.per_node:
            assert node_report.body_bytes == ledger
            assert node_report.header_bytes == HEADER_SIZE * 20

    def test_every_cluster_covers_ledger(self):
        """Intra-cluster integrity at layout level: summed counts match."""
        blocks = synthetic_chain(100, seed=7)
        clusters = balanced_clusters(40, 4, seed=7)
        report = ici_layout(clusters, blocks, replication=1)
        count_by_node = {
            r.node_id: r.body_count for r in report.per_node
        }
        for view in clusters.views():
            assert (
                sum(count_by_node[m] for m in view.members) == 100
            )

    def test_round_robin_layout_perfectly_balanced(self):
        blocks = synthetic_chain(100, jitter=0.0, seed=8)
        clusters = balanced_clusters(20, 2, seed=8)  # clusters of 10
        report = ici_layout(
            clusters, blocks, replication=1, policy=RoundRobinPlacement()
        )
        counts = {r.body_count for r in report.per_node}
        assert counts == {10}

    def test_paper_scale_headline(self):
        """N=1000, committees of 250 vs clusters of 16: ≈25%."""
        blocks = synthetic_chain(300, mean_body_bytes=100_000, seed=9)
        ici_report = ici_layout(
            balanced_clusters(1000, 62, seed=9), blocks, replication=1
        )
        rapid_report = rapidchain_layout(
            balanced_clusters(1000, 4, seed=9), blocks
        )
        ratio = sum(r.body_bytes for r in ici_report.per_node) / sum(
            r.body_bytes for r in rapid_report.per_node
        )
        assert ratio == pytest.approx(0.25, abs=0.02)
