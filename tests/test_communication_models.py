"""Tests for the communication closed forms and workload fees."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.storage.communication import (
    full_replication_block_bytes,
    header_flood_bytes,
    ici_advantage_factor,
    ici_block_bytes,
    rapidchain_block_bytes,
)


class TestClosedForms:
    def test_header_flood_scales_with_n(self):
        assert header_flood_bytes(200) > header_flood_bytes(50)

    def test_full_replication_dominates(self):
        body = 100_000
        full = full_replication_block_bytes(400, body)
        ici = ici_block_bytes(400, 16, 1, body)
        rapid = rapidchain_block_bytes(400, 16, body)
        assert ici < full
        assert rapid < full

    def test_ici_advantage_grows_with_body(self):
        small = ici_advantage_factor(1000, 16, 1, 10_000)
        large = ici_advantage_factor(1000, 16, 1, 1_000_000)
        assert large > small

    def test_advantage_approaches_m_over_r(self):
        factor = ici_advantage_factor(1000, 16, 1, 100_000_000)
        assert factor == pytest.approx(16, rel=0.05)
        factor_r2 = ici_advantage_factor(1000, 16, 2, 100_000_000)
        assert factor_r2 == pytest.approx(8, rel=0.05)

    def test_vote_aggregation_cheaper_at_scale(self):
        body = 1_000
        aggregated = ici_block_bytes(
            256, 64, 1, body, aggregate_votes=True
        )
        broadcast = ici_block_bytes(
            256, 64, 1, body, aggregate_votes=False
        )
        assert aggregated < broadcast

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            ici_block_bytes(10, 20, 1, 100)
        with pytest.raises(ConfigurationError):
            ici_block_bytes(10, 5, 6, 100)
        with pytest.raises(ConfigurationError):
            rapidchain_block_bytes(10, 0, 100)

    def test_closed_form_tracks_simulator(self):
        """Measured ICI dissemination lands near the analytic model."""
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment
        from repro.sim.runner import ScenarioRunner
        from tests.conftest import TEST_LIMITS

        n_nodes, clusters = 24, 3  # cluster size 8
        deployment = ICIDeployment(
            n_nodes,
            config=ICIConfig(
                n_clusters=clusters, replication=1, limits=TEST_LIMITS
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        report = runner.produce_blocks(6, txs_per_block=4)
        measured = deployment.network.traffic.total_bytes / 6
        mean_body = report.total_body_bytes / 6
        modeled = ici_block_bytes(n_nodes, 8, 1, mean_body)
        assert measured == pytest.approx(modeled, rel=0.5)


class TestWorkloadFees:
    def test_transfers_leave_fees(self, genesis):
        from repro.sim.workload import TransactionWorkload, WorkloadConfig

        workload = TransactionWorkload(
            WorkloadConfig(fee_per_transfer=250, seed=1)
        )
        workload.on_block_confirmed(genesis)
        tx = workload.next_transfer()
        assert tx is not None
        # Fee = inputs − outputs; inputs are genesis faucet outputs.
        total_in = genesis.transactions[0].outputs[0].value
        assert total_in - tx.total_output_value == 250

    def test_negative_fee_rejected(self):
        from repro.sim.workload import WorkloadConfig

        with pytest.raises(ConfigurationError):
            WorkloadConfig(fee_per_transfer=-1)

    def test_transfer_fee_validation(self, alice):
        from repro.chain.transaction import OutPoint, make_signed_transfer
        from repro.crypto.hashing import sha256

        tx = make_signed_transfer(
            alice,
            [(OutPoint(txid=sha256(b"p"), index=0), 100)],
            b"\x09" * 20,
            amount=40,
            fee=10,
        )
        assert tx.total_output_value == 90  # 40 paid + 50 change

    def test_insufficient_for_fee_rejected(self, alice):
        from repro.chain.transaction import OutPoint, make_signed_transfer
        from repro.crypto.hashing import sha256

        with pytest.raises(ValidationError, match="insufficient"):
            make_signed_transfer(
                alice,
                [(OutPoint(txid=sha256(b"p"), index=0), 100)],
                b"\x09" * 20,
                amount=95,
                fee=10,
            )

    def test_negative_fee_in_transfer_rejected(self, alice):
        from repro.chain.transaction import OutPoint, make_signed_transfer
        from repro.crypto.hashing import sha256

        with pytest.raises(ValidationError, match="fee"):
            make_signed_transfer(
                alice,
                [(OutPoint(txid=sha256(b"p"), index=0), 100)],
                b"\x09" * 20,
                amount=10,
                fee=-1,
            )

    def test_proposer_claims_fees_end_to_end(self):
        """Coinbase = subsidy + collected fees, validated by every node."""
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment
        from repro.sim.runner import ScenarioRunner
        from repro.sim.workload import TransactionWorkload, WorkloadConfig
        from tests.conftest import TEST_LIMITS

        deployment = ICIDeployment(
            12,
            config=ICIConfig(n_clusters=3, limits=TEST_LIMITS),
        )
        workload = TransactionWorkload(
            WorkloadConfig(fee_per_transfer=100, seed=2)
        )
        runner = ScenarioRunner(
            deployment, workload=workload, limits=TEST_LIMITS
        )
        report = runner.produce_blocks(4, txs_per_block=3)
        assert not deployment.metrics.blocks_rejected
        for block in report.blocks:
            fees = 100 * (len(block.transactions) - 1)
            assert (
                block.transactions[0].total_output_value
                == TEST_LIMITS.block_reward + fees
            )
