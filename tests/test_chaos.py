"""Seeded chaos runs: the protocols must survive hostile weather.

Every scenario here drives the full deployment through the fault layer
(:mod:`repro.sim.chaos`) and asserts the paper's storage claim holds
after heal + reconcile: **each cluster again holds the complete ledger**.
Same-seed runs must also reproduce identical fault and retry counters —
that determinism is what makes a chaos failure debuggable.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.chaos import ChaosConfig, ChaosOutcome, run_chaos

from tests.conftest import TEST_LIMITS


def chaos(**kwargs) -> ChaosOutcome:
    defaults = dict(n_blocks=4, queries=4)
    defaults.update(kwargs)
    return run_chaos(ChaosConfig(**defaults), limits=TEST_LIMITS)


class TestDropRateSweep:
    @pytest.mark.parametrize("drop_rate", [0.0, 0.1, 0.2, 0.3])
    def test_integrity_restored_under_drop_rate(self, drop_rate):
        outcome = chaos(
            seed=11,
            drop_rate=drop_rate,
            duplicate_rate=0.0,
            delay_rate=0.0,
            crash_count=0,
        )
        assert outcome.integrity_restored, outcome.cluster_integrity
        assert outcome.blocks_produced == 4
        assert outcome.bootstrap_complete
        assert outcome.queries_completed == outcome.queries_attempted == 4

    def test_clean_run_needs_no_recovery(self):
        outcome = chaos(
            seed=1,
            drop_rate=0.0,
            duplicate_rate=0.0,
            delay_rate=0.0,
            crash_count=0,
        )
        assert outcome.fault_stats["dropped"] == 0
        assert outcome.degraded == {}
        assert outcome.queries_degraded == 0
        assert outcome.integrity_restored

    def test_lossy_run_actually_retries(self):
        outcome = chaos(seed=11, drop_rate=0.3, crash_count=0)
        assert outcome.fault_stats["dropped"] > 0
        assert sum(outcome.retries.values()) > 0
        assert sum(outcome.timeouts.values()) > 0


class TestCrashAndRecover:
    def test_crashed_node_recovers_and_cluster_heals(self):
        outcome = chaos(seed=5, n_blocks=6, drop_rate=0.1, crash_count=1)
        assert len(outcome.crashed) == 1
        assert outcome.fault_stats["crashes"] == 1
        assert outcome.fault_stats["recoveries"] == 1
        assert outcome.integrity_restored, outcome.cluster_integrity
        assert outcome.bootstrap_complete

    def test_stalled_node_recovers_too(self):
        outcome = chaos(
            seed=5, n_blocks=6, drop_rate=0.1, crash_count=0, stall_count=1
        )
        assert len(outcome.stalled) == 1
        assert outcome.fault_stats["stalls"] == 1
        assert outcome.fault_stats["stall_dropped"] > 0
        assert outcome.integrity_restored


class TestPartitionAndHeal:
    def test_minority_partition_heals(self):
        outcome = chaos(
            seed=9, n_blocks=6, drop_rate=0.1, crash_count=0, partition=True
        )
        assert outcome.partitioned  # somebody really was cut off
        assert outcome.fault_stats["partition_dropped"] > 0
        assert outcome.integrity_restored, outcome.cluster_integrity

    def test_partition_with_crash_composes(self):
        outcome = chaos(
            seed=13, n_blocks=6, drop_rate=0.1, crash_count=1, partition=True
        )
        assert outcome.crashed and outcome.partitioned
        assert set(outcome.crashed).isdisjoint(outcome.partitioned)
        assert outcome.integrity_restored


class TestDeterminism:
    def test_acceptance_scenario_reproduces_exactly(self):
        """The PR's acceptance pin: 20% drop + one mid-run crash, twice."""
        config = dict(seed=42, n_blocks=6, drop_rate=0.2, crash_count=1)
        first = chaos(**config)
        second = chaos(**config)
        assert first.integrity_restored
        assert first.signature() == second.signature()
        # The signature covers the retry/timeout counters explicitly.
        assert first.retries == second.retries
        assert first.timeouts == second.timeouts
        assert first.degraded == second.degraded
        assert first.fault_stats == second.fault_stats

    def test_different_seeds_diverge(self):
        first = chaos(seed=1, drop_rate=0.2, crash_count=1)
        second = chaos(seed=2, drop_rate=0.2, crash_count=1)
        assert first.signature() != second.signature()


class TestChaosConfig:
    def test_rejects_degenerate_runs(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(n_blocks=1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(crash_count=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(queries=-1)
        # Rate validation is delegated to FaultConfig at run time.
        with pytest.raises(ConfigurationError):
            run_chaos(ChaosConfig(drop_rate=1.5), limits=TEST_LIMITS)


class TestChaosReport:
    def test_summary_renders_the_verdict(self):
        from repro.analysis.report import render_chaos_summary

        outcome = chaos(seed=3, drop_rate=0.2, crash_count=1)
        summary = render_chaos_summary(outcome)
        assert "cluster integrity: restored" in summary
        assert "## Fault interception" in summary
        assert "## Protocol recovery" in summary
        assert "block_body" in summary or "verify" in summary
