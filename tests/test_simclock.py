"""Unit tests for the discrete-event clock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net.simclock import SimClock


class TestScheduling:
    def test_events_run_in_time_order(self):
        clock = SimClock()
        order: list[str] = []
        clock.schedule(2.0, lambda: order.append("late"))
        clock.schedule(1.0, lambda: order.append("early"))
        clock.run()
        assert order == ["early", "late"]
        assert clock.now == 2.0

    def test_ties_run_in_scheduling_order(self):
        clock = SimClock()
        order: list[int] = []
        for index in range(5):
            clock.schedule(1.0, lambda i=index: order.append(i))
        clock.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().schedule(-0.1, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        clock.run()
        with pytest.raises(SimulationError):
            clock.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        clock = SimClock()
        seen: list[float] = []

        def outer():
            seen.append(clock.now)
            clock.schedule(0.5, lambda: seen.append(clock.now))

        clock.schedule(1.0, outer)
        clock.run()
        assert seen == [1.0, 1.5]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        clock = SimClock()
        fired: list[bool] = []
        handle = clock.schedule(1.0, lambda: fired.append(True))
        assert handle.cancel()
        clock.run()
        assert not fired
        assert handle.cancelled

    def test_double_cancel_returns_false(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_handle_reports_time(self):
        clock = SimClock()
        handle = clock.schedule(3.0, lambda: None)
        assert handle.time == 3.0


class TestPendingCounter:
    """``pending`` is a live counter, not a heap scan."""

    def test_tracks_schedule_run_and_cancel(self):
        clock = SimClock()
        handles = [clock.schedule(float(i + 1), lambda: None) for i in range(3)]
        assert clock.pending == 3
        assert handles[1].cancel()
        assert clock.pending == 2
        clock.run_until(1.0)
        assert clock.pending == 1
        clock.run()
        assert clock.pending == 0
        assert clock.processed == 2

    def test_double_cancel_counts_once(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()
        assert clock.pending == 0

    def test_cancel_after_fire_is_noop(self):
        clock = SimClock()
        handle = clock.schedule(1.0, lambda: None)
        clock.run()
        assert not handle.cancel()
        assert clock.pending == 0


class TestBoundedRuns:
    def test_run_until_stops_at_boundary(self):
        clock = SimClock()
        fired: list[float] = []
        clock.schedule(1.0, lambda: fired.append(1.0))
        clock.schedule(5.0, lambda: fired.append(5.0))
        clock.run_until(2.0)
        assert fired == [1.0]
        assert clock.now == 2.0
        assert clock.pending == 1

    def test_run_until_includes_boundary_events(self):
        clock = SimClock()
        fired: list[float] = []
        clock.schedule(2.0, lambda: fired.append(2.0))
        clock.run_until(2.0)
        assert fired == [2.0]

    def test_run_for_advances_relative(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        clock.run_for(1.5)
        assert clock.now == 1.5
        clock.run_for(1.0)
        assert clock.now == 2.5

    def test_run_backwards_rejected(self):
        clock = SimClock()
        clock.run_for(5.0)
        with pytest.raises(SimulationError):
            clock.run_until(1.0)

    def test_step_returns_false_when_empty(self):
        assert not SimClock().step()

    def test_processed_counter(self):
        clock = SimClock()
        for _ in range(3):
            clock.schedule(1.0, lambda: None)
        clock.run()
        assert clock.processed == 3


class TestRunawayProtection:
    def test_event_budget_enforced(self):
        clock = SimClock(max_events=10)

        def feedback():
            clock.schedule(0.1, feedback)

        clock.schedule(0.1, feedback)
        with pytest.raises(SimulationError, match="budget"):
            clock.run()
