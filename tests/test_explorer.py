"""Tests for the chain explorer (address history / tx lookup)."""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.crypto.hashing import sha256
from repro.errors import UnknownTransactionError
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


@pytest.fixture
def explored():
    deployment = ICIDeployment(
        12, config=ICIConfig(n_clusters=3, limits=TEST_LIMITS)
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(6, txs_per_block=4)
    return deployment, runner, report


class TestLookup:
    def test_locates_every_committed_transaction(self, explored):
        deployment, _runner, report = explored
        explorer = deployment.explorer
        for block in report.blocks:
            for position, tx in enumerate(block.transactions):
                location = explorer.locate_transaction(tx.txid)
                assert location.block_hash == block.block_hash
                assert location.index == position
                assert explorer.transaction(tx.txid) == tx

    def test_unknown_txid_raises(self, explored):
        deployment, *_ = explored
        with pytest.raises(UnknownTransactionError):
            deployment.explorer.locate_transaction(sha256(b"ghost"))

    def test_index_counts_all_transactions(self, explored):
        deployment, _runner, report = explored
        total = 1 + sum(  # genesis coinbase
            len(block.transactions) for block in report.blocks
        )
        assert deployment.explorer.indexed_transactions == total


class TestAddressHistory:
    def test_recipient_sees_credit(self, explored):
        deployment, _runner, report = explored
        transfer = next(
            tx
            for block in report.blocks
            for tx in block.transactions
            if not tx.is_coinbase
        )
        recipient = transfer.outputs[0].address
        events = deployment.explorer.history(recipient)
        credits = [
            e for e in events if e.txid == transfer.txid and e.direction == "in"
        ]
        assert credits
        assert credits[0].amount == transfer.outputs[0].value

    def test_sender_sees_debit(self, explored):
        deployment, _runner, report = explored
        explorer = deployment.explorer
        # Find a transfer that spends a previously indexed output.
        for block in report.blocks:
            for tx in block.transactions:
                if tx.is_coinbase:
                    continue
                spender_events = [
                    event
                    for address in {
                        out.address
                        for out in explorer.transaction(tx.txid).outputs
                    }
                    for event in explorer.history(address)
                ]
                debit_owners = [
                    e for e in spender_events if e.direction == "out"
                ]
                if debit_owners:
                    return  # found at least one debit in a history
        pytest.fail("no debit events found in any address history")

    def test_history_ordered_by_height(self, explored):
        deployment, _runner, report = explored
        explorer = deployment.explorer
        from repro.crypto.keys import KeyPair

        wallet0 = KeyPair.from_seed(0).address  # the genesis faucet
        events = explorer.history(wallet0)
        heights = [e.height for e in events]
        assert heights == sorted(heights)
        assert events, "faucet wallet must have history"

    def test_balance_matches_utxo_set(self, explored):
        deployment, _runner, _report = explored
        from repro.crypto.keys import KeyPair

        wallet = KeyPair.from_seed(1).address
        assert deployment.explorer.balance(
            wallet
        ) == deployment.ledger.utxos.balance_of(wallet)

    def test_unknown_address_empty_history(self, explored):
        deployment, *_ = explored
        assert deployment.explorer.history(b"\xfe" * 20) == []


class TestReorgAwareness:
    def test_index_follows_the_tip(self, explored):
        deployment, runner, report = explored
        explorer = deployment.explorer
        explorer.history(b"\x00" * 20)  # force initial build
        before = explorer.indexed_transactions
        runner.produce_blocks(2, txs_per_block=3)
        assert explorer.indexed_transactions > before

    def test_stale_branch_history_disappears_after_reorg(self, explored):
        deployment, runner, report = explored
        explorer = deployment.explorer
        # Transactions in blocks 5-6 will be orphaned by a fork from 4.
        orphaned_txids = [
            tx.txid
            for block in report.blocks[4:]
            for tx in block.transactions
        ]
        assert explorer.locate_transaction(orphaned_txids[0])
        runner.produce_fork(fork_from_height=4, length=4)
        assert deployment.reorg_count == 1
        for txid in orphaned_txids:
            with pytest.raises(UnknownTransactionError):
                explorer.locate_transaction(txid)
