"""Meta tests: examples run, docs exist, CLI stays in sync with benches."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))
BENCHES = sorted((REPO / "benchmarks").glob("bench_*.py"))


class TestExamplesRun:
    """Every example must execute end-to-end (they are the quickstart)."""

    @pytest.mark.parametrize(
        "example", EXAMPLES, ids=lambda path: path.stem
    )
    def test_example_executes(self, example, capsys, monkeypatch):
        # Skip the slowest (paper-scale) example in the unit suite; it is
        # covered by its own fast sub-checks below.
        if example.stem == "paper_numbers":
            pytest.skip("exercised by test_paper_numbers_claims")
        monkeypatch.setattr(sys, "argv", [str(example)])
        runpy.run_path(str(example), run_name="__main__")
        out = capsys.readouterr().out
        assert out.strip(), f"{example.stem} produced no output"

    def test_paper_numbers_claims(self, capsys, monkeypatch):
        module = runpy.run_path(
            str(REPO / "examples" / "paper_numbers.py"),
            run_name="not_main",
        )
        module["claim_2_communication"]()
        out = capsys.readouterr().out
        assert "traffic per block" in out


class TestDocs:
    def test_docs_exist_and_are_substantive(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO / name
            assert path.exists(), name
            assert len(path.read_text(encoding="utf-8")) > 2000, name

    def test_design_lists_every_bench(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        for bench in BENCHES:
            assert bench.name in design, f"{bench.name} missing in DESIGN.md"

    def test_experiments_covers_every_experiment_id(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for bench in BENCHES:
            exp_id = bench.stem.split("_")[1].upper()  # bench_e7_... -> E7
            assert f"## {exp_id} " in experiments or f"| {exp_id} |" in (
                experiments
            ), f"{exp_id} missing in EXPERIMENTS.md"


class TestCliSync:
    def test_cli_experiments_match_bench_files(self):
        from repro.cli import _EXPERIMENTS

        listed = {bench for _, _, bench in _EXPERIMENTS}
        on_disk = {bench.name for bench in BENCHES}
        assert listed == on_disk

    def test_cli_ids_match_filenames(self):
        from repro.cli import _EXPERIMENTS

        for exp_id, _desc, bench in _EXPERIMENTS:
            assert bench.startswith(f"bench_{exp_id.lower()}_")
