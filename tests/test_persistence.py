"""Tests for on-disk chain-store persistence."""

from __future__ import annotations

import pytest

from repro.chain.block import deserialize_body, serialize_body
from repro.chain.persistence import (
    load_block,
    load_chain_store,
    save_block,
    save_chain_store,
)
from repro.errors import StorageError, ValidationError


class TestBodySerialization:
    def test_roundtrip(self, ledger, chain_of_three):
        block = chain_of_three[1]
        raw = serialize_body(block)
        rebuilt = deserialize_body(block.header, raw)
        assert rebuilt.transactions == block.transactions

    def test_truncated_rejected(self, ledger, chain_of_three):
        block = chain_of_three[1]
        raw = serialize_body(block)
        with pytest.raises(ValidationError):
            deserialize_body(block.header, raw[:-3])

    def test_trailing_bytes_rejected(self, ledger, chain_of_three):
        block = chain_of_three[1]
        raw = serialize_body(block) + b"\x00"
        with pytest.raises(ValidationError):
            deserialize_body(block.header, raw)

    def test_wrong_header_rejected(self, ledger, chain_of_three):
        """Commitment check: a body cannot be attached to another header."""
        a, b = chain_of_three[0], chain_of_three[1]
        with pytest.raises(ValidationError, match="commitment"):
            deserialize_body(a.header, serialize_body(b))


class TestChainStoreRoundtrip:
    def test_full_store_roundtrip(self, ledger, chain_of_three, tmp_path):
        written = save_chain_store(ledger.store, tmp_path / "db")
        assert written > 0
        loaded = load_chain_store(tmp_path / "db")
        assert loaded.header_count == ledger.store.header_count
        assert loaded.body_count == ledger.store.body_count
        assert loaded.tip.block_hash == ledger.store.tip.block_hash
        for header in ledger.store.iter_active_headers():
            assert loaded.has_body(header.block_hash)
            assert (
                loaded.body(header.block_hash).transactions
                == ledger.store.body(header.block_hash).transactions
            )

    def test_partial_body_store(self, ledger, chain_of_three, tmp_path):
        """Headers-everything, bodies-some: the ICI node shape."""
        pruned = ledger.store
        dropped = chain_of_three[1].block_hash
        pruned.drop_body(dropped)
        save_chain_store(pruned, tmp_path / "db")
        loaded = load_chain_store(tmp_path / "db")
        assert loaded.header_count == 4
        assert not loaded.has_body(dropped)
        assert loaded.has_body(chain_of_three[0].block_hash)

    def test_resave_prunes_stale_bodies(
        self, ledger, chain_of_three, tmp_path
    ):
        save_chain_store(ledger.store, tmp_path / "db")
        ledger.store.drop_body(chain_of_three[2].block_hash)
        save_chain_store(ledger.store, tmp_path / "db")
        loaded = load_chain_store(tmp_path / "db")
        assert loaded.body_count == ledger.store.body_count

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "db").mkdir()
        with pytest.raises(StorageError, match="manifest"):
            load_chain_store(tmp_path / "db")

    def test_bad_version_rejected(self, ledger, tmp_path):
        save_chain_store(ledger.store, tmp_path / "db")
        (tmp_path / "db" / "MANIFEST").write_text(
            "version=99\nheaders=1\nbodies=1\n"
        )
        with pytest.raises(StorageError, match="format"):
            load_chain_store(tmp_path / "db")

    def test_truncated_headers_rejected(self, ledger, tmp_path):
        save_chain_store(ledger.store, tmp_path / "db")
        path = tmp_path / "db" / "headers.dat"
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(StorageError, match="truncated"):
            load_chain_store(tmp_path / "db")

    def test_orphan_body_rejected(self, ledger, tmp_path):
        save_chain_store(ledger.store, tmp_path / "db")
        (tmp_path / "db" / "bodies" / ("ab" * 32 + ".blk")).write_bytes(
            b"junk"
        )
        with pytest.raises(StorageError):
            load_chain_store(tmp_path / "db")

    def test_side_chain_headers_survive(
        self, ledger, chain_of_three, tmp_path, alice
    ):
        """Fork headers persist and reload parent-first."""
        from repro.chain.block import build_block
        from repro.chain.transaction import make_coinbase

        side = build_block(
            height=2,
            prev_hash=chain_of_three[0].block_hash,
            transactions=[make_coinbase(1, alice.address, 2)],
            timestamp=chain_of_three[0].header.timestamp + 0.5,
        )
        ledger.store.add_header(side.header)
        save_chain_store(ledger.store, tmp_path / "db")
        loaded = load_chain_store(tmp_path / "db")
        assert loaded.has_header(side.block_hash)
        assert loaded.header_count == 5


class TestDeploymentPersistence:
    def test_ici_node_slice_roundtrip(self, tmp_path):
        """Persist and reload a cluster node's partial store."""
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment
        from repro.sim.runner import ScenarioRunner
        from tests.conftest import TEST_LIMITS

        deployment = ICIDeployment(
            12,
            config=ICIConfig(
                n_clusters=3, replication=1, limits=TEST_LIMITS
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks(5, txs_per_block=3)
        node = deployment.nodes[0]
        save_chain_store(node.store, tmp_path / "node0")
        loaded = load_chain_store(tmp_path / "node0")
        assert loaded.header_count == node.store.header_count
        assert loaded.body_count == node.store.body_count
        assert loaded.stored_bytes == node.store.stored_bytes


class TestSingleBlockFiles:
    def test_roundtrip(self, ledger, chain_of_three, tmp_path):
        block = chain_of_three[0]
        save_block(block, tmp_path / "block.blk")
        loaded = load_block(tmp_path / "block.blk")
        assert loaded.block_hash == block.block_hash
        assert loaded.transactions == block.transactions

    def test_truncated_rejected(self, tmp_path):
        (tmp_path / "bad.blk").write_bytes(b"\x00" * 10)
        with pytest.raises(StorageError, match="truncated"):
            load_block(tmp_path / "bad.blk")
