"""Failure domains: map, spread placement, correlated faults, and E21.

Covers the whole blast-radius subsystem (:mod:`repro.net.domains`):
the deterministic zone/rack striping and its version counter, the
spread-aware placement policy (distinct zones, audited deficit,
version-keyed cache), the correlated fault machinery (whole-zone
outages, scheduled :class:`DomainOutageEvent` firings, domain-cut
partitions), the repair engine's diversity restoration, the
chaos/endurance ``domains=True`` audits, and the E21 aware-vs-oblivious
zone-outage comparison.  Every scenario is seeded and the E21 signature
is pinned for determinism.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.chain.block import BlockHeader
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import ConfigurationError, FaultConfigError
from repro.net.domains import DomainLabel, FailureDomainMap
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.sim.chaos import (
    ChaosConfig,
    EnduranceConfig,
    domain_diversity_met,
    run_chaos,
    run_endurance,
)
from repro.sim.domain_compare import (
    ARMS,
    DomainCompareConfig,
    run_domain_compare,
)
from repro.sim.faults import (
    CRASH,
    RECOVER,
    STALL,
    DomainOutageEvent,
    FaultPlan,
    domain_partition,
    live_members,
)
from repro.storage.placement import (
    DomainSpreadPlacement,
    RendezvousPlacement,
)
from tests.conftest import TEST_LIMITS

#: sha256 of the E21 acceptance run's sorted-JSON signature.  Pins the
#: killed zone, the identical victim sets, and both arms' full
#: loss/read/diversity bills — any drift in placement, the fault layer,
#: or the repair engine's diversity restoration shows up here.
GOLDEN_E21_SHA = (
    "4e268faf76f117e7d82c398b6771bb79d6fd4ead4f854b1b56aa7f6fd0d5217b"
)


def header_at(height: int) -> BlockHeader:
    return BlockHeader(
        height=height,
        prev_hash=sha256(f"p{height}".encode()),
        merkle_root=ZERO_HASH,
        timestamp=float(height),
    )


def fresh_net(count: int) -> Network:
    net = Network(
        clock=SimClock(),
        latency=ConstantLatency(0.1),
        bandwidth_bps=1e9,
    )
    for node_id in range(count):
        net.register(node_id, object())
    return net


# ---------------------------------------------------------------- the map
class TestFailureDomainMap:
    def test_striping_is_pure_and_deterministic(self):
        one = FailureDomainMap(zones=3, racks_per_zone=2)
        two = FailureDomainMap(zones=3, racks_per_zone=2)
        for node_id in range(24):
            assert one.domain_of(node_id) == two.domain_of(node_id)
            assert one.domain_of(node_id) == DomainLabel(
                zone=node_id % 3, rack=(node_id // 3) % 2
            )

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            FailureDomainMap(zones=0)
        with pytest.raises(ConfigurationError):
            FailureDomainMap(zones=2, racks_per_zone=0)

    def test_assign_overrides_and_bumps_version(self):
        domains = FailureDomainMap(zones=4)
        before = domains.version
        domains.assign(7, DomainLabel(zone=0))
        assert domains.zone_of(7) == 0
        assert domains.version == before + 1
        # Re-assigning the same label is a no-op (no cache churn).
        domains.assign(7, DomainLabel(zone=0))
        assert domains.version == before + 1

    def test_assign_rejects_out_of_range_zone(self):
        domains = FailureDomainMap(zones=2)
        with pytest.raises(ConfigurationError):
            domains.assign(0, DomainLabel(zone=2))

    def test_sync_bumps_version_only_on_population_change(self):
        domains = FailureDomainMap(zones=2)
        domains.sync(range(6))
        version = domains.version
        domains.sync(range(6))
        assert domains.version == version
        domains.sync(range(7))
        assert domains.version == version + 1
        assert domains.members == frozenset(range(7))

    def test_remove_forgets_override_and_membership(self):
        domains = FailureDomainMap(zones=3)
        domains.sync([0, 1, 2])
        domains.assign(1, DomainLabel(zone=2))
        domains.remove(1)
        assert 1 not in domains.members
        # Back to the derived stripe.
        assert domains.zone_of(1) == 1

    def test_zone_queries(self):
        domains = FailureDomainMap(zones=3)
        domains.sync(range(9))
        assert domains.members_of_zone(0) == [0, 3, 6]
        assert domains.members_of_zone(1, [1, 4, 5]) == [1, 4]
        assert domains.zones_of([0, 1, 3]) == {0, 1}
        assert list(domains.iter_zones()) == [0, 1, 2]
        assert domains.live_zones(lambda n: n != 0, [0, 3, 1]) == {0, 1}


# ---------------------------------------------------------- spread placement
class TestDomainSpreadPlacement:
    def test_replicas_span_distinct_zones(self):
        domains = FailureDomainMap(zones=4)
        policy = DomainSpreadPlacement(domains)
        members = list(range(12))
        for height in range(20):
            holders = policy.holders(header_at(height), members, 3)
            assert len(holders) == 3
            assert len(domains.zones_of(holders)) == 3
        assert policy.domain_spread_deficit == 0

    def test_deficit_audited_when_zones_short(self):
        # Two zones cannot spread three replicas: every placement
        # increments the deficit counter instead of failing silently.
        domains = FailureDomainMap(zones=2)
        policy = DomainSpreadPlacement(domains)
        members = list(range(6))
        holders = policy.holders(header_at(1), members, 3)
        assert len(holders) == 3
        assert len(domains.zones_of(holders)) == 2
        assert policy.domain_spread_deficit == 1
        # The cached result does not re-count.
        policy.holders(header_at(1), members, 3)
        assert policy.domain_spread_deficit == 1

    def test_cache_keyed_on_map_version(self):
        domains = FailureDomainMap(zones=3)
        policy = DomainSpreadPlacement(domains)
        members = list(range(9))
        header = header_at(5)
        before = policy.holders(header, members, 2)
        # Collapse the first choice into its partner's zone: the stale
        # cached spread must be recomputed, not served.
        other = before[1]
        domains.assign(before[0], domains.domain_of(other))
        after = policy.holders(header, members, 2)
        assert len(domains.zones_of(after)) == 2
        assert after != before or domains.domain_of(
            after[0]
        ).zone != domains.domain_of(after[1]).zone

    def test_same_rank_stream_as_rendezvous(self):
        # One zone per member degenerates to pure rank order — the
        # rendezvous ranking itself, so the two policies agree.
        domains = FailureDomainMap(zones=16)
        spread = DomainSpreadPlacement(domains)
        plain = RendezvousPlacement()
        members = list(range(16))
        for height in range(10):
            header = header_at(height)
            assert spread.holders(header, members, 3) == plain.holders(
                header, members, 3
            )


# --------------------------------------------------------- correlated faults
class TestDomainOutageEvent:
    def test_kind_must_be_crash_or_stall(self):
        with pytest.raises(FaultConfigError):
            DomainOutageEvent(at=1.0, zone=0, kind=RECOVER)

    def test_negative_fields_rejected(self):
        with pytest.raises(FaultConfigError):
            DomainOutageEvent(at=-1.0, zone=0)
        with pytest.raises(FaultConfigError):
            DomainOutageEvent(at=1.0, zone=-1)
        with pytest.raises(FaultConfigError):
            DomainOutageEvent(at=1.0, zone=0, duration=-5.0)


class TestGenerateDomainOutages:
    def test_deterministic_per_seed(self):
        kwargs = dict(
            crash_count=1, domain_outage_count=2, zone_count=4
        )
        one = FaultPlan.generate(9, range(12), **kwargs)
        two = FaultPlan.generate(9, range(12), **kwargs)
        assert one.has_domain_outages
        assert one.domain_outages == two.domain_outages
        # Existing draws come first, so the node-outage schedule is
        # unchanged by asking for domain outages on top.
        plain = FaultPlan.generate(9, range(12), crash_count=1)
        assert one.outages == plain.outages

    def test_needs_enough_zones(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.generate(
                1, range(8), domain_outage_count=3, zone_count=2
            )


class TestInjectorDomains:
    def test_crash_domain_requires_bound_resolver(self):
        net = fresh_net(6)
        injector = FaultPlan().install(net)
        with pytest.raises(FaultConfigError):
            injector.crash_domain(0)

    def test_crash_and_recover_domain(self):
        net = fresh_net(8)
        domains = FailureDomainMap(zones=2)
        domains.sync(range(8))
        injector = FaultPlan().install(net)
        injector.bind_domains(domains.members_of_zone)
        victims = injector.crash_domain(1)
        assert victims == (1, 3, 5, 7)
        assert live_members(net, range(8)) == [0, 2, 4, 6]
        assert injector.domain_outages == [(0.0, 1, CRASH, victims)]
        recoveries = injector.stats.recoveries
        injector.recover_domain(victims)
        assert live_members(net, range(8)) == list(range(8))
        assert injector.stats.recoveries == recoveries + 4
        # Recovering again is a no-op (no double counting).
        injector.recover_domain(victims)
        assert injector.stats.recoveries == recoveries + 4

    def test_crash_domain_skips_already_down(self):
        net = fresh_net(6)
        domains = FailureDomainMap(zones=2)
        domains.sync(range(6))
        injector = FaultPlan().install(net)
        injector.bind_domains(domains.members_of_zone)
        injector.crash(2)
        victims = injector.crash_domain(0)
        assert victims == (0, 4)

    def test_stall_domain(self):
        net = fresh_net(4)
        domains = FailureDomainMap(zones=2)
        domains.sync(range(4))
        injector = FaultPlan().install(net)
        injector.bind_domains(domains.members_of_zone)
        victims = injector.crash_domain(0, kind=STALL)
        assert victims == (0, 2)
        assert injector.stats.stalls == 2
        assert injector.stats.crashes == 0

    def test_scheduled_event_fires_and_recovers(self):
        net = fresh_net(6)
        domains = FailureDomainMap(zones=3)
        domains.sync(range(6))
        plan = FaultPlan(
            domain_outages=[
                DomainOutageEvent(at=5.0, zone=1, duration=4.0)
            ]
        )
        injector = plan.install(net)
        injector.bind_domains(domains.members_of_zone)
        net.clock.run_for(4.9)
        assert live_members(net, range(6)) == list(range(6))
        net.clock.run_for(1.0)
        assert live_members(net, range(6)) == [0, 2, 3, 5]
        net.clock.run_for(4.0)
        assert live_members(net, range(6)) == list(range(6))
        assert injector.domain_outages == [(5.0, 1, CRASH, (1, 4))]


class TestDomainPartition:
    def test_severs_only_cross_zone_links(self):
        domains = FailureDomainMap(zones=2)
        window = domain_partition(
            range(6), domains.zone_of, 1, start=0.0, end=10.0
        )
        assert window.severs(1, 2, 5.0)
        assert window.severs(0, 3, 5.0)
        assert not window.severs(1, 3, 5.0)  # both inside
        assert not window.severs(0, 2, 5.0)  # both outside
        assert not window.severs(1, 2, 10.0)  # window over

    def test_empty_side_rejected(self):
        domains = FailureDomainMap(zones=2)
        with pytest.raises(FaultConfigError):
            domain_partition([0, 2, 4], domains.zone_of, 1)
        with pytest.raises(FaultConfigError):
            domain_partition([1, 3, 5], domains.zone_of, 1)


# ----------------------------------------------------------- deployment wiring
class TestEnableDomainAwareness:
    def test_off_by_default(self):
        deployment = ICIDeployment(
            8, config=ICIConfig(n_clusters=2, limits=TEST_LIMITS)
        )
        assert deployment.domains is None
        assert not isinstance(deployment.placement, DomainSpreadPlacement)

    def test_enable_is_idempotent(self):
        deployment = ICIDeployment(
            8, config=ICIConfig(n_clusters=2, limits=TEST_LIMITS)
        )
        domains = deployment.enable_domain_awareness(zones=2)
        assert deployment.domains is domains
        assert domains.members == frozenset(deployment.nodes)
        assert isinstance(deployment.placement, DomainSpreadPlacement)
        assert deployment.placement.domains is domains
        again = deployment.enable_domain_awareness(zones=4)
        assert again is domains
        assert domains.zones == 2


# --------------------------------------------------------------- chaos audit
class TestChaosDomains:
    def test_zone_outage_audit_and_determinism(self):
        config = ChaosConfig(seed=42, domains=True)
        first = run_chaos(config)
        # Phase 2 killed one whole zone, not a sampled victim.
        assert first.crashed == [2, 6, 10, 14]
        assert first.domains["zone_killed"] == 2
        assert first.domains["outage_victims"] == 4
        assert first.domains["diversity_met"] == 1
        assert first.integrity_restored
        assert "domains" in first.signature()
        second = run_chaos(config)
        assert first.signature() == second.signature()

    def test_without_domains_signature_has_no_domains_key(self):
        outcome = run_chaos(ChaosConfig(seed=42))
        assert outcome.domains == {}
        assert "domains" not in outcome.signature()

    def test_needs_two_zones(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(domains=True, zones=1)


class TestEnduranceDomains:
    def test_zone_outage_audit(self):
        outcome = run_endurance(
            EnduranceConfig(
                seed=42,
                n_nodes=15,
                n_clusters=3,
                n_blocks=6,
                queries=4,
                domains=True,
            )
        )
        assert outcome.outage_crashed == [1, 4, 7, 10, 13]
        assert outcome.domains["zone_killed"] == 1
        assert outcome.domains["diversity_met"] == 1
        # The anti-entropy engine actively restored zone spread (floor
        # already met, blast radius not) — the repair-layer half of the
        # subsystem.
        assert outcome.domains["diversity_repairs"] > 0
        assert outcome.integrity_restored
        assert outcome.replica_floor_met
        assert "domains" in outcome.signature()

    def test_without_domains_signature_has_no_domains_key(self):
        outcome = run_endurance(
            EnduranceConfig(
                seed=42, n_nodes=15, n_clusters=3, n_blocks=6, queries=4
            )
        )
        assert outcome.domains == {}
        assert "domains" not in outcome.signature()


def test_domain_diversity_met_trivially_true_without_map():
    deployment = ICIDeployment(
        8, config=ICIConfig(n_clusters=2, limits=TEST_LIMITS)
    )
    assert domain_diversity_met(deployment)


# ----------------------------------------------------------------- E21 / pin
@pytest.fixture(scope="module")
def e21_outcome():
    return run_domain_compare(
        DomainCompareConfig(
            n_nodes=16, n_clusters=2, n_blocks=6, reads=8
        ),
        limits=TEST_LIMITS,
    )


class TestDomainCompare:
    def test_acceptance_shape(self, e21_outcome):
        assert set(e21_outcome.arms) == set(ARMS)
        assert e21_outcome.aware_lossless
        assert e21_outcome.oblivious_exposed
        assert e21_outcome.diversity_restored
        assert e21_outcome.arms["aware"]["spread_deficit"] == 0
        assert e21_outcome.arms["oblivious"]["rounds_to_diversity"] == -1
        # Identical physical outage in both arms.
        assert e21_outcome.zone_killed >= 0
        assert e21_outcome.victims

    def test_deterministic(self, e21_outcome):
        again = run_domain_compare(
            DomainCompareConfig(
                n_nodes=16, n_clusters=2, n_blocks=6, reads=8
            ),
            limits=TEST_LIMITS,
        )
        assert again.signature() == e21_outcome.signature()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DomainCompareConfig(n_clusters=1)
        with pytest.raises(ConfigurationError):
            DomainCompareConfig(zones=1)
        with pytest.raises(ConfigurationError):
            DomainCompareConfig(replication=1)
        with pytest.raises(ConfigurationError):
            DomainCompareConfig(reads=0)


def test_e21_golden_signature():
    """The full acceptance run, pinned byte-for-byte."""
    outcome = run_domain_compare()
    payload = json.dumps(outcome.signature(), sort_keys=True)
    assert (
        hashlib.sha256(payload.encode()).hexdigest() == GOLDEN_E21_SHA
    )


# ----------------------------------------------------------------- reporting
def test_chaos_summary_renders_failure_domain_section():
    from repro.analysis.report import render_chaos_summary

    outcome = run_chaos(ChaosConfig(seed=42, domains=True))
    summary = render_chaos_summary(outcome)
    assert "## Failure domains" in summary
    assert "zone diversity" in summary
    assert "degraded %" in summary
    plain = render_chaos_summary(run_chaos(ChaosConfig(seed=42)))
    assert "## Failure domains" not in plain
    assert "degraded %" in plain


def test_cli_chaos_domains_flag(capsys):
    from repro.cli import main

    code = main(["chaos", "--domains", "--seed", "42"])
    out = capsys.readouterr().out
    assert code == 0
    assert "## Failure domains" in out
