"""Tests for transaction relay, the SPV service, and the CLI."""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.crypto.hashing import sha256
from repro.errors import SimulationError, ValidationError
from repro.net.message import MessageKind
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deployed(n_nodes=16, n_blocks=0, **config_kwargs):
    config_kwargs.setdefault("n_clusters", 4)
    config_kwargs.setdefault("replication", 1)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(n_nodes, config=ICIConfig(**config_kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = (
        runner.produce_blocks(n_blocks, txs_per_block=4)
        if n_blocks
        else None
    )
    return deployment, runner, report


class TestTransactionRelay:
    def test_submitted_tx_reaches_every_mempool(self):
        deployment, runner, _ = deployed()
        tx = runner.workload.next_transfer()
        assert tx is not None
        assert deployment.submit_transaction(tx, origin_id=0)
        deployment.run()
        for node in deployment.nodes.values():
            assert tx.txid in node.mempool

    def test_duplicate_submission_returns_false(self):
        deployment, runner, _ = deployed()
        tx = runner.workload.next_transfer()
        deployment.submit_transaction(tx, origin_id=0)
        assert not deployment.submit_transaction(tx, origin_id=0)

    def test_invalid_tx_rejected_at_origin(self):
        from repro.chain.transaction import (
            OutPoint,
            make_signed_transfer,
        )
        from repro.crypto.keys import KeyPair

        deployment, _, _ = deployed()
        ghost = make_signed_transfer(
            KeyPair.from_seed(5),
            [(OutPoint(txid=sha256(b"ghost"), index=0), 100)],
            KeyPair.from_seed(6).address,
            amount=10,
        )
        with pytest.raises(ValidationError):
            deployment.submit_transaction(ghost, origin_id=0)

    def test_relay_driven_blocks_carry_relayed_txs(self):
        deployment, runner, _ = deployed()
        report = runner.produce_blocks_via_relay(4, txs_per_block=4)
        assert report.blocks_produced == 4
        assert report.transactions_produced > 0
        assert deployment.total_finalized_blocks() == 4

    def test_mempools_drain_after_confirmation(self):
        deployment, runner, _ = deployed()
        runner.produce_blocks_via_relay(3, txs_per_block=4)
        for node in deployment.nodes.values():
            assert len(node.mempool) == 0

    def test_relay_traffic_accounted(self):
        deployment, runner, _ = deployed()
        runner.produce_blocks_via_relay(2, txs_per_block=4)
        traffic = deployment.network.traffic
        assert traffic.bytes_by_kind.get(MessageKind.TX_BODY, 0) > 0
        assert traffic.messages_by_kind.get(MessageKind.TX_ANNOUNCE, 0) > 0

    def test_relay_mode_requires_support(self):
        from repro.baselines.full_replication import (
            FullReplicationDeployment,
        )

        deployment = FullReplicationDeployment(8, limits=TEST_LIMITS)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        with pytest.raises(SimulationError):
            runner.produce_blocks_via_relay(1)

    def test_unincluded_transfers_released(self):
        """Funds offered but not mined become spendable again."""
        deployment, runner, _ = deployed()
        runner.produce_blocks_via_relay(5, txs_per_block=3)
        # After several rounds the workload can still pay someone.
        assert any(
            runner.workload.spendable_value(w) > 0
            for w in runner.workload.wallets
        )


class TestSpvService:
    def test_light_client_syncs_headers(self):
        deployment, _, report = deployed(n_blocks=5)
        light = deployment.attach_light_client()
        assert light.store.header_count == 6  # genesis + 5

    def test_valid_payment_verifies(self):
        deployment, _, report = deployed(n_blocks=5)
        light = deployment.attach_light_client()
        block = report.blocks[2]
        tx = block.transactions[1]
        record = deployment.spv_check(
            light.node_id, block.block_hash, tx.txid
        )
        deployment.run()
        assert record.verified is True
        assert record.latency is not None and record.latency > 0
        assert record.proof_bytes > 0
        assert tx.txid in light.verified_txids

    def test_contact_forwards_to_holder(self):
        """The contact need not hold the body; it routes in-cluster."""
        deployment, _, report = deployed(n_blocks=6)
        light = deployment.attach_light_client()
        contact = deployment.query.light_contacts[light.node_id]
        target = next(
            b
            for b in report.blocks
            if not deployment.nodes[contact].store.has_body(b.block_hash)
        )
        record = deployment.spv_check(
            light.node_id, target.block_hash, target.transactions[0].txid
        )
        deployment.run()
        assert record.verified is True

    def test_absent_transaction_answers_miss(self):
        deployment, _, report = deployed(n_blocks=4)
        light = deployment.attach_light_client()
        block = report.blocks[0]
        record = deployment.spv_check(
            light.node_id, block.block_hash, sha256(b"not-a-tx")
        )
        deployment.run()
        assert record.verified is False
        assert record.latency is not None

    def test_refresh_after_new_blocks(self):
        deployment, runner, _ = deployed(n_blocks=3)
        light = deployment.attach_light_client()
        runner.produce_blocks(2, txs_per_block=2)
        from repro.core.spv import refresh_light_client

        added = refresh_light_client(deployment, light.node_id)
        assert added == 2
        assert light.store.header_count == 6

    def test_multiple_light_clients(self):
        deployment, _, _ = deployed(n_blocks=3)
        a = deployment.attach_light_client()
        b = deployment.attach_light_client()
        assert a.node_id != b.node_id
        assert len(deployment.light_clients) == 2


class TestCli:
    def test_run_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run",
                "--strategy",
                "ici",
                "--nodes",
                "12",
                "--groups",
                "3",
                "--blocks",
                "3",
                "--txs",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "blocks produced" in out
        assert "bytes/node" in out

    def test_run_relay(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run",
                "--strategy",
                "ici",
                "--nodes",
                "9",
                "--groups",
                "3",
                "--blocks",
                "2",
                "--relay",
            ]
        ) == 0
        assert "finalized" in capsys.readouterr().out

    def test_relay_rejected_for_full(self, capsys):
        from repro.cli import main

        assert main(
            [
                "run",
                "--strategy",
                "full",
                "--nodes",
                "6",
                "--groups",
                "2",
                "--blocks",
                "1",
                "--relay",
            ]
        ) == 2

    def test_compare_command(self, capsys):
        from repro.cli import main

        assert main(
            [
                "compare",
                "--nodes",
                "12",
                "--groups",
                "3",
                "--blocks",
                "2",
                "--txs",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        for name in ("full", "rapidchain", "ici"):
            assert name in out

    @pytest.mark.parametrize("strategy", ["ici", "full", "rapidchain"])
    def test_join_command(self, capsys, strategy):
        from repro.cli import main

        assert main(
            [
                "join",
                "--strategy",
                strategy,
                "--nodes",
                "12",
                "--groups",
                "3",
                "--blocks",
                "3",
            ]
        ) == 0
        assert "total download" in capsys.readouterr().out

    def test_experiments_command(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out and "E11" in out
