"""Unit tests for the gossip flooding protocol."""

from __future__ import annotations

import pytest

from repro.net.gossip import GossipProtocol, flood_cost_bytes
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.net.topology import random_regular, ring


class GossipHarness:
    """N dummy endpoints sharing one gossip protocol instance."""

    def __init__(self, n: int, topology=None) -> None:
        self.network = Network(
            clock=SimClock(), latency=ConstantLatency(0.01)
        )
        self.received: dict[int, list[object]] = {i: [] for i in range(n)}
        for node_id in range(n):
            self.network.register(node_id, self._endpoint(node_id))
        self.network.set_topology(
            topology or random_regular(list(range(n)), degree=3, seed=0)
        )
        self.gossip = GossipProtocol(
            network=self.network,
            announce_kind=MessageKind.BLOCK_ANNOUNCE,
            request_kind=MessageKind.BLOCK_REQUEST,
            item_kind=MessageKind.BLOCK_BODY,
            item_size=lambda item: 500,
            on_item=lambda node, item: self.received[node].append(item),
        )

    def _endpoint(self, node_id: int):
        harness = self

        class _Endpoint:
            def handle_message(self, message: Message) -> None:
                harness.gossip.handle(message)

        return _Endpoint()


class TestFlooding:
    def test_item_reaches_every_node(self):
        harness = GossipHarness(20)
        harness.gossip.publish(0, "item-1", {"data": 1})
        harness.network.run()
        for node in range(1, 20):
            assert harness.received[node] == [{"data": 1}]

    def test_origin_does_not_self_deliver(self):
        harness = GossipHarness(5)
        harness.gossip.publish(0, "item-1", "x")
        harness.network.run()
        assert harness.received[0] == []
        assert harness.gossip.node_has(0, "item-1")

    def test_each_node_receives_once(self):
        harness = GossipHarness(15)
        harness.gossip.publish(3, "item", "payload")
        harness.network.run()
        for node in range(15):
            assert len(harness.received[node]) <= 1

    def test_ring_worst_case_still_floods(self):
        harness = GossipHarness(10, topology=ring(list(range(10))))
        harness.gossip.publish(0, "i", "x")
        harness.network.run()
        assert all(
            harness.gossip.node_has(node, "i") for node in range(10)
        )

    def test_multiple_items_tracked_independently(self):
        harness = GossipHarness(8)
        harness.gossip.publish(0, "a", "A")
        harness.gossip.publish(1, "b", "B")
        harness.network.run()
        assert harness.gossip.node_has(5, "a")
        assert harness.gossip.node_has(5, "b")

    def test_holders_of(self):
        harness = GossipHarness(6)
        harness.gossip.publish(2, "x", "X")
        harness.network.run()
        assert harness.gossip.holders_of("x") == list(range(6))

    def test_offline_node_misses_item(self):
        harness = GossipHarness(10)
        harness.network.set_online(7, False)
        harness.gossip.publish(0, "x", "X")
        harness.network.run()
        assert not harness.gossip.node_has(7, "x")
        # Everyone else still converges (graph minus node 7 is connected
        # for this seed).
        others = [n for n in range(10) if n != 7]
        assert sum(harness.gossip.node_has(n, "x") for n in others) >= 8

    def test_stats_accumulate(self):
        harness = GossipHarness(10)
        harness.gossip.publish(0, "x", "X")
        harness.network.run()
        stats = harness.gossip.stats
        assert stats.announces_sent > 0
        assert stats.requests_sent >= 9
        assert stats.items_sent >= 9

    def test_foreign_message_not_handled(self):
        harness = GossipHarness(3)
        foreign = Message(
            kind=MessageKind.CONTROL,
            sender=0,
            recipient=1,
            payload=None,
            size_bytes=50,
        )
        assert not harness.gossip.handle(foreign)


class TestFloodCostModel:
    def test_cost_scales_with_nodes(self):
        small = flood_cost_bytes(10, 1000, degree=8)
        large = flood_cost_bytes(100, 1000, degree=8)
        assert large > small * 8

    def test_cost_dominated_by_item_size_for_big_items(self):
        cost = flood_cost_bytes(100, 1_000_000, degree=8)
        transfers = 99 * (1_000_000 + 40)
        assert cost == pytest.approx(transfers, rel=0.01)
