"""Heat-aware adaptive replication: scoring, planning, shedding, audits.

Covers the whole adaptive loop (:mod:`repro.storage.heat`): the router
observer that accumulates access heat, the rank-quantile tier planner,
the repair engine's shed pass and its safety floor, the Zipf read
workload that makes heat non-uniform, and the acceptance comparison
(:mod:`repro.sim.adaptive`) behind the ">= 15% ledger bytes at
equal-or-better p95" claim.  Every scenario is seeded; the key ones are
pinned.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.runner import ScenarioRunner
from repro.sim.workload import ReadWorkloadConfig, ZipfReadWorkload
from repro.storage.heat import (
    COLD,
    HOT,
    WARM,
    HeatConfig,
    HeatTracker,
    ReplicationPlanner,
)
from tests.conftest import TEST_LIMITS

#: Adaptive flavour of the endurance golden scenario (same seed and
#: population as tests/test_endurance.py's GOLDEN_CONFIG).
ADAPTIVE_GOLDEN_CONFIG = dict(
    seed=42, n_nodes=15, n_clusters=3, n_blocks=6, queries=4, adaptive=True
)

#: sha256 of the canonical-JSON signature of the adaptive golden run.
#: Changing it means the heat/shed/repair interplay changed: confirm
#: intent (trace-diff two runs), then update.
ADAPTIVE_GOLDEN_SHA = (
    "b5038df61ac7386ff6bfe87ceca9493d0d930a0459465d26089624391b8194d3"
)

#: Small-population tiering knobs: with 6 blocks the default quantiles
#: would allot zero hot slots, so tests widen the slices.
SMALL_HEAT = HeatConfig(hot_quantile=0.8, cold_quantile=0.5)


def build_adaptive(
    n_nodes: int = 6,
    n_clusters: int = 1,
    replication: int = 2,
    n_blocks: int = 6,
    heat: HeatConfig | None = SMALL_HEAT,
):
    """One-cluster adaptive deployment with ``n_blocks`` produced."""
    config = ICIConfig(
        n_clusters=n_clusters,
        replication=replication,
        limits=TEST_LIMITS,
    )
    deployment = ICIDeployment(n_nodes, config=config)
    planner = deployment.enable_adaptive_replication(heat)
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=7)
    report = runner.produce_blocks(n_blocks, txs_per_block=2)
    return deployment, planner, report


def sweep(deployment, seconds: float = 25.0, cadence: float = 5.0):
    """Run anti-entropy sweeps for a virtual window, then drain."""
    deployment.repair.start(cadence=cadence)
    deployment.network.clock.run_for(seconds)
    deployment.repair.stop()
    deployment.run()


def holder_census(deployment, block_hashes):
    """Sorted (block, holder-count) map — the shed test's fingerprint."""
    return {
        block_hash: sum(
            1
            for node in deployment.nodes.values()
            if node.store.has_body(block_hash)
        )
        for block_hash in block_hashes
    }


class TestHeatConfig:
    def test_defaults_validate(self):
        HeatConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(half_life=0.0),
            dict(read_weight=-0.1),
            dict(size_scale=0.0),
            dict(repair_weight=-1.0),
            dict(hot_quantile=0.0),
            dict(hot_quantile=1.5),
            dict(cold_quantile=1.0),
            dict(cold_quantile=0.95),  # >= hot_quantile
            dict(hot_bonus=-1),
            dict(warmup_seconds=-1.0),
            dict(min_observations=-1),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            HeatConfig(**kwargs)


class _FakeClock:
    def __init__(self):
        self.now = 0.0


class TestHeatTracker:
    def test_rate_halves_after_one_half_life(self):
        clock = _FakeClock()
        tracker = HeatTracker(clock, HeatConfig(half_life=30.0))
        tracker.note_access(b"\x01" * 32)
        assert tracker.rate(b"\x01" * 32) == pytest.approx(1.0)
        clock.now = 30.0
        assert tracker.rate(b"\x01" * 32) == pytest.approx(0.5)
        clock.now = 60.0
        assert tracker.rate(b"\x01" * 32) == pytest.approx(0.25)

    def test_accesses_accumulate_into_the_decayed_rate(self):
        clock = _FakeClock()
        tracker = HeatTracker(clock, HeatConfig(half_life=30.0))
        tracker.note_access(b"\x02" * 32)
        clock.now = 30.0
        tracker.note_access(b"\x02" * 32)
        # Half of the first access survives under the second.
        assert tracker.rate(b"\x02" * 32) == pytest.approx(1.5)
        assert tracker.accesses(b"\x02" * 32) == 2
        assert tracker.total_accesses == 2

    def test_unknown_block_scores_only_its_size_term(self):
        tracker = HeatTracker(_FakeClock())
        config = tracker.config
        expected = config.size_weight * (
            config.size_scale / (config.size_scale + 1000)
        )
        assert tracker.score(b"\x03" * 32, 1000) == pytest.approx(expected)
        assert tracker.rate(b"\x03" * 32) == 0.0

    def test_queries_feed_the_tracker_through_the_router(self):
        deployment, planner, report = build_adaptive()
        tracker = deployment.heat
        target = report.block_hashes[0]
        before = tracker.accesses(target)
        header = deployment.ledger.store.header(target)
        members = deployment.clusters.members_of(0)
        holders = set(planner.read_plan(header, members))
        requester = sorted(set(members) - holders)[0]
        deployment.retrieve_block(requester, target)
        deployment.run()
        assert tracker.accesses(target) > before


class TestReplicationPlanner:
    def test_targets_follow_tiers(self):
        deployment, planner, report = build_adaptive()
        base = deployment.config.replication
        block = report.block_hashes[0]
        assert planner.tier_of(block) == WARM  # unclassified default
        assert planner.target_for(block) == base
        planner.tiers[block] = HOT
        assert planner.target_for(block) == base + SMALL_HEAT.hot_bonus
        planner.tiers[block] = COLD
        assert planner.target_for(block) == max(
            base - SMALL_HEAT.cold_margin, 1
        )

    def test_refresh_classifies_by_rank_quantile(self):
        deployment, planner, report = build_adaptive()
        tracker = deployment.heat
        hot_block = report.block_hashes[0]
        for _ in range(12):  # past min_observations, all on one block
            tracker.note_access(hot_block)
        now = deployment.network.now
        planner.refresh(now)
        # Freshly seen: nothing can be cold during warm-up.
        assert planner.stats.cold_blocks == 0
        planner.refresh(now + SMALL_HEAT.warmup_seconds)
        assert planner.tier_of(hot_block) == HOT
        counts = planner.tier_counts()
        assert counts[HOT] == 1  # int(6 * (1 - 0.8))
        assert counts[COLD] == 3  # int(6 * 0.5)
        assert counts[WARM] == 2

    def test_nothing_classified_before_min_observations(self):
        deployment, planner, report = build_adaptive()
        tracker = deployment.heat
        tracker.note_access(report.block_hashes[0])  # 1 < 8
        planner.refresh(deployment.network.now + 100.0)
        assert planner.tier_counts() == {
            HOT: 0,
            WARM: len(report.block_hashes),
            COLD: 0,
        }

    def test_read_plan_is_the_placement_prefix(self):
        deployment, planner, report = build_adaptive()
        members = deployment.clusters.members_of(0)
        block = report.block_hashes[0]
        header = deployment.ledger.store.header(block)
        for tier, target in (
            (HOT, 4),
            (WARM, 2),
            (COLD, 1),
        ):
            planner.tiers[block] = tier
            plan = planner.read_plan(header, members)
            assert len(plan) == target
            assert plan == deployment.placement.holders(
                header, tuple(members), target
            )
            assert set(plan) <= set(members)

    def test_enable_is_idempotent(self):
        deployment, planner, _ = build_adaptive()
        assert deployment.enable_adaptive_replication() is planner


class TestShedding:
    def test_cold_blocks_shed_to_floor_and_never_below(self):
        from repro.sim.adaptive import shed_floor_met

        deployment, planner, report = build_adaptive()
        tracker = deployment.heat
        hot_block = report.block_hashes[-1]
        for _ in range(12):
            tracker.note_access(hot_block)
        sweep(deployment)
        census = holder_census(deployment, report.block_hashes)
        for block_hash in report.block_hashes:
            tier = planner.tier_of(block_hash)
            if tier == COLD:
                assert census[block_hash] == 1, tier
            assert census[block_hash] >= min(
                planner.target_for(block_hash), deployment.node_count
            )
        assert planner.stats.replicas_shed > 0
        assert planner.stats.floor_violations == 0
        assert shed_floor_met(deployment, planner)

    def test_shedding_is_idempotent_across_sweeps(self):
        deployment, planner, report = build_adaptive()
        tracker = deployment.heat
        for _ in range(12):
            tracker.note_access(report.block_hashes[-1])
        sweep(deployment)
        census = holder_census(deployment, report.block_hashes)
        shed = planner.stats.replicas_shed
        sweep(deployment)  # nothing new to do
        assert holder_census(deployment, report.block_hashes) == census
        assert planner.stats.replicas_shed == shed
        assert planner.stats.floor_violations == 0

    def test_shed_then_reheat_re_replicates_deterministically(self):
        def run_cycle():
            deployment, planner, report = build_adaptive()
            tracker = deployment.heat
            hot_block = report.block_hashes[-1]
            for _ in range(12):
                tracker.note_access(hot_block)
            sweep(deployment)
            cold = [
                block_hash
                for block_hash in report.block_hashes
                if planner.tier_of(block_hash) == COLD
            ]
            reheated = cold[0]
            before = holder_census(deployment, [reheated])[reheated]
            # The cold block becomes the hottest thing on the chain.
            for _ in range(50):
                tracker.note_access(reheated)
            sweep(deployment)
            after = holder_census(deployment, [reheated])[reheated]
            return planner, reheated, before, after, holder_census(
                deployment, report.block_hashes
            )

        planner, reheated, before, after, census = run_cycle()
        assert before == 1  # shed down to the cold floor
        assert planner.tier_of(reheated) == HOT
        assert after == planner.target_for(reheated)  # refilled to hot
        assert after > before
        assert planner.stats.floor_violations == 0
        # Golden: the whole cycle reproduces byte-identically.
        _, reheated2, before2, after2, census2 = run_cycle()
        assert (reheated2, before2, after2) == (reheated, before, after)
        assert census2 == census


class TestZipfReadWorkload:
    def test_rejects_bad_exponent_and_empty_population(self):
        with pytest.raises(ConfigurationError):
            ReadWorkloadConfig(exponent=0.0)
        workload = ZipfReadWorkload()
        with pytest.raises(ConfigurationError):
            workload.next_block([])

    def test_same_seed_same_stream(self):
        blocks = [bytes([i]) * 32 for i in range(10)]
        nodes = list(range(8))
        first = ZipfReadWorkload(ReadWorkloadConfig(seed=3)).reads(
            blocks, nodes, 200
        )
        second = ZipfReadWorkload(ReadWorkloadConfig(seed=3)).reads(
            blocks, nodes, 200
        )
        assert first == second
        assert first != ZipfReadWorkload(ReadWorkloadConfig(seed=4)).reads(
            blocks, nodes, 200
        )

    def test_newest_block_dominates(self):
        blocks = [bytes([i]) * 32 for i in range(10)]
        workload = ZipfReadWorkload(ReadWorkloadConfig(seed=1))
        draws = [workload.next_block(blocks) for _ in range(2000)]
        counts = {block: draws.count(block) for block in blocks}
        newest, oldest = blocks[-1], blocks[0]
        assert counts[newest] == max(counts.values())
        assert counts[newest] > 3 * counts[oldest]

    def test_heat_follows_a_growing_tip(self):
        blocks = [bytes([i]) * 32 for i in range(3)]
        workload = ZipfReadWorkload(ReadWorkloadConfig(seed=5))
        workload.next_block(blocks)
        blocks.append(bytes([3]) * 32)  # chain grows
        draws = [workload.next_block(blocks) for _ in range(1000)]
        assert draws.count(blocks[-1]) == max(
            draws.count(block) for block in blocks
        )


class TestAdaptiveCompare:
    def test_acceptance_savings_latency_and_safety(self):
        """The PR's acceptance gate, verbatim: under Zipf reads at seed
        42 the adaptive deployment stores >= 15% fewer total ledger
        bytes than fixed-r at equal-or-better p95 query latency, with
        the replica floor and cross-cluster coverage never violated
        while placements converge."""
        from repro.sim.adaptive import (
            AdaptiveCompareConfig,
            run_adaptive_compare,
        )

        outcome = run_adaptive_compare(AdaptiveCompareConfig(seed=42))
        assert outcome.savings_fraction >= 0.15, outcome.signature()
        assert outcome.latency_ok, (
            outcome.adaptive_p95_latency,
            outcome.fixed_p95_latency,
        )
        assert outcome.converged_safely
        assert outcome.adaptive_stats["replicas_shed"] > 0
        assert outcome.adaptive_stats["sheds_blocked"] == 0
        assert outcome.fixed_queries_completed == outcome.config.reads
        assert (
            outcome.adaptive_queries_completed == outcome.config.reads
        )

    def test_compare_is_deterministic(self):
        from repro.sim.adaptive import (
            AdaptiveCompareConfig,
            run_adaptive_compare,
        )

        config = AdaptiveCompareConfig(
            n_blocks=8, reads=60, rounds=3
        )
        assert (
            run_adaptive_compare(config).signature()
            == run_adaptive_compare(config).signature()
        )

    def test_rejects_degenerate_configs(self):
        from repro.sim.adaptive import AdaptiveCompareConfig

        with pytest.raises(ConfigurationError):
            AdaptiveCompareConfig(n_blocks=1)
        with pytest.raises(ConfigurationError):
            AdaptiveCompareConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            AdaptiveCompareConfig(repair_cadence=0.0)


class TestAdaptiveEndurance:
    def endurance(self, **kwargs):
        from repro.sim.chaos import EnduranceConfig, run_endurance

        config = dict(ADAPTIVE_GOLDEN_CONFIG)
        config.update(kwargs)
        return run_endurance(
            EnduranceConfig(**config), limits=TEST_LIMITS
        )

    def test_survives_churn_and_faults_with_floor_met(self):
        outcome = self.endurance()
        assert outcome.integrity_restored
        assert outcome.replica_floor_met  # tier-aware audit
        assert outcome.adaptive["floor_violations"] == 0
        assert outcome.adaptive["replicas_shed"] > 0
        assert outcome.adaptive["storm_reads"] > 0
        assert outcome.storage_total_bytes > 0

    def test_adaptive_golden_signature(self):
        signature = self.endurance().signature()
        assert "adaptive" in signature
        blob = json.dumps(signature, sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == ADAPTIVE_GOLDEN_SHA, signature

    def test_fixed_runs_carry_no_adaptive_key(self):
        outcome = self.endurance(adaptive=False)
        assert outcome.adaptive == {}
        assert "adaptive" not in outcome.signature()

    def test_trace_carries_heat_story(self):
        from repro.obs.export import to_chrome_trace, validate_chrome_trace
        from repro.obs.tracer import Tracer
        from repro.sim.chaos import EnduranceConfig, run_endurance

        tracer = Tracer()
        run_endurance(
            EnduranceConfig(**ADAPTIVE_GOLDEN_CONFIG),
            limits=TEST_LIMITS,
            tracer=tracer,
        )
        payload = to_chrome_trace(tracer, label="adaptive test")
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        assert "heat_reclassified" in names
        assert "replica_shed" in names
        counters = {
            event["name"]
            for event in events
            if event["ph"] == "C" and event["name"].startswith("tier ")
        }
        assert counters == {
            "tier hot ledger bytes",
            "tier warm ledger bytes",
            "tier cold ledger bytes",
        }

    def test_report_renders_adaptive_section(self):
        from repro.analysis.report import render_endurance_summary

        adaptive = render_endurance_summary(self.endurance())
        assert "## Adaptive replication" in adaptive
        assert "replicas shed" in adaptive
        assert "floor violations" in adaptive
        fixed = render_endurance_summary(self.endurance(adaptive=False))
        assert "## Adaptive replication" not in fixed

    def test_cli_adaptive_flag(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "adaptive.md"
        code = main(
            [
                "endurance",
                "--adaptive",
                "--seed", "42",
                "--nodes", "15",
                "--groups", "3",
                "--blocks", "6",
                "--report", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## Adaptive replication" in out
        assert "## Adaptive replication" in report.read_text()


class TestBenchTagFilter:
    def test_filter_matches_tags_and_ids(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list", "--filter", "heat"]) == 0
        out = capsys.readouterr().out
        assert "e18" in out
        assert main(["bench", "--list", "--filter", "e18"]) == 0
        out = capsys.readouterr().out
        assert "e18" in out

    def test_unknown_term_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list", "--filter", "nope"]) == 2
        assert "unknown bench ids or tags" in capsys.readouterr().err

    def test_workloads_declare_tags(self):
        from pathlib import Path

        from repro.bench import discover_workloads

        repo_root = Path(__file__).resolve().parents[1]
        workloads = discover_workloads(repo_root / "benchmarks")
        by_id = {w.bench_id: w for w in workloads}
        assert "e18" in by_id
        assert set(by_id["e18"].tags) == {"heat", "adaptive"}
        # Untagged legacy workloads default to the empty tuple.
        assert by_id["e1"].tags == ()
