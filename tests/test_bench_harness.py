"""Tests for the unified benchmark harness (repro.bench)."""

from __future__ import annotations

import time
from types import SimpleNamespace

import pytest

from repro.bench import (
    FULL,
    PROFILES,
    QUICK,
    BenchmarkRunner,
    BenchWorkload,
    compare_to_baseline,
    discover_workloads,
    simulated_metrics,
    validate_payload,
)
from repro.bench.runner import BenchError
from repro.bench.schema import dump_payload, load_payload, wall_stats


def fake_deployment(now=10.0, messages=100, nbytes=5000, processed=400):
    """A minimal deployment facade with the metric surface the bench reads."""
    return SimpleNamespace(
        network=SimpleNamespace(
            now=now,
            traffic=SimpleNamespace(
                total_messages=messages, total_bytes=nbytes
            ),
            clock=SimpleNamespace(processed=processed),
        ),
        metrics=SimpleNamespace(
            router_stats=SimpleNamespace(
                sends={"block_body": 10},
                send_bytes={"block_body": 4000},
                deliveries={"block_body": 9, "header_announce": 50},
            )
        ),
    )


def make_workload(bench_id="w1", deployment_factory=fake_deployment):
    return BenchWorkload(
        bench_id=bench_id,
        title="synthetic",
        run=lambda profile: [("only", deployment_factory())],
    )


class TestProfiles:
    def test_registry_holds_both(self):
        assert PROFILES == {"quick": QUICK, "full": FULL}

    def test_pick_routes_on_name(self):
        assert QUICK.pick(1, 2) == 1
        assert FULL.pick(1, 2) == 2


class TestSimulatedMetrics:
    def test_reads_clock_traffic_and_router(self):
        metrics = simulated_metrics(fake_deployment())
        assert metrics["virtual_seconds"] == 10.0
        assert metrics["messages"] == 100
        assert metrics["bytes"] == 5000
        assert metrics["events_processed"] == 400
        assert metrics["message_kinds"]["block_body"] == {
            "sends": 10,
            "send_bytes": 4000,
            "deliveries": 9,
        }
        # Kinds seen only on delivery still appear, with zero sends.
        assert metrics["message_kinds"]["header_announce"]["sends"] == 0


class TestRunnerProtocol:
    def test_schema_valid_payload_and_roundtrip(self, tmp_path):
        runner = BenchmarkRunner([make_workload()], QUICK)
        payload = runner.run()
        assert validate_payload(payload) == []
        path = runner.write(payload, tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        assert load_payload(path) == payload

    def test_repetitions_are_all_recorded(self):
        payload = BenchmarkRunner([make_workload()], QUICK).run()
        samples = payload["benchmarks"]["w1"]["wall_seconds"]["samples"]
        assert len(samples) == QUICK.repetitions
        assert payload["benchmarks"]["w1"]["peak_rss_kb"] > 0

    def test_nondeterministic_workload_is_rejected(self):
        counter = iter(range(100))

        def drifting(profile):
            return [("only", fake_deployment(messages=next(counter)))]

        workload = BenchWorkload(bench_id="bad", title="", run=drifting)
        with pytest.raises(BenchError, match="not\\s+deterministic"):
            BenchmarkRunner([workload], QUICK).run()

    def test_empty_workload_list_is_rejected(self):
        with pytest.raises(BenchError):
            BenchmarkRunner([], QUICK)


class TestDiscovery:
    def test_all_twenty_one_experiments_discovered(self):
        workloads = discover_workloads()
        assert [w.bench_id for w in workloads] == [
            f"e{i}" for i in range(1, 22)
        ]

    def test_quick_profile_fits_its_time_budget(self, tmp_path):
        start = time.perf_counter()
        runner = BenchmarkRunner(discover_workloads(), QUICK)
        payload = runner.run()
        elapsed = time.perf_counter() - start
        assert elapsed < QUICK.time_budget_seconds
        assert validate_payload(payload) == []
        assert len(payload["benchmarks"]) == 21

    def test_seed_determinism_across_independent_runs(self):
        workloads = [
            w for w in discover_workloads() if w.bench_id in ("e8", "e17")
        ]
        first = BenchmarkRunner(workloads, QUICK).run()
        second = BenchmarkRunner(workloads, QUICK).run()
        for bench_id in ("e8", "e17"):
            assert (
                first["benchmarks"][bench_id]["simulated"]
                == second["benchmarks"][bench_id]["simulated"]
            )


def payload_with(bench_seconds, calibration=1.0, profile="quick", sim=None):
    benchmarks = {}
    for bench_id, seconds in bench_seconds.items():
        benchmarks[bench_id] = {
            "title": bench_id,
            "wall_seconds": wall_stats([seconds]),
            "peak_rss_kb": 1,
            "simulated": sim if sim is not None else {},
        }
    return {
        "schema": "repro-bench",
        "schema_version": 1,
        "profile": profile,
        "calibration": {"wall_seconds": calibration},
        "benchmarks": benchmarks,
    }


class TestBaselineComparison:
    def test_within_tolerance_passes(self):
        base = payload_with({"e1": 1.0})
        cand = payload_with({"e1": 1.2})
        comparison = compare_to_baseline(cand, base, tolerance=0.25)
        assert comparison.passed
        assert comparison.deltas[0].ratio == pytest.approx(1.2)

    def test_regression_fails(self):
        base = payload_with({"e1": 1.0})
        cand = payload_with({"e1": 1.3})
        comparison = compare_to_baseline(cand, base, tolerance=0.25)
        assert not comparison.passed
        assert [d.bench_id for d in comparison.regressions] == ["e1"]

    def test_calibration_normalizes_machine_speed(self):
        # Candidate machine is 2x slower (calibration 2.0 vs 1.0), so a
        # raw 1.8s is really 0.9s on the baseline machine: a speedup.
        base = payload_with({"e1": 1.0}, calibration=1.0)
        cand = payload_with({"e1": 1.8}, calibration=2.0)
        comparison = compare_to_baseline(cand, base, tolerance=0.25)
        assert comparison.passed
        assert comparison.deltas[0].ratio == pytest.approx(0.9)

    def test_simulated_drift_fails_even_when_fast(self):
        base = payload_with(
            {"e1": 1.0}, sim={"only": {"virtual_seconds": 1.0}}
        )
        cand = payload_with(
            {"e1": 0.5}, sim={"only": {"virtual_seconds": 2.0}}
        )
        comparison = compare_to_baseline(cand, base)
        assert not comparison.passed
        assert "virtual_seconds" in comparison.simulated_drift[0]

    def test_bench_set_differences_are_notes_not_failures(self):
        base = payload_with({"e1": 1.0, "gone": 1.0})
        cand = payload_with({"e1": 1.0, "new": 1.0})
        comparison = compare_to_baseline(cand, base)
        assert comparison.passed
        assert comparison.missing_benches == ["gone"]
        assert comparison.new_benches == ["new"]

    def test_profile_mismatch_is_refused(self):
        base = payload_with({"e1": 1.0}, profile="full")
        cand = payload_with({"e1": 1.0}, profile="quick")
        with pytest.raises(ValueError, match="profile"):
            compare_to_baseline(cand, base)


class TestSchemaValidation:
    def test_rejects_wrong_schema_name(self):
        payload = payload_with({"e1": 1.0})
        payload["schema"] = "other"
        assert validate_payload(payload)

    def test_rejects_newer_version(self):
        payload = payload_with({"e1": 1.0})
        payload["schema_version"] = 99
        assert any("newer" in e for e in validate_payload(payload))

    def test_rejects_missing_wall_samples(self):
        payload = payload_with({"e1": 1.0})
        payload["benchmarks"]["e1"]["wall_seconds"]["samples"] = []
        assert validate_payload(payload)

    def test_load_raises_on_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        dump_payload({"schema": "other"}, path)
        with pytest.raises(ValueError):
            load_payload(path)

    def test_committed_baseline_is_valid(self):
        from pathlib import Path

        baseline = load_payload(
            Path(__file__).resolve().parents[1]
            / "benchmarks"
            / "baseline.json"
        )
        assert baseline["profile"] == "quick"
        assert len(baseline["benchmarks"]) == 21
        # The baseline carries the optimization provenance the repo's
        # performance trajectory documentation points at: wall-clock
        # wins record speedups, storage wins record savings.
        speedups = [
            kernel["speedup"]
            for entry in baseline["optimizations"]
            for kernel in entry["kernels"].values()
            if "speedup" in kernel
        ]
        assert speedups and min(speedups) >= 1.5
        savings = [
            kernel["storage_savings"]
            for entry in baseline["optimizations"]
            for kernel in entry["kernels"].values()
            if "storage_savings" in kernel
        ]
        assert savings  # the adaptive-replication entry
