"""Unit + property tests for the UTXO set."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.genesis import make_genesis
from repro.chain.transaction import (
    OutPoint,
    Transaction,
    TxOutput,
    make_coinbase,
)
from repro.chain.utxo import UndoRecord, UtxoSet
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import ValidationError


def mint(utxos: UtxoSet, value: int, address: bytes, tag: bytes) -> OutPoint:
    """Apply a coinbase-like mint and return its outpoint."""
    tx = Transaction(
        inputs=(),
        outputs=(TxOutput(value=value, address=address),),
        payload=tag,
    )
    utxos.apply_transaction(tx, height=0)
    return OutPoint(txid=tx.txid, index=0)


class TestBasicOps:
    def test_starts_empty(self):
        utxos = UtxoSet()
        assert len(utxos) == 0
        assert utxos.total_value == 0

    def test_mint_and_lookup(self):
        utxos = UtxoSet()
        op = mint(utxos, 100, b"\x01" * 20, b"a")
        assert op in utxos
        entry = utxos.get(op)
        assert entry is not None and entry.output.value == 100
        assert utxos.total_value == 100

    def test_spend_removes_and_creates(self):
        utxos = UtxoSet()
        op = mint(utxos, 100, b"\x01" * 20, b"a")
        spend = Transaction(
            inputs=(
                # witness unchecked at UTXO layer (validation layer's job)
                __import__(
                    "repro.chain.transaction", fromlist=["TxInput"]
                ).TxInput(outpoint=op),
            ),
            outputs=(TxOutput(value=100, address=b"\x02" * 20),),
        )
        utxos.apply_transaction(spend, height=1)
        assert op not in utxos
        assert utxos.total_value == 100
        assert utxos.balance_of(b"\x02" * 20) == 100

    def test_double_spend_rejected(self):
        utxos = UtxoSet()
        op = mint(utxos, 100, b"\x01" * 20, b"a")
        from repro.chain.transaction import TxInput

        spend = Transaction(
            inputs=(TxInput(outpoint=op),),
            outputs=(TxOutput(value=100, address=b"\x02" * 20),),
        )
        utxos.apply_transaction(spend, height=1)
        with pytest.raises(ValidationError):
            utxos.apply_transaction(spend, height=2)

    def test_unknown_outpoint_rejected(self):
        from repro.chain.transaction import TxInput

        utxos = UtxoSet()
        ghost = OutPoint(txid=sha256(b"ghost"), index=0)
        tx = Transaction(
            inputs=(TxInput(outpoint=ghost),),
            outputs=(TxOutput(value=1, address=b"\x02" * 20),),
        )
        with pytest.raises(ValidationError):
            utxos.apply_transaction(tx, height=1)

    def test_outpoints_of_sorted_deterministically(self):
        utxos = UtxoSet()
        address = b"\x03" * 20
        for tag in (b"x", b"y", b"z"):
            mint(utxos, 10, address, tag)
        listed = utxos.outpoints_of(address)
        assert listed == sorted(listed, key=lambda p: (p[0].txid, p[0].index))
        assert len(listed) == 3


class TestUndo:
    def test_apply_block_then_undo_restores_state(self):
        genesis = make_genesis([KeyPair.from_seed(0).address])
        utxos = UtxoSet()
        before_len = len(utxos)
        undo = utxos.apply_block(genesis)
        assert len(utxos) == 1
        utxos.undo_record(undo)
        assert len(utxos) == before_len
        assert utxos.total_value == 0

    def test_partial_failure_rolls_back(self):
        """A block with a bad tx must leave the set untouched."""
        from repro.chain.block import build_block
        from repro.chain.transaction import TxInput

        genesis = make_genesis([KeyPair.from_seed(0).address])
        utxos = UtxoSet()
        utxos.apply_block(genesis)
        snapshot_value = utxos.total_value
        snapshot_len = len(utxos)

        good = make_coinbase(50, b"\x01" * 20, height=1)
        bad = Transaction(
            inputs=(
                TxInput(outpoint=OutPoint(txid=sha256(b"ghost"), index=0)),
            ),
            outputs=(TxOutput(value=1, address=b"\x02" * 20),),
        )
        block = build_block(
            height=1,
            prev_hash=genesis.block_hash,
            transactions=[good, bad],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError):
            utxos.apply_block(block)
        assert utxos.total_value == snapshot_value
        assert len(utxos) == snapshot_len

    def test_undo_is_idempotent_on_cleared_record(self):
        utxos = UtxoSet()
        mint(utxos, 5, b"\x01" * 20, b"a")
        record = UndoRecord(block_hash=sha256(b"h"))
        utxos.undo_record(record)  # empty record: no-op
        assert utxos.total_value == 5


class TestConservationProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 1000), st.integers(0, 4)),
            min_size=1,
            max_size=12,
        )
    )
    def test_value_conserved_under_transfers(self, mints):
        """Total value never changes when outputs are merely moved."""
        from repro.chain.transaction import TxInput

        utxos = UtxoSet()
        addresses = [bytes([i]) * 20 for i in range(5)]
        outpoints = []
        for index, (value, owner) in enumerate(mints):
            outpoints.append(
                (
                    mint(
                        utxos,
                        value,
                        addresses[owner],
                        index.to_bytes(4, "big"),
                    ),
                    value,
                )
            )
        total_before = utxos.total_value
        # Move everything to address 0 in one sweep transaction.
        sweep = Transaction(
            inputs=tuple(TxInput(outpoint=op) for op, _ in outpoints),
            outputs=(
                TxOutput(
                    value=sum(v for _, v in outpoints),
                    address=addresses[0],
                ),
            ),
        )
        utxos.apply_transaction(sweep, height=1)
        assert utxos.total_value == total_before
        assert utxos.balance_of(addresses[0]) == total_before
        assert sum(utxos.snapshot_addresses().values()) == total_before
