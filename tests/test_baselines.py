"""Integration tests for the baseline deployments and SPV helpers."""

from __future__ import annotations

import pytest

from repro.baselines.full_replication import FullReplicationDeployment
from repro.baselines.rapidchain import RapidChainDeployment
from repro.baselines.spv import (
    spv_bootstrap_bytes,
    spv_proof_bytes,
    spv_verify_payment,
)
from repro.chain.block import HEADER_SIZE, build_block
from repro.chain.transaction import make_coinbase
from repro.errors import ConfigurationError
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def full_deployment(n_nodes=12, n_blocks=4):
    deployment = FullReplicationDeployment(n_nodes, limits=TEST_LIMITS)
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(n_blocks, txs_per_block=3)
    return deployment, report


def rapid_deployment(n_nodes=12, n_committees=3, n_blocks=6):
    deployment = RapidChainDeployment(
        n_nodes, n_committees=n_committees, limits=TEST_LIMITS
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(n_blocks, txs_per_block=3)
    return deployment, report


class TestFullReplication:
    def test_every_node_stores_everything(self):
        deployment, report = full_deployment()
        for node in deployment.nodes.values():
            assert node.store.body_count == 5  # genesis + 4
            assert node.ledger.height == 4

    def test_all_nodes_agree_on_balances(self):
        deployment, _ = full_deployment()
        reference = deployment.nodes[0].ledger.utxos.snapshot_addresses()
        for node in deployment.nodes.values():
            assert node.ledger.utxos.snapshot_addresses() == reference

    def test_storage_total_is_n_times_ledger(self):
        deployment, _ = full_deployment()
        per_node = deployment.nodes[0].store.stored_bytes
        storage = deployment.storage_report()
        assert storage.total_bytes == per_node * len(deployment.nodes)

    def test_retrieval_is_local(self):
        deployment, report = full_deployment()
        record = deployment.retrieve_block(5, report.block_hashes[0])
        assert record.latency == 0.0

    def test_join_downloads_full_ledger(self):
        deployment, _ = full_deployment()
        ledger_bodies = sum(
            b.size_bytes for b in deployment.nodes[0].store.iter_bodies()
        )
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        assert join.body_bytes == pytest.approx(ledger_bodies, rel=0.01)
        joined = deployment.nodes[join.node_id]
        assert joined.ledger.height == 4

    def test_invalid_block_not_applied(self):
        deployment, _ = full_deployment(n_blocks=1)
        tip = deployment.nodes[0].ledger.tip
        greedy = build_block(
            height=tip.height + 1,
            prev_hash=tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward * 100,
                    b"\x01" * 20,
                    tip.height + 1,
                )
            ],
            timestamp=tip.timestamp + 1,
        )
        deployment.disseminate(greedy, proposer_id=0)
        deployment.run()
        for node in deployment.nodes.values():
            assert node.ledger.height == 1


class TestRapidChain:
    def test_bodies_live_only_in_home_committee(self):
        deployment, report = rapid_deployment()
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            home = deployment.home_committee(header)
            for node in deployment.nodes.values():
                has = node.store.has_body(block_hash)
                if node.cluster_id == home:
                    assert has, f"home member {node.node_id} missing body"
                else:
                    assert not has

    def test_headers_reach_everyone(self):
        deployment, report = rapid_deployment()
        for node in deployment.nodes.values():
            assert node.store.header_count == 7  # genesis + 6

    def test_per_node_storage_is_shard_sized(self):
        deployment, _ = rapid_deployment()
        total_bodies = sum(
            deployment.ledger.store.body(h.block_hash).body_size_bytes
            for h in deployment.ledger.store.iter_active_headers()
        )
        storage = deployment.storage_report()
        header_bytes = 7 * HEADER_SIZE
        # Every member of a committee stores its whole shard; across all
        # nodes the bodies appear committee_size times.
        committee_size = 4
        expected_total = total_bodies * committee_size + header_bytes * 12
        assert storage.total_bytes == pytest.approx(expected_total, rel=0.05)

    def test_committee_finality_recorded(self):
        deployment, report = rapid_deployment()
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            home = deployment.home_committee(header)
            assert (
                block_hash,
                home,
            ) in deployment.metrics.cluster_finalized_at

    def test_cross_shard_retrieval(self):
        deployment, report = rapid_deployment()
        block_hash = report.block_hashes[0]
        header = deployment.ledger.store.header(block_hash)
        home = deployment.home_committee(header)
        outsider = next(
            node_id
            for node_id, node in deployment.nodes.items()
            if node.cluster_id != home
        )
        record = deployment.retrieve_block(outsider, block_hash)
        deployment.run()
        assert record.latency is not None and record.latency > 0

    def test_join_downloads_one_shard(self):
        deployment, _ = rapid_deployment()
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        joiner = deployment.nodes[join.node_id]
        shard_bytes = sum(
            b.size_bytes
            for node_id, node in deployment.nodes.items()
            if node_id != join.node_id
            and node.cluster_id == join.cluster_id
            for b in [] # placeholder, computed below
        )
        # The joiner's bodies equal a committee mate's bodies.
        mate = next(
            node
            for node_id, node in deployment.nodes.items()
            if node_id != join.node_id
            and node.cluster_id == join.cluster_id
        )
        assert joiner.store.body_count == mate.store.body_count

    def test_bad_committee_count_rejected(self):
        with pytest.raises(ConfigurationError):
            RapidChainDeployment(4, n_committees=10)

    def test_invalid_block_rejected(self):
        deployment, _ = rapid_deployment(n_blocks=1)
        tip = deployment.ledger.tip
        greedy = build_block(
            height=tip.height + 1,
            prev_hash=tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward * 100,
                    b"\x01" * 20,
                    tip.height + 1,
                )
            ],
            timestamp=tip.timestamp + 1,
        )
        deployment.disseminate(greedy, proposer_id=0)
        deployment.run()
        assert greedy.block_hash in deployment.metrics.blocks_rejected
        assert deployment.ledger.height == 1


class TestStorageOrdering:
    def test_ici_beats_rapidchain_beats_full(self):
        """The paper's qualitative ordering under identical workloads."""
        from repro.core.config import ICIConfig
        from repro.core.icistrategy import ICIDeployment

        n, blocks = 16, 5
        full = FullReplicationDeployment(n, limits=TEST_LIMITS)
        ScenarioRunner(full, limits=TEST_LIMITS).produce_blocks(blocks, 3)
        rapid = RapidChainDeployment(n, n_committees=4, limits=TEST_LIMITS)
        ScenarioRunner(rapid, limits=TEST_LIMITS).produce_blocks(blocks, 3)
        ici = ICIDeployment(
            n,
            config=ICIConfig(
                n_clusters=2, replication=1, limits=TEST_LIMITS
            ),
        )
        ScenarioRunner(ici, limits=TEST_LIMITS).produce_blocks(blocks, 3)

        full_bytes = full.storage_report().total_bytes
        rapid_bytes = rapid.storage_report().total_bytes
        ici_bytes = ici.storage_report().total_bytes
        assert ici_bytes < rapid_bytes < full_bytes


class TestSpv:
    def test_bootstrap_bytes(self):
        assert spv_bootstrap_bytes(99) == HEADER_SIZE * 100
        with pytest.raises(ValueError):
            spv_bootstrap_bytes(-1)

    def test_verify_payment(self, ledger, chain_of_three):
        block = chain_of_three[0]
        verified, proof = spv_verify_payment(ledger.store, block, 1)
        assert verified
        assert spv_proof_bytes(proof) == proof.size_bytes

    def test_verify_fails_for_foreign_block(self, ledger, chain_of_three):
        from repro.chain.chainstore import ChainStore
        from repro.errors import UnknownBlockError

        with pytest.raises(UnknownBlockError):
            spv_verify_payment(ChainStore(), chain_of_three[0], 1)
