"""Property-based invariants of the ICI deployment over random scenarios.

For any small-but-arbitrary combination of population, cluster count,
replication, placement policy, and protocol flags, after any run:

* every cluster collectively holds the full ledger (the paper's core
  intra-cluster integrity property);
* every node indexes every header;
* each cluster stores exactly ``r`` copies of every body;
* every produced block finalizes in every cluster;
* membership churn (a join followed by a departure) preserves all of the
  above.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS

scenario_params = st.fixed_dictionaries(
    {
        "n_clusters": st.integers(2, 4),
        "cluster_size": st.integers(2, 5),
        "replication": st.integers(1, 2),
        "placement": st.sampled_from(["hash", "modulo", "round_robin"]),
        "aggregate_votes": st.booleans(),
        "n_blocks": st.integers(1, 4),
        "seed": st.integers(0, 10_000),
    }
)


def build_and_run(params):
    n_nodes = params["n_clusters"] * params["cluster_size"]
    replication = min(params["replication"], params["cluster_size"])
    deployment = ICIDeployment(
        n_nodes,
        config=ICIConfig(
            n_clusters=params["n_clusters"],
            replication=replication,
            placement=params["placement"],
            aggregate_votes=params["aggregate_votes"],
            limits=TEST_LIMITS,
            seed=params["seed"],
        ),
    )
    runner = ScenarioRunner(
        deployment, limits=TEST_LIMITS, seed=params["seed"]
    )
    report = runner.produce_blocks(params["n_blocks"], txs_per_block=3)
    return deployment, report, replication


def assert_invariants(deployment, report, replication):
    n_headers = deployment.ledger.store.header_count
    for view in deployment.clusters.views():
        assert deployment.cluster_holds_full_ledger(view.cluster_id)
        for header in deployment.ledger.store.iter_active_headers():
            copies = sum(
                deployment.nodes[m].store.has_body(header.block_hash)
                for m in view.members
            )
            assert copies == min(replication, view.size), (
                f"cluster {view.cluster_id} height {header.height}: "
                f"{copies} copies"
            )
    for node in deployment.nodes.values():
        assert node.store.header_count == n_headers
    for block_hash in report.block_hashes:
        for view in deployment.clusters.views():
            assert (
                block_hash,
                view.cluster_id,
            ) in deployment.metrics.cluster_finalized_at


class TestRunInvariants:
    @settings(max_examples=20, deadline=None)
    @given(params=scenario_params)
    def test_post_run_invariants(self, params):
        deployment, report, replication = build_and_run(params)
        assert_invariants(deployment, report, replication)

    @settings(max_examples=10, deadline=None)
    @given(params=scenario_params)
    def test_invariants_survive_join(self, params):
        deployment, report, replication = build_and_run(params)
        join = deployment.join_new_node()
        deployment.run()
        assert join.complete
        assert_invariants(deployment, report, replication)

    @settings(max_examples=10, deadline=None)
    @given(params=scenario_params)
    def test_invariants_survive_join_then_departure(self, params):
        deployment, report, replication = build_and_run(params)
        join = deployment.join_new_node()
        deployment.run()
        # Retire a different member of the joiner's cluster when allowed.
        members = deployment.clusters.members_of(join.cluster_id)
        if len(members) - 1 >= max(replication, 1) and len(members) > 1:
            victim = next(m for m in members if m != join.node_id)
            departure = deployment.leave_node(victim)
            deployment.run()
            assert departure.complete
            assert not departure.lost_blocks
        assert_invariants(deployment, report, replication)

    @settings(max_examples=10, deadline=None)
    @given(params=scenario_params, fail_seed=st.integers(0, 100))
    def test_r2_crash_never_loses_data(self, params, fail_seed):
        import random

        params = dict(params)
        params["replication"] = 2
        params["cluster_size"] = max(params["cluster_size"], 4)
        deployment, report, replication = build_and_run(params)
        rng = random.Random(fail_seed)
        candidates = [
            member
            for view in deployment.clusters.views()
            if view.size > replication + 1
            for member in view.members
        ]
        if not candidates:
            return
        victim = rng.choice(candidates)
        crash = deployment.repair_after_crash(victim)
        deployment.run()
        assert crash.complete
        assert not crash.lost_blocks
        assert_invariants(deployment, report, replication)
