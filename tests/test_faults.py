"""Unit tests for the fault-injection layer and the retry substrate."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, FaultConfigError
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.net.simclock import SimClock
from repro.protocols.reliability import (
    DEFAULT_RETRY_POLICY,
    PROBE_RETRY_POLICY,
    RequestTracker,
    RetryPolicy,
)
from repro.sim.faults import (
    CRASH,
    RECOVER,
    STALL,
    FaultConfig,
    FaultPlan,
    FaultStats,
    OutageEvent,
    PartitionWindow,
    live_members,
)


class Recorder:
    """Test endpoint: remembers what it receives and when."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.received: list[tuple[float, Message]] = []

    def handle_message(self, message: Message) -> None:
        self.received.append((self.network.now, message))


def wire(net: Network, count: int) -> list[Recorder]:
    endpoints = []
    for node_id in range(count):
        endpoint = Recorder(net)
        net.register(node_id, endpoint)
        endpoints.append(endpoint)
    return endpoints


@pytest.fixture
def net() -> Network:
    return Network(
        clock=SimClock(),
        latency=ConstantLatency(0.1),
        bandwidth_bps=1e9,
    )


def send_one(net: Network, sender: int = 0, recipient: int = 1) -> None:
    net.send(
        Message(
            kind=MessageKind.CONTROL,
            sender=sender,
            recipient=recipient,
            payload=("ping",),
            size_bytes=64,
        )
    )


class TestFaultConfig:
    def test_defaults_are_clean(self):
        config = FaultConfig()
        assert config.drop_rate == 0.0
        assert config.delay_seconds == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"duplicate_rate": 1.5},
            {"delay_rate": -1.0},
            {"drop_rate": 0.6, "duplicate_rate": 0.6},
            {"delay_seconds": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)


class TestPartitionWindow:
    def test_sides_must_be_disjoint(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(frozenset({1, 2}), frozenset({2, 3}))

    def test_window_must_not_invert(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(frozenset({1}), frozenset({2}), start=5.0, end=1.0)

    def test_severs_both_directions(self):
        window = PartitionWindow(frozenset({1}), frozenset({2}))
        assert window.severs(1, 2, now=0.0)
        assert window.severs(2, 1, now=0.0)

    def test_within_side_untouched(self):
        window = PartitionWindow(frozenset({1, 2}), frozenset({3}))
        assert not window.severs(1, 2, now=0.0)
        assert not window.severs(3, 4, now=0.0)  # 4 is on neither side

    def test_time_window_half_open(self):
        window = PartitionWindow(
            frozenset({1}), frozenset({2}), start=1.0, end=2.0
        )
        assert not window.severs(1, 2, now=0.5)
        assert window.severs(1, 2, now=1.0)
        assert not window.severs(1, 2, now=2.0)

    def test_exact_boundaries(self):
        """The half-open contract at the edges: [start, end)."""
        window = PartitionWindow(
            frozenset({1}), frozenset({2}), start=3.0, end=7.0
        )
        assert window.severs(1, 2, now=3.0)  # inclusive start
        assert window.severs(2, 1, now=6.999999)
        assert not window.severs(1, 2, now=7.0)  # exclusive end
        assert not window.severs(1, 2, now=7.000001)

    def test_zero_length_window_never_severs(self):
        window = PartitionWindow(
            frozenset({1}), frozenset({2}), start=5.0, end=5.0
        )
        assert not window.severs(1, 2, now=5.0)
        assert not window.severs(1, 2, now=4.999999)
        assert not window.severs(1, 2, now=5.000001)


class TestOutageEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageEvent(at=1.0, node_id=0, kind="explode")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            OutageEvent(at=-1.0, node_id=0, kind=CRASH)


class TestFaultStats:
    def test_as_dict_covers_every_counter(self):
        stats = FaultStats(dropped=3, partition_dropped=2, stall_dropped=1)
        view = stats.as_dict()
        assert view["dropped"] == 3
        assert set(view) == {
            "intercepted",
            "dropped",
            "duplicated",
            "delayed",
            "partition_dropped",
            "stall_dropped",
            "crashes",
            "stalls",
            "recoveries",
        }
        assert stats.total_dropped == 6


class TestFaultPlanGenerate:
    def test_golden_schedule_for_seed_42(self):
        """Fixed-seed pin: the generated schedule must never drift."""
        plan = FaultPlan.generate(
            42,
            range(10),
            drop_rate=0.1,
            crash_count=2,
            stall_count=1,
            outage_window=(5.0, 50.0),
            outage_duration=8.0,
        )
        schedule = [
            (round(event.at, 6), event.node_id, event.kind)
            for event in plan.outages
        ]
        assert schedule == [
            (31.813618, 5, STALL),
            (37.987733, 1, CRASH),
            (39.37421, 7, CRASH),
            (39.813618, 5, RECOVER),
            (45.987733, 1, RECOVER),
            (47.37421, 7, RECOVER),
        ]
        assert plan.config.drop_rate == 0.1
        assert plan.config.seed == 42

    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(7, range(8), crash_count=2, stall_count=2)
        b = FaultPlan.generate(7, range(8), crash_count=2, stall_count=2)
        assert a.outages == b.outages

    def test_outages_sorted_by_time(self):
        plan = FaultPlan.generate(3, range(12), crash_count=4, stall_count=3)
        times = [event.at for event in plan.outages]
        assert times == sorted(times)
        # Every victim recovers exactly once.
        downs = [e.node_id for e in plan.outages if e.kind != RECOVER]
        ups = [e.node_id for e in plan.outages if e.kind == RECOVER]
        assert sorted(downs) == sorted(ups)

    def test_too_many_outages_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, range(3), crash_count=2, stall_count=2)

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, range(4), outage_window=(10.0, 5.0))
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(0, range(4), outage_duration=-1.0)


class TestFaultPlanValidation:
    """Regression: inconsistent hand-written schedules must be rejected."""

    def test_recover_without_crash_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(
                outages=[OutageEvent(at=5.0, node_id=1, kind=RECOVER)]
            )

    def test_overlapping_outages_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(
                outages=[
                    OutageEvent(at=1.0, node_id=3, kind=CRASH),
                    OutageEvent(at=2.0, node_id=3, kind=STALL),
                ]
            )

    def test_recover_after_recover_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(
                outages=[
                    OutageEvent(at=1.0, node_id=3, kind=CRASH),
                    OutageEvent(at=2.0, node_id=3, kind=RECOVER),
                    OutageEvent(at=3.0, node_id=3, kind=RECOVER),
                ]
            )

    def test_crash_recover_crash_cycle_allowed(self):
        plan = FaultPlan(
            outages=[
                OutageEvent(at=1.0, node_id=3, kind=CRASH),
                OutageEvent(at=2.0, node_id=3, kind=RECOVER),
                OutageEvent(at=3.0, node_id=3, kind=CRASH),
            ]
        )
        assert len(plan.outages) == 3

    def test_crash_without_recovery_allowed(self):
        """A victim that never comes back is a legal schedule."""
        plan = FaultPlan(
            outages=[OutageEvent(at=1.0, node_id=3, kind=CRASH)]
        )
        assert len(plan.outages) == 1

    def test_distinct_nodes_do_not_overlap(self):
        plan = FaultPlan(
            outages=[
                OutageEvent(at=1.0, node_id=1, kind=CRASH),
                OutageEvent(at=1.5, node_id=2, kind=STALL),
                OutageEvent(at=2.0, node_id=1, kind=RECOVER),
                OutageEvent(at=2.5, node_id=2, kind=RECOVER),
            ]
        )
        assert len(plan.outages) == 4


class TestFaultInjector:
    def test_certain_drop_loses_everything(self, net):
        endpoints = wire(net, 2)
        FaultPlan(config=FaultConfig(drop_rate=1.0)).install(net)
        for _ in range(5):
            send_one(net)
        net.run()
        assert endpoints[1].received == []
        assert net.faults.stats.dropped == 5
        assert net.faults.stats.intercepted == 5

    def test_certain_duplicate_delivers_twice(self, net):
        endpoints = wire(net, 2)
        FaultPlan(config=FaultConfig(duplicate_rate=1.0)).install(net)
        send_one(net)
        net.run()
        assert len(endpoints[1].received) == 2
        assert net.faults.stats.duplicated == 1

    def test_certain_delay_adds_spike(self, net):
        endpoints = wire(net, 2)
        send_one(net)
        net.run()
        clean_at = endpoints[1].received[0][0]
        FaultPlan(
            config=FaultConfig(delay_rate=1.0, delay_seconds=3.0)
        ).install(net)
        base = net.now
        send_one(net)
        net.run()
        spiked_at = endpoints[1].received[1][0]
        assert spiked_at - base == pytest.approx(clean_at + 3.0)
        assert net.faults.stats.delayed == 1

    def test_clean_config_consumes_no_draws(self, net):
        endpoints = wire(net, 2)
        injector = FaultPlan().install(net)
        state = injector._rng.getstate()
        send_one(net)
        net.run()
        assert injector._rng.getstate() == state
        assert len(endpoints[1].received) == 1
        assert injector.stats.intercepted == 1

    def test_stall_drops_both_directions(self, net):
        endpoints = wire(net, 3)
        injector = FaultPlan().install(net)
        injector.stall(1)
        assert injector.is_stalled(1)
        assert not injector.is_live(1)
        assert net.is_online(1)  # stalled, not crashed
        send_one(net, sender=0, recipient=1)
        send_one(net, sender=1, recipient=2)
        send_one(net, sender=0, recipient=2)
        net.run()
        assert endpoints[1].received == []
        assert len(endpoints[2].received) == 1
        assert injector.stats.stall_dropped == 2

    def test_crash_and_recover_via_injector(self, net):
        endpoints = wire(net, 2)
        injector = FaultPlan().install(net)
        injector.crash(1)
        assert not net.is_online(1)
        send_one(net)
        net.run()
        assert endpoints[1].received == []
        injector.recover(1)
        assert net.is_online(1)
        assert injector.is_live(1)
        send_one(net)
        net.run()
        assert len(endpoints[1].received) == 1
        assert injector.stats.crashes == 1
        assert injector.stats.recoveries == 1

    def test_partition_severs_and_heals(self, net):
        endpoints = wire(net, 4)
        injector = FaultPlan().install(net)
        injector.partition(
            PartitionWindow(frozenset({0, 1}), frozenset({2, 3}))
        )
        send_one(net, sender=0, recipient=2)
        send_one(net, sender=0, recipient=1)
        net.run()
        assert endpoints[2].received == []
        assert len(endpoints[1].received) == 1
        assert injector.stats.partition_dropped == 1
        injector.heal()
        send_one(net, sender=0, recipient=2)
        net.run()
        assert len(endpoints[2].received) == 1

    def test_heal_recovers_everyone(self, net):
        wire(net, 4)
        injector = FaultPlan().install(net)
        injector.crash(1)
        injector.stall(2)
        injector.heal()
        assert net.is_online(1)
        assert injector.is_live(1)
        assert injector.is_live(2)
        assert injector.stats.recoveries == 2

    def test_scheduled_outages_fire_on_the_clock(self, net):
        endpoints = wire(net, 2)
        plan = FaultPlan(
            outages=[
                OutageEvent(at=1.0, node_id=1, kind=CRASH),
                OutageEvent(at=2.0, node_id=1, kind=RECOVER),
            ]
        )
        injector = plan.install(net)
        net.run()
        assert net.now == pytest.approx(2.0)
        assert net.is_online(1)
        assert injector.stats.crashes == 1
        assert injector.stats.recoveries == 1
        send_one(net)
        net.run()
        assert len(endpoints[1].received) == 1

    def test_outage_for_departed_node_is_skipped(self, net):
        wire(net, 2)
        plan = FaultPlan(
            outages=[OutageEvent(at=1.0, node_id=1, kind=CRASH)]
        )
        injector = plan.install(net)
        net.unregister(1)
        net.run()
        assert injector.stats.crashes == 0

    def test_same_seed_same_interception_stream(self):
        def run(seed: int) -> dict[str, int]:
            net = Network(clock=SimClock(), latency=ConstantLatency(0.1))
            wire(net, 2)
            injector = FaultPlan(
                config=FaultConfig(
                    seed=seed,
                    drop_rate=0.2,
                    duplicate_rate=0.1,
                    delay_rate=0.1,
                )
            ).install(net)
            for _ in range(200):
                send_one(net)
            net.run()
            return injector.stats.as_dict()

        first, second = run(9), run(9)
        assert first == second
        assert first != run(10)
        assert first["dropped"] > 0
        assert first["duplicated"] > 0
        assert first["delayed"] > 0


class TestLiveMembers:
    def test_without_injector_filters_offline(self, net):
        wire(net, 3)
        net.set_online(1, False)
        assert live_members(net, [0, 1, 2]) == [0, 2]

    def test_with_injector_filters_stalled_too(self, net):
        wire(net, 3)
        injector = FaultPlan().install(net)
        injector.stall(2)
        net.set_online(1, False)
        assert live_members(net, [0, 1, 2]) == [0]

    def test_preserves_order(self, net):
        wire(net, 3)
        assert live_members(net, [2, 0, 1]) == [2, 0, 1]

    def test_mixed_crashed_and_stalled(self, net):
        """Crashed and stalled members drop out; everyone else stays."""
        wire(net, 5)
        injector = FaultPlan().install(net)
        injector.crash(1)
        injector.stall(3)
        assert live_members(net, [0, 1, 2, 3, 4]) == [0, 2, 4]
        injector.recover(1)
        assert live_members(net, [0, 1, 2, 3, 4]) == [0, 1, 2, 4]
        injector.recover(3)
        assert live_members(net, [0, 1, 2, 3, 4]) == [0, 1, 2, 3, 4]


class TestRetryPolicy:
    def test_default_matches_historical_query_engine(self):
        assert DEFAULT_RETRY_POLICY.base_timeout == 2.0
        assert DEFAULT_RETRY_POLICY.backoff == 1.0
        assert DEFAULT_RETRY_POLICY.timeout_for(1) == 2.0
        assert DEFAULT_RETRY_POLICY.timeout_for(7) == 2.0
        assert DEFAULT_RETRY_POLICY.max_attempts(3) == 6

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_timeout=1.0, backoff=2.0, max_timeout=5.0)
        assert [policy.timeout_for(i) for i in (1, 2, 3, 4)] == [
            1.0,
            2.0,
            4.0,
            5.0,
        ]

    def test_probe_policy_paces_2_4_8_16(self):
        assert [
            PROBE_RETRY_POLICY.timeout_for(i) for i in (1, 2, 3, 4)
        ] == [2.0, 4.0, 8.0, 16.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_timeout": 0.0},
            {"backoff": 0.5},
            {"max_timeout": 1.0, "base_timeout": 2.0},
            {"rounds": 0},
            {"probe_attempts": -1},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TrackerHarness:
    """A tracker over a bare simclock with recorded sends and events."""

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.clock = SimClock()
        self.sends: list[int] = []
        self.events: list[str] = []
        self.tracker = RequestTracker(
            self.clock,
            policy=policy,
            on_retry=lambda request: self.events.append("retry"),
            on_timeout=lambda request: self.events.append("timeout"),
            on_degraded=lambda request: self.events.append("degraded"),
        )

    def begin(self, request_id: int, plan: list[int]):
        return self.tracker.begin(
            request_id, plan, send=lambda target, request: self.sends.append(target)
        )


class TestRequestTracker:
    def test_empty_plan_degrades_immediately(self):
        harness = TrackerHarness()
        request = harness.begin(0, [])
        assert request.degraded is not None
        assert request.degraded.reason == "no-reachable-replica"
        assert harness.sends == []
        assert harness.events == ["degraded"]
        assert harness.tracker.degraded_results == [request.degraded]

    def test_clean_resolve_sends_once(self):
        harness = TrackerHarness()
        harness.begin(0, [5, 6])
        assert harness.sends == [5]
        resolved = harness.tracker.resolve(0)
        assert resolved.resolved
        harness.clock.run()  # the stale deadline fires as a no-op
        assert harness.sends == [5]
        assert harness.events == []

    def test_timeouts_fail_over_round_robin_then_degrade(self):
        harness = TrackerHarness()
        request = harness.begin(0, [5, 6])
        harness.clock.run()
        # Default policy: 2 rounds over a 2-peer plan, then give up.
        assert harness.sends == [5, 6, 5, 6]
        assert request.degraded is not None
        assert request.degraded.reason == "retries-exhausted"
        assert request.timeouts == 4
        assert request.failovers == 3
        assert harness.events.count("timeout") == 4
        assert harness.events.count("retry") == 3
        assert harness.events[-1] == "degraded"

    def test_single_peer_plan_counts_no_failovers(self):
        harness = TrackerHarness()
        request = harness.begin(0, [9])
        harness.clock.run()
        assert harness.sends == [9, 9]
        assert request.failovers == 0

    def test_advance_moves_to_next_peer_immediately(self):
        harness = TrackerHarness()
        harness.begin(0, [5, 6])
        harness.tracker.advance(0)
        assert harness.sends == [5, 6]
        assert harness.clock.now == 0.0

    def test_resolve_after_advance_stops_retries(self):
        harness = TrackerHarness()
        harness.begin(0, [5, 6])
        harness.tracker.advance(0)
        harness.tracker.resolve(0)
        harness.clock.run()
        assert harness.sends == [5, 6]
        assert 0 not in harness.tracker.pending

    def test_backoff_paces_deadlines(self):
        policy = RetryPolicy(
            base_timeout=1.0, backoff=2.0, max_timeout=100.0, rounds=3
        )
        harness = TrackerHarness(policy=policy)
        request = harness.begin(0, [4])
        harness.clock.run()
        # Deadlines at 1, +2, +4 virtual seconds: degrade at t=7.
        assert request.degraded.at == pytest.approx(7.0)
        assert harness.sends == [4, 4, 4]

    def test_unknown_request_ids_are_ignored(self):
        harness = TrackerHarness()
        harness.tracker.advance(404)
        assert harness.tracker.resolve(404) is None
        assert harness.sends == []
