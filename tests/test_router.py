"""Router coverage: constructed message kinds vs. registered handlers.

Guards the refactor's central invariant: every message kind any code in
``src/repro/`` actually puts on the wire has exactly one registered
handler in the deployments that speak it, and a kind nobody registered
raises :class:`ProtocolError` loudly instead of being silently dropped.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro.baselines.full_replication import FullReplicationDeployment
from repro.baselines.rapidchain import RapidChainDeployment
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ProtocolError
from repro.net.message import MessageKind, sized_message
from repro.protocols.router import MessageRouter
from tests.conftest import TEST_LIMITS

SRC = Path(repro.__file__).parent
_KIND_RE = re.compile(r"MessageKind\.([A-Z_]+)")


def referenced_kinds(*paths: Path) -> set[MessageKind]:
    """Every kind referenced in the given sources (files or packages),
    excluding the enum's own definition module."""
    kinds: set[MessageKind] = set()
    for root in paths:
        files = root.rglob("*.py") if root.is_dir() else [root]
        for path in files:
            if path.name == "message.py" and path.parent.name == "net":
                continue
            for match in _KIND_RE.finditer(path.read_text()):
                kinds.add(MessageKind[match.group(1)])
    return kinds


def make_ici() -> ICIDeployment:
    return ICIDeployment(
        8,
        config=ICIConfig(n_clusters=2, replication=2, limits=TEST_LIMITS),
    )


def make_full() -> FullReplicationDeployment:
    return FullReplicationDeployment(6, limits=TEST_LIMITS)


def make_rapidchain() -> RapidChainDeployment:
    return RapidChainDeployment(8, n_committees=2, limits=TEST_LIMITS)


DEPLOYMENTS = [make_ici, make_full, make_rapidchain]


class TestKindCoverage:
    def test_membership_kinds_never_constructed(self):
        """CLUSTER_* are reserved taxonomy, built nowhere in src/repro."""
        kinds = referenced_kinds(SRC)
        assert MessageKind.CLUSTER_HELLO not in kinds
        assert MessageKind.CLUSTER_ASSIGN not in kinds

    def test_ici_router_covers_every_constructed_kind(self):
        """The ICI router handles exactly the kinds src/repro constructs."""
        deployment = make_ici()
        assert deployment.router.handled_kinds == referenced_kinds(SRC)

    def test_full_replication_covers_its_own_kinds(self):
        deployment = make_full()
        module = SRC / "baselines" / "full_replication.py"
        assert referenced_kinds(module) <= deployment.router.handled_kinds

    def test_rapidchain_covers_its_own_kinds(self):
        deployment = make_rapidchain()
        module = SRC / "baselines" / "rapidchain.py"
        assert referenced_kinds(module) <= deployment.router.handled_kinds

    def test_ici_kinds_owned_by_installed_engines(self):
        """Each handled kind has exactly one owner, a registered engine."""
        deployment = make_ici()
        owners = {
            kind: deployment.router.owner_of(kind)
            for kind in deployment.router.handled_kinds
        }
        assert set(owners.values()) == set(deployment.engines)
        for engine in deployment.engines.values():
            claimed = set(engine.kinds_claimed(deployment.router))
            assert claimed == {
                kind
                for kind, owner in owners.items()
                if owner == engine.name
            }


class TestDispatchFailures:
    @pytest.mark.parametrize("factory", DEPLOYMENTS)
    def test_unknown_kind_raises_protocol_error(self, factory):
        deployment = factory()
        node = deployment.nodes[1]
        rogue = sized_message(MessageKind.CLUSTER_HELLO, 0, 1, None, 16)
        with pytest.raises(ProtocolError, match="cluster_hello"):
            deployment.on_message(node, rogue)

    def test_fresh_router_rejects_everything(self):
        router = MessageRouter()
        message = sized_message(MessageKind.CONTROL, 0, 1, ("ping",), 8)
        node = type("N", (), {"node_id": 1})()
        with pytest.raises(ProtocolError, match="control"):
            router.dispatch(node, message)

    def test_duplicate_registration_rejected(self):
        router = MessageRouter()
        router.register(
            MessageKind.CONTROL, lambda node, message: None, owner="first"
        )
        with pytest.raises(ProtocolError, match="first"):
            router.register(
                MessageKind.CONTROL,
                lambda node, message: None,
                owner="second",
            )
        assert router.owner_of(MessageKind.CONTROL) == "first"
