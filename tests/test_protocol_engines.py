"""Protocol engines in isolation, plus the refactor's determinism pin.

The dissemination and query engines are driven against a minimal stub
deployment — real network/clock/router, stub sibling engines — so each
engine's behaviour is observable without a full ``ICIDeployment``.  The
final test pins a fixed-seed end-to-end scenario to golden values
captured on the pre-refactor monolith, proving the engine split changed
no behaviour.
"""

from __future__ import annotations

import hashlib

from repro.chain.block import Block, build_block
from repro.chain.chainstore import Ledger
from repro.chain.genesis import make_genesis
from repro.chain.transaction import (
    OutPoint,
    make_coinbase,
    make_signed_transfer,
)
from repro.clustering.membership import ClusterTable
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.core.metrics import DeploymentMetrics
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.net.topology import clustered_topology
from repro.node.base import BaseNode
from repro.node.clusternode import ClusterNode
from repro.protocols.dissemination import DisseminationEngine
from repro.protocols.query import QueryEngine
from repro.protocols.router import MessageRouter
from repro.sim.runner import ScenarioRunner
from repro.storage.placement import RendezvousPlacement
from tests.conftest import TEST_LIMITS, make_transfer_block


class StubVerification:
    """Records the calls dissemination makes into the verification engine."""

    def __init__(self) -> None:
        self.rounds_opened: list[tuple[int, bytes]] = []
        self.replayed: list[tuple[int, bytes]] = []
        self.started: list[tuple[int, bytes]] = []

    def ensure_round(self, node, header) -> None:
        self.rounds_opened.append((node.node_id, header.block_hash))

    def replay_pending(self, node, block_hash) -> None:
        self.replayed.append((node.node_id, block_hash))

    def start_verification(self, node, block) -> None:
        self.started.append((node.node_id, block.block_hash))


class StubQuery:
    """Records serve/miss hand-offs from the dissemination engine."""

    def __init__(self) -> None:
        self.served: list[tuple[int, bytes]] = []
        self.missed: list[int] = []

    def on_served(self, node, request_id, block) -> None:
        self.served.append((request_id, block.block_hash))

    def on_miss(self, request_id) -> None:
        self.missed.append(request_id)


class EngineHarness:
    """Single-cluster stand-in deployment: just what one engine needs."""

    def __init__(self, n_nodes: int = 4, replication: int = 2) -> None:
        self.network = Network()
        self.config = ICIConfig(
            n_clusters=1, replication=replication, limits=TEST_LIMITS
        )
        self.genesis = make_genesis([KeyPair.from_seed(0).address])
        self.ledger = Ledger(genesis=self.genesis, limits=TEST_LIMITS)
        self.metrics = DeploymentMetrics()
        self.router = MessageRouter()
        self.nodes: dict[int, ClusterNode] = {}
        for node_id in range(n_nodes):
            node = ClusterNode(
                node_id, self.network, cluster_id=0, limits=TEST_LIMITS
            )
            node.attach(self)
            node.store.add_header(self.genesis.header)
            self.nodes[node_id] = node
        members = list(range(n_nodes))
        self.clusters = ClusterTable.from_assignment([members])
        self.network.set_topology(clustered_topology([members], seed=0))
        self.placement = RendezvousPlacement()
        self.verification = StubVerification()
        self.query = StubQuery()

    # Deployment protocol surface the engines touch.
    def on_message(self, node: BaseNode, message: Message) -> None:
        self.router.dispatch(node, message)

    def note_send(self, message: Message) -> None:
        self.router.note_send(message)

    def holders_in_cluster(self, header, cluster_id: int) -> tuple[int, ...]:
        return self.placement.holders(
            header,
            self.clusters.members_of(cluster_id),
            self.config.replication,
        )

    def aggregator_for(self, header, cluster_id: int) -> int:
        return self.holders_in_cluster(header, cluster_id)[0]

    def run(self) -> None:
        self.network.run()


def invalid_next_block(genesis: Block) -> Block:
    """A height-1 block spending an outpoint that does not exist."""
    ghost = make_signed_transfer(
        sender=KeyPair.from_seed(5),
        spendable=[(OutPoint(txid=sha256(b"ghost"), index=0), 100)],
        recipient_address=KeyPair.from_seed(6).address,
        amount=10,
    )
    coinbase = make_coinbase(
        reward=TEST_LIMITS.block_reward,
        miner_address=KeyPair.from_seed(5).address,
        height=1,
    )
    return build_block(
        height=1,
        prev_hash=genesis.block_hash,
        transactions=[coinbase, ghost],
        timestamp=genesis.header.timestamp + 1.0,
    )


class TestDisseminationEngineIsolated:
    def make_engine(self, **kwargs) -> tuple[EngineHarness, DisseminationEngine]:
        harness = EngineHarness(**kwargs)
        engine = DisseminationEngine(harness)
        engine.install(harness.router)
        return harness, engine

    def test_disseminate_places_bodies_at_holders_only(self):
        harness, engine = self.make_engine()
        block = make_transfer_block(
            Ledger(genesis=harness.genesis, limits=TEST_LIMITS),
            KeyPair.from_seed(0),
            KeyPair.from_seed(1),
            500,
        )
        engine.disseminate(block, proposer_id=0)
        harness.run()
        assert engine.block_valid[block.block_hash] is True
        holders = set(harness.holders_in_cluster(block.header, 0))
        for node in harness.nodes.values():
            assert node.store.has_header(block.block_hash)
            assert node.store.has_body(block.block_hash) == (
                node.node_id in holders
            )
        # Verification was started exactly once per holder, nowhere else.
        started = {
            node_id
            for node_id, block_hash in harness.verification.started
            if block_hash == block.block_hash
        }
        assert started == holders

    def test_invalid_block_recorded_as_invalid_oracle_verdict(self):
        harness, engine = self.make_engine()
        block = invalid_next_block(harness.genesis)
        engine.disseminate(block, proposer_id=0)
        harness.run()
        assert engine.block_valid[block.block_hash] is False
        assert harness.ledger.height == 0  # canonical chain untouched

    def test_orphan_body_buffered_until_parent_header_lands(self):
        harness, engine = self.make_engine()
        chain = Ledger(genesis=harness.genesis, limits=TEST_LIMITS)
        block1 = make_transfer_block(
            chain, KeyPair.from_seed(0), KeyPair.from_seed(1), 500
        )
        chain.accept_block(block1)
        block2 = make_transfer_block(
            chain, KeyPair.from_seed(1), KeyPair.from_seed(2), 200
        )
        node = harness.nodes[3]
        engine.on_body(node, block2, fan_out=False)
        assert block2.block_hash in engine.orphan_bodies[node.node_id]
        assert harness.verification.started == []
        # The parent header arriving releases the buffered body.
        engine.note_header(node, block1.header)
        assert engine.orphan_bodies[node.node_id] == {}
        assert (node.node_id, block2.block_hash) in (
            harness.verification.started
        )

    def test_serve_and_miss_tags_route_to_query_engine(self):
        harness, engine = self.make_engine()
        block = make_transfer_block(
            Ledger(genesis=harness.genesis, limits=TEST_LIMITS),
            KeyPair.from_seed(0),
            KeyPair.from_seed(1),
            500,
        )
        harness.nodes[1].send(
            MessageKind.BLOCK_BODY, 0, ("serve", 7, block), block.size_bytes
        )
        harness.nodes[2].send(MessageKind.BLOCK_BODY, 0, ("miss", 9), 32)
        harness.run()
        assert harness.query.served == [(7, block.block_hash)]
        assert harness.query.missed == [9]

    def test_submitted_transaction_gossips_to_every_mempool(self):
        harness, engine = self.make_engine()
        tx = make_signed_transfer(
            sender=KeyPair.from_seed(0),
            spendable=harness.ledger.utxos.outpoints_of(
                KeyPair.from_seed(0).address
            ),
            recipient_address=KeyPair.from_seed(1).address,
            amount=250,
        )
        assert engine.submit_transaction(tx, origin_id=0) is True
        harness.run()
        for node in harness.nodes.values():
            assert node.mempool is not None and tx.txid in node.mempool
        assert engine.submit_transaction(tx, origin_id=0) is False


class TestQueryEngineIsolated:
    def make_engine(self, **kwargs) -> tuple[EngineHarness, QueryEngine]:
        harness = EngineHarness(**kwargs)
        engine = QueryEngine(harness)
        engine.install(harness.router)

        # Stand-in for the dissemination engine's BLOCK_BODY handler:
        # route serve/miss replies straight back into the query engine.
        def on_body(node: BaseNode, message: Message) -> None:
            tag = message.payload[0]
            if tag == "serve":
                _, request_id, block = message.payload
                engine.on_served(node, request_id, block)
            elif tag == "miss":
                engine.on_miss(message.payload[1])

        harness.router.register(
            MessageKind.BLOCK_BODY, on_body, owner="test-stub"
        )
        return harness, engine

    def seal_block(self, harness: EngineHarness) -> Block:
        block = make_transfer_block(
            Ledger(genesis=harness.genesis, limits=TEST_LIMITS),
            KeyPair.from_seed(0),
            KeyPair.from_seed(1),
            500,
        )
        for node in harness.nodes.values():
            node.store.add_header(block.header)
        return block

    def test_local_hit_completes_without_traffic(self):
        harness, engine = self.make_engine()
        block = self.seal_block(harness)
        harness.nodes[2].assign_body(block)
        record = engine.retrieve_block(2, block.block_hash)
        assert record.completed_at == harness.network.now
        assert harness.network.traffic.total_messages == 0

    def test_remote_fetch_served_by_plan_holder(self):
        harness, engine = self.make_engine()
        block = self.seal_block(harness)
        for holder in harness.holders_in_cluster(block.header, 0):
            harness.nodes[holder].assign_body(block)
        requester = next(
            node_id
            for node_id in harness.nodes
            if node_id not in harness.holders_in_cluster(block.header, 0)
        )
        record = engine.retrieve_block(requester, block.block_hash)
        assert record.completed_at is None
        harness.run()
        assert record.completed_at is not None
        assert record.latency is not None and record.latency > 0
        traffic = harness.network.traffic
        assert traffic.messages_by_kind[MessageKind.BLOCK_REQUEST] >= 1

    def test_miss_reply_advances_to_next_holder(self):
        harness, engine = self.make_engine()
        block = self.seal_block(harness)
        holders = harness.holders_in_cluster(block.header, 0)
        # Only the *last* planned holder actually has the body; every
        # earlier attempt answers "miss" and the plan advances.
        harness.nodes[holders[-1]].assign_body(block)
        requester = next(
            node_id
            for node_id in harness.nodes
            if node_id not in holders
        )
        record = engine.retrieve_block(requester, block.block_hash)
        harness.run()
        assert record.completed_at is not None
        # attempts starts at 1; each miss advances it by one.
        assert record.attempts == len(holders)

    def test_unresolvable_query_gives_up_incomplete(self):
        harness, engine = self.make_engine()
        block = self.seal_block(harness)  # headers known, no body anywhere
        record = engine.retrieve_block(0, block.block_hash)
        harness.run()
        assert record.completed_at is None
        plan = engine.query_plan[record.request_id]
        assert record.attempts > 2 * len(plan)  # every holder tried twice

    def test_offline_holder_times_out_then_retries(self):
        harness, engine = self.make_engine()
        block = self.seal_block(harness)
        holders = harness.holders_in_cluster(block.header, 0)
        for holder in holders:
            harness.nodes[holder].assign_body(block)
        harness.network.set_online(holders[0], False)
        requester = next(
            node_id
            for node_id in harness.nodes
            if node_id not in holders
        )
        record = engine.retrieve_block(requester, block.block_hash)
        harness.run()
        assert record.completed_at is not None
        assert record.attempts == 2  # the timeout advanced the plan once
        assert record.latency is not None and record.latency > 2.0


class TestDeterminismRegression:
    """Fixed-seed scenario must finalize the identical chain pre/post split.

    The golden values below were captured by running this exact scenario
    on the pre-refactor monolithic ``ICIDeployment`` (commit 52d6bbf).
    Any drift means the engine decomposition changed protocol behaviour.
    """

    GOLDEN_CHAIN_DIGEST = (
        "59abdf4a8d6fdd0e93fa526d73905ba446155b05815d2e024214ed8be260a768"
    )

    def test_fixed_seed_chain_matches_pre_refactor_golden(self):
        config = ICIConfig(
            n_clusters=4, replication=2, limits=TEST_LIMITS, seed=7
        )
        deployment = ICIDeployment(16, config=config)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=7)
        runner.produce_blocks(6, txs_per_block=4)
        join = deployment.join_new_node()
        deployment.run()

        ledger = deployment.ledger
        digest = hashlib.sha256(
            b"".join(
                ledger.active_hash_at(height)
                for height in range(ledger.height + 1)
            )
        ).hexdigest()
        assert digest == self.GOLDEN_CHAIN_DIGEST
        assert ledger.height == 6
        assert deployment.total_finalized_blocks() == 6
        assert deployment.network.traffic.total_messages == 949
        assert deployment.network.traffic.total_bytes == 188394
        assert deployment.network.now == 2.7534743999999995
        assert join.total_bytes == 2524

    def test_router_instrumentation_observes_the_scenario(self):
        config = ICIConfig(
            n_clusters=4, replication=2, limits=TEST_LIMITS, seed=7
        )
        deployment = ICIDeployment(16, config=config)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=7)
        runner.produce_blocks(3, txs_per_block=2)

        stats = deployment.metrics.router_stats
        assert stats.total_deliveries > 0
        assert stats.total_sends > 0
        assert stats.finalize_events > 0
        # Every delivered kind was a registered one (dispatch would have
        # raised otherwise); spot-check the taxonomy keys are enum values.
        for kind in stats.deliveries:
            assert MessageKind(kind) in deployment.router.handled_kinds
