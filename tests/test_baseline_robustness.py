"""Robustness edge cases for the baseline deployments."""

from __future__ import annotations


from repro.baselines.full_replication import FullReplicationDeployment
from repro.baselines.rapidchain import RapidChainDeployment
from repro.crypto.hashing import sha256
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def full(n=10, blocks=4):
    deployment = FullReplicationDeployment(n, limits=TEST_LIMITS)
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(blocks, txs_per_block=3)
    return deployment, report


def rapid(n=12, k=3, blocks=4):
    deployment = RapidChainDeployment(
        n, n_committees=k, limits=TEST_LIMITS
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(blocks, txs_per_block=3)
    return deployment, report


class TestFullReplicationRobustness:
    def test_offline_node_misses_block_but_others_converge(self):
        deployment, _ = full()
        deployment.network.set_online(7, False)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        # Note: fresh runner restarts at height 1 — instead drive via the
        # existing deployment by disseminating one extra block directly.
        from repro.chain.block import build_block
        from repro.chain.transaction import make_coinbase

        tip = deployment.nodes[0].ledger.tip
        block = build_block(
            height=tip.height + 1,
            prev_hash=tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward, b"\x01" * 20, tip.height + 1
                )
            ],
            timestamp=tip.timestamp + 1,
        )
        deployment.disseminate(block, proposer_id=0)
        deployment.run()
        online_heights = {
            node.ledger.height
            for node_id, node in deployment.nodes.items()
            if node_id != 7
        }
        assert online_heights == {tip.height + 1}
        assert deployment.nodes[7].ledger.height == tip.height

    def test_query_for_unknown_block_stays_pending(self):
        deployment, _ = full()
        record = deployment.retrieve_block(0, sha256(b"nothing"))
        assert record.latency is None

    def test_join_with_everyone_offline_is_incomplete(self):
        deployment, _ = full()
        for node_id in list(deployment.nodes):
            deployment.network.set_online(node_id, False)
        join = deployment.join_new_node()
        deployment.run()
        assert not join.complete

    def test_gossip_duplicate_suppression(self):
        """Re-disseminating the same block changes nothing."""
        deployment, report = full()
        messages_before = deployment.network.traffic.total_messages
        deployment.disseminate(report.blocks[0], proposer_id=0)
        deployment.run()
        # Only announce traffic (no re-transfers of the body to all).
        delta = (
            deployment.network.traffic.total_messages - messages_before
        )
        assert delta < len(deployment.nodes) * 10
        for node in deployment.nodes.values():
            assert node.ledger.height == 4


class TestRapidChainRobustness:
    def test_cross_shard_query_with_home_member_offline(self):
        deployment, report = rapid()
        block_hash = report.block_hashes[0]
        header = deployment.ledger.store.header(block_hash)
        home = deployment.home_committee(header)
        members = deployment.committees.members_of(home)
        deployment.network.set_online(members[0], False)
        outsider = next(
            node_id
            for node_id, node in deployment.nodes.items()
            if node.cluster_id != home
            and deployment.network.is_online(node_id)
        )
        record = deployment.retrieve_block(outsider, block_hash)
        deployment.run()
        # The deployment picks the first *online* member to query.
        assert record.latency is not None

    def test_join_with_offline_committee_is_incomplete(self):
        deployment, _ = rapid()
        committee = deployment.committees.smallest_cluster()
        for member in deployment.committees.members_of(committee):
            deployment.network.set_online(member, False)
        join = deployment.join_new_node()
        deployment.run()
        assert join.cluster_id == committee
        assert not join.complete

    def test_leader_crash_stalls_only_home_blocks(self):
        """If a committee's leader is offline, its shard's new blocks
        stall (known liveness limitation), other shards keep finalizing."""
        deployment, _ = rapid(blocks=2)
        dead_committee = 0
        leader = deployment.committee_leader(dead_committee)
        deployment.network.set_online(leader, False)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=9)
        # Re-seat the runner on the current tip.
        runner._tip_hash = deployment.ledger.tip.block_hash
        runner._tip_height = deployment.ledger.height
        from repro.chain.block import build_block
        from repro.chain.transaction import make_coinbase

        finalized, stalled = 0, 0
        tip = deployment.ledger.tip
        prev_hash, prev_ts = tip.block_hash, tip.timestamp
        for offset in range(1, 7):
            height = tip.height + offset
            block = build_block(
                height=height,
                prev_hash=prev_hash,
                transactions=[
                    make_coinbase(
                        TEST_LIMITS.block_reward, b"\x05" * 20, height
                    )
                ],
                timestamp=prev_ts + offset,
            )
            proposer = next(
                node_id
                for node_id in deployment.nodes
                if deployment.network.is_online(node_id)
            )
            deployment.disseminate(block, proposer)
            deployment.run()
            home = deployment.home_committee(block.header)
            done = (
                block.block_hash,
                home,
            ) in deployment.metrics.cluster_finalized_at
            if home == dead_committee:
                stalled += 0 if done else 1
            else:
                finalized += 1 if done else 0
            prev_hash, prev_ts = block.block_hash, block.header.timestamp
        assert finalized > 0
