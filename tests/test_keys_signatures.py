"""Unit tests for simulated keys, addresses, and signatures."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.keys import (
    ADDRESS_SIZE,
    PUBLIC_KEY_SIZE,
    KeyPair,
    KeyRing,
    address_of,
    derive_public_key,
)
from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    require_valid,
    sign,
    verify,
)
from repro.errors import SignatureError


class TestKeyDerivation:
    def test_public_key_size_and_prefix(self):
        keypair = KeyPair.from_seed(7)
        assert len(keypair.public_key) == PUBLIC_KEY_SIZE
        assert keypair.public_key[0] in (0x02, 0x03)

    def test_derivation_is_deterministic(self):
        assert KeyPair.from_seed(3) == KeyPair.from_seed(3)

    def test_different_seeds_differ(self):
        assert KeyPair.from_seed(1) != KeyPair.from_seed(2)

    def test_bad_private_key_length_raises(self):
        with pytest.raises(ValueError):
            KeyPair(private_key=b"short")
        with pytest.raises(ValueError):
            derive_public_key(b"short")

    def test_mismatched_public_key_rejected(self):
        honest = KeyPair.from_seed(0)
        other = KeyPair.from_seed(1)
        with pytest.raises(ValueError):
            KeyPair(
                private_key=honest.private_key,
                public_key=other.public_key,
            )

    def test_repr_hides_private_key(self):
        keypair = KeyPair.from_seed(0)
        assert keypair.private_key.hex() not in repr(keypair)


class TestAddresses:
    def test_address_size(self):
        assert len(KeyPair.from_seed(0).address) == ADDRESS_SIZE

    def test_address_of_rejects_bad_pubkey(self):
        with pytest.raises(ValueError):
            address_of(b"\x02" + b"\x00" * 10)

    def test_distinct_keys_distinct_addresses(self):
        addresses = {KeyPair.from_seed(i).address for i in range(50)}
        assert len(addresses) == 50


class TestKeyRing:
    def test_mints_unique_keys(self):
        ring = KeyRing()
        keys = [ring.new_keypair() for _ in range(10)]
        assert len({k.address for k in keys}) == 10
        assert len(ring) == 10

    def test_lookup_by_address(self):
        ring = KeyRing()
        keypair = ring.new_keypair()
        assert ring.get(keypair.address) == keypair
        assert keypair.address in ring

    def test_unknown_address_returns_none(self):
        assert KeyRing().get(b"\x00" * 20) is None

    def test_namespaces_isolate_sequences(self):
        a = KeyRing("a").new_keypair()
        b = KeyRing("b").new_keypair()
        assert a.address != b.address


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        keypair = KeyPair.from_seed(5)
        signature = sign(keypair, b"message")
        assert len(signature) == SIGNATURE_SIZE
        assert verify(keypair.public_key, b"message", signature)

    def test_wrong_message_fails(self):
        keypair = KeyPair.from_seed(5)
        signature = sign(keypair, b"message")
        assert not verify(keypair.public_key, b"other", signature)

    def test_wrong_key_fails(self):
        signer = KeyPair.from_seed(5)
        other = KeyPair.from_seed(6)
        signature = sign(signer, b"message")
        assert not verify(other.public_key, b"message", signature)

    def test_truncated_signature_fails(self):
        keypair = KeyPair.from_seed(5)
        signature = sign(keypair, b"message")
        assert not verify(keypair.public_key, b"message", signature[:-1])

    def test_bad_pubkey_length_fails_closed(self):
        keypair = KeyPair.from_seed(5)
        signature = sign(keypair, b"message")
        assert not verify(b"\x02\x03", b"message", signature)

    def test_tampered_tag_fails(self):
        keypair = KeyPair.from_seed(5)
        signature = bytearray(sign(keypair, b"message"))
        signature[0] ^= 0xFF
        assert not verify(keypair.public_key, b"message", bytes(signature))

    def test_require_valid_raises(self):
        keypair = KeyPair.from_seed(5)
        with pytest.raises(SignatureError):
            require_valid(keypair.public_key, b"m", b"\x00" * SIGNATURE_SIZE)

    @given(st.binary(max_size=256), st.integers(0, 1000))
    def test_roundtrip_property(self, message, seed):
        keypair = KeyPair.from_seed(seed)
        assert verify(keypair.public_key, message, sign(keypair, message))
