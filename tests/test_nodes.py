"""Unit tests for the node runtime roles."""

from __future__ import annotations

import pytest

from repro.chain.genesis import make_genesis
from repro.crypto.keys import KeyPair
from repro.errors import BlockNotStoredError, ValidationError
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageKind
from repro.net.network import Network
from repro.node.base import BaseNode
from repro.node.clusternode import ClusterNode
from repro.node.fullnode import FullNode
from repro.node.lightnode import LightNode
from tests.conftest import TEST_LIMITS, make_transfer_block


@pytest.fixture
def net() -> Network:
    return Network(latency=ConstantLatency(0.01))


class EchoDeployment:
    """Records every routed message."""

    def __init__(self) -> None:
        self.seen: list[tuple[int, Message]] = []

    def on_message(self, node, message: Message) -> None:
        self.seen.append((node.node_id, message))


class TestBaseNode:
    def test_registers_on_network(self, net):
        node = BaseNode(3, net)
        assert 3 in net.node_ids
        assert node.online

    def test_routes_to_deployment(self, net):
        deployment = EchoDeployment()
        a = BaseNode(0, net)
        b = BaseNode(1, net)
        b.attach(deployment)
        a.send(MessageKind.CONTROL, 1, "ping", 10)
        net.run()
        assert deployment.seen[0][0] == 1
        assert deployment.seen[0][1].payload == "ping"

    def test_unattached_node_drops_silently(self, net):
        a = BaseNode(0, net)
        BaseNode(1, net)
        a.send(MessageKind.CONTROL, 1, "ping", 10)
        net.run()  # no exception

    def test_broadcast_skips_self(self, net):
        deployment = EchoDeployment()
        nodes = [BaseNode(i, net) for i in range(3)]
        for node in nodes:
            node.attach(deployment)
        nodes[0].broadcast(MessageKind.CONTROL, (0, 1, 2), "x", 5)
        net.run()
        recipients = sorted(node_id for node_id, _ in deployment.seen)
        assert recipients == [1, 2]

    def test_deterministic_identity(self, net):
        assert BaseNode(5, net).address == KeyPair.from_seed(5).address


class TestFullNode:
    def test_accepts_and_tracks_balance(self, net, alice, bob):
        genesis = make_genesis([alice.address])
        node = FullNode(0, net, genesis, limits=TEST_LIMITS)
        block = make_transfer_block(node.ledger, alice, bob, 500)
        assert node.accept_block(block)
        assert node.height == 1
        assert node.balance_of(bob.address) >= 500

    def test_mempool_pruned_on_block(self, net, alice, bob):
        genesis = make_genesis([alice.address])
        node = FullNode(0, net, genesis, limits=TEST_LIMITS)
        block = make_transfer_block(node.ledger, alice, bob, 500)
        transfer = block.transactions[1]
        node.accept_transaction(transfer)
        assert transfer.txid in node.mempool
        node.accept_block(block)
        assert transfer.txid not in node.mempool

    def test_store_is_ledger_store(self, net, alice):
        genesis = make_genesis([alice.address])
        node = FullNode(0, net, genesis, limits=TEST_LIMITS)
        assert node.store is node.ledger.store


class TestClusterNode:
    def test_assignment_lifecycle(self, net, genesis):
        node = ClusterNode(0, net, cluster_id=2, limits=TEST_LIMITS)
        node.assign_body(genesis)
        assert node.is_holder_of(genesis.block_hash)
        assert node.assigned_count == 1
        assert node.serve_body(genesis.block_hash) == genesis

    def test_unassign_frees_bytes(self, net, genesis):
        node = ClusterNode(0, net, cluster_id=0, limits=TEST_LIMITS)
        node.assign_body(genesis)
        freed = node.unassign_body(genesis.block_hash)
        assert freed == genesis.body_size_bytes
        assert not node.store.has_body(genesis.block_hash)
        assert node.unassign_body(genesis.block_hash) == 0

    def test_serve_missing_raises(self, net, genesis):
        node = ClusterNode(0, net, cluster_id=0, limits=TEST_LIMITS)
        with pytest.raises(BlockNotStoredError):
            node.serve_body(genesis.block_hash)

    def test_prune_unassigned(self, net, genesis, alice, bob, ledger):
        node = ClusterNode(0, net, cluster_id=0, limits=TEST_LIMITS)
        node.store.add_header(genesis.header)
        block = make_transfer_block(ledger, alice, bob, 10)
        node.assign_body(genesis)
        node.store.add_body(block)  # fetched but not assigned
        dropped = node.prune_unassigned()
        assert dropped == 1
        assert node.store.has_body(genesis.block_hash)
        assert not node.store.has_body(block.block_hash)

    def test_round_reuse(self, net, genesis):
        node = ClusterNode(1, net, cluster_id=0, limits=TEST_LIMITS)
        round_a = node.round_for(genesis.header, (0, 1, 2), (0,))
        round_b = node.round_for(genesis.header, (0, 1, 2), (0,))
        assert round_a is round_b

    def test_finalize_tracking(self, net, genesis):
        node = ClusterNode(1, net, cluster_id=0, limits=TEST_LIMITS)
        assert not node.is_finalized(genesis.block_hash)
        node.finalize(genesis.block_hash)
        assert node.is_finalized(genesis.block_hash)


class TestLightNode:
    def test_header_sync_and_spv(self, net, ledger, chain_of_three):
        light = LightNode(9, net)
        for header in ledger.store.iter_active_headers():
            light.accept_header(header)
        block = chain_of_three[1]
        tx = block.transactions[1]
        proof = block.merkle_proof(1)
        assert light.verify_transaction(tx, block.block_hash, proof)
        assert tx.txid in light.verified_txids

    def test_spv_rejects_mismatched_leaf(self, net, ledger, chain_of_three):
        light = LightNode(9, net)
        for header in ledger.store.iter_active_headers():
            light.accept_header(header)
        block = chain_of_three[1]
        wrong_tx = chain_of_three[0].transactions[0]
        proof = block.merkle_proof(1)
        with pytest.raises(ValidationError):
            light.verify_transaction(wrong_tx, block.block_hash, proof)

    def test_spv_detects_wrong_root(self, net, ledger, chain_of_three):
        light = LightNode(9, net)
        for header in ledger.store.iter_active_headers():
            light.accept_header(header)
        block_a, block_b = chain_of_three[0], chain_of_three[1]
        tx = block_a.transactions[1]
        proof = block_a.merkle_proof(1)
        # Proof is valid for block_a but checked against block_b's header.
        assert not light.verify_transaction(tx, block_b.block_hash, proof)

    def test_storage_is_headers_only(self, net, ledger, chain_of_three):
        light = LightNode(9, net)
        for header in ledger.store.iter_active_headers():
            light.accept_header(header)
        assert light.storage_bytes == 84 * 4
