"""The Kademlia-style DHT overlay: engine, wiring, audits, and E20.

Covers the whole overlay loop (:mod:`repro.dht`): the dormant-engine
discipline (installed always, inert until :meth:`enable_dht`), table
seeding and observer-driven warming, iterative FIND_NODE/FIND_VALUE
lookups over the message fabric, provider-record publish/expiry/
republish on the repair sweep cadence, the query engine's
FIND_VALUE-first retrieval path, join-by-self-lookup, the repair
engine's XOR-nearest digest fanout, the chaos/endurance ``dht=True``
audits, and the E20 broadcast-vs-DHT comparison.  Every scenario is
seeded and the key signatures are pinned for determinism.
"""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.dht.engine import DHTConfig, DHTEngine
from repro.dht.idspace import block_key
from repro.dht.records import ProviderStore
from repro.errors import ConfigurationError
from repro.net.message import MessageKind
from repro.sim.chaos import ChaosConfig, EnduranceConfig, run_chaos, run_endurance
from repro.sim.dht_compare import DhtCompareConfig, run_dht_compare
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def build_dht(
    n_nodes: int = 12,
    n_clusters: int = 2,
    replication: int = 2,
    n_blocks: int = 4,
    enable: bool = True,
    config: DHTConfig | None = None,
):
    """A small deployment with the overlay (optionally) enabled."""
    ici = ICIConfig(
        n_clusters=n_clusters,
        replication=replication,
        limits=TEST_LIMITS,
    )
    deployment = ICIDeployment(n_nodes, config=ici)
    if enable:
        deployment.enable_dht(config)
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=11)
    report = runner.produce_blocks(n_blocks, txs_per_block=2)
    deployment.run()
    return deployment, report


# ------------------------------------------------------------ dormant engine
def test_engine_installed_but_inert_by_default():
    ici = ICIConfig(n_clusters=2, limits=TEST_LIMITS)
    deployment = ICIDeployment(8, config=ici)
    assert isinstance(deployment.dht, DHTEngine)
    assert not deployment.dht.enabled
    assert deployment.dht.tables == {}
    # All seven overlay kinds are registered even while dormant (the
    # router coverage invariant counts referenced kinds).
    for kind in (
        MessageKind.DHT_PING,
        MessageKind.DHT_PONG,
        MessageKind.DHT_FIND_NODE,
        MessageKind.DHT_NODES,
        MessageKind.DHT_FIND_VALUE,
        MessageKind.DHT_VALUE,
        MessageKind.DHT_STORE,
    ):
        assert kind in deployment.router.handled_kinds
    # A dormant overlay sends nothing.
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=11)
    runner.produce_blocks(2, txs_per_block=1)
    deployment.run()
    stats = deployment.metrics.router_stats
    assert all(not kind.startswith("dht_") for kind in stats.sends)


def test_enable_is_idempotent_and_seeds_every_table():
    deployment, _ = build_dht(n_blocks=2)
    dht = deployment.dht
    assert dht.enable() is dht
    assert sorted(dht.tables) == sorted(deployment.nodes)
    for node_id, table in dht.tables.items():
        table.check_invariants()
        assert len(table) > 0
        # Cluster co-members plus at least one foreign-cluster bridge.
        own = deployment.nodes[node_id].cluster_id
        clusters = {
            deployment.nodes[c.node_id].cluster_id
            for c in table.contacts()
            if c.node_id in deployment.nodes
        }
        assert own in clusters or len(table.contacts()) < 2
        assert len(clusters) >= 2


def test_dht_config_validation():
    with pytest.raises(ConfigurationError):
        DHTConfig(k=0)
    with pytest.raises(ConfigurationError):
        DHTConfig(alpha=0)
    with pytest.raises(ConfigurationError):
        DHTConfig(record_ttl=0.0)
    with pytest.raises(ConfigurationError):
        DHTConfig(digest_fanout=0)


# ------------------------------------------------------------------ lookups
def test_value_lookup_resolves_published_holders():
    deployment, report = build_dht()
    dht = deployment.dht
    target = report.block_hashes[-1]
    results = []
    lookup = dht.lookup_value(
        0, block_key(target), on_complete=results.append
    )
    deployment.run()
    assert lookup.done
    assert results and results[0] == lookup.result
    holders = lookup.value
    assert holders, "published record must resolve"
    # The record names true live holders of the block.
    for holder in holders:
        assert deployment.nodes[holder].store.has_body(target)
    assert lookup.messages > 0
    assert lookup.hops >= 1


def test_node_lookup_returns_k_nearest_contacts():
    deployment, _ = build_dht()
    dht = deployment.dht
    target_key = dht.key_of(7)
    lookup = dht.lookup_node(0, target_key)
    deployment.run()
    assert lookup.done
    contacts = lookup.result
    assert contacts
    # Nearest-first by XOR distance, and the target itself is found.
    dists = [c.key ^ target_key for c in contacts]
    assert dists == sorted(dists)
    assert contacts[0].node_id == 7


def test_find_holders_uses_local_record_without_traffic():
    deployment, report = build_dht()
    dht = deployment.dht
    target = report.block_hashes[0]
    key = block_key(target)
    # Find a node that locally stores the provider record.
    owner = next(
        node_id
        for node_id, store in sorted(dht.providers.items())
        if store.get(key, deployment.network.now)
    )
    before = dht.stats.lookup_messages
    got = []
    dht.find_holders(owner, target, got.append)
    assert got and got[0]
    assert dht.stats.lookup_messages == before
    assert dht.stats.local_hits >= 1


def test_retrieve_block_resolves_through_overlay():
    deployment, report = build_dht()
    target = report.block_hashes[-1]
    requester = next(
        node_id
        for node_id in sorted(deployment.nodes)
        if not deployment.nodes[node_id].store.has_body(target)
    )
    hits_before = deployment.dht.stats.value_hits
    local_before = deployment.dht.stats.local_hits
    record = deployment.retrieve_block(requester, target)
    deployment.run()
    assert record.completed_at is not None
    assert not record.degraded
    assert (
        deployment.dht.stats.value_hits > hits_before
        or deployment.dht.stats.local_hits > local_before
    )


# ----------------------------------------------------------------- records
def test_finalize_publishes_each_cluster_record_once():
    deployment, report = build_dht(n_blocks=3)
    dht = deployment.dht
    clusters = deployment.clusters.cluster_count
    # One record per (cluster, active block incl. genesis), no dupes
    # despite per-member finalize events.
    active = sum(
        1 for _ in deployment.ledger.store.iter_active_headers()
    )
    assert dht.stats.records_published == clusters * active


def test_records_expire_and_republish_on_sweep():
    deployment, report = build_dht()
    dht = deployment.dht
    ttl = dht.config.record_ttl
    key = block_key(report.block_hashes[0])
    now = deployment.network.now
    held = sum(
        1
        for store in dht.providers.values()
        if store.get(key, now)
    )
    assert held > 0
    # Let every record lapse, then sweep: expiry drains, republish
    # refills (every record is long past its republish interval).
    deployment.network.clock.run_for(2 * ttl)
    later = deployment.network.now
    assert all(
        not store.get(key, later) for store in dht.providers.values()
    )
    dht.on_sweep()
    deployment.run()
    assert dht.stats.records_expired > 0
    refreshed = sum(
        1
        for store in dht.providers.values()
        if store.get(key, deployment.network.now)
    )
    assert refreshed > 0


def test_provider_store_merges_max_expiry():
    store = ProviderStore()
    store.put(1, [4, 5], now=0.0, ttl=10.0)
    store.put(1, [5, 6], now=5.0, ttl=10.0)
    assert store.get(1, 11.0) == (5, 6)
    assert store.get(1, 9.0) == (4, 5, 6)
    assert store.expire(20.0) == 3
    assert store.get(1, 0.0) == ()


# ------------------------------------------------------------------- joins
def test_join_bootstraps_by_self_lookup():
    deployment, _ = build_dht()
    dht = deployment.dht
    joins_before = dht.stats.joins
    report = deployment.join_new_node()
    deployment.run()
    assert report.complete
    assert dht.stats.joins == joins_before + 1
    table = dht.tables[report.node_id]
    table.check_invariants()
    # The self-lookup converged: the joiner knows more than its seed
    # contact, and its peers learned the joiner from its probes.
    assert len(table) > 1
    known_by = sum(
        1
        for node_id, other in dht.tables.items()
        if node_id != report.node_id and report.node_id in other
    )
    assert known_by > 0


# ----------------------------------------------------------- digest routing
def test_digest_peers_picks_xor_nearest_subset():
    deployment, _ = build_dht()
    dht = deployment.dht
    fanout = dht.config.digest_fanout
    candidates = [n for n in sorted(deployment.nodes) if n != 0]
    picked = dht.digest_peers(0, candidates)
    assert len(picked) == fanout
    own = dht.key_of(0)
    cutoff = max(dht.key_of(p) ^ own for p in picked)
    for other in set(candidates) - set(picked):
        assert dht.key_of(other) ^ own > cutoff
    # Small candidate lists pass through whole.
    assert dht.digest_peers(0, candidates[:2]) == candidates[:2]


def test_repair_sweep_converges_with_dht_fanout():
    deployment, report = build_dht(n_nodes=14, n_clusters=2)
    victim_block = report.block_hashes[0]
    holders = [
        n
        for n in sorted(deployment.nodes)
        if deployment.nodes[n].store.has_body(victim_block)
    ]
    lost = holders[0]
    deployment.nodes[lost].unassign_body(victim_block)
    repair = deployment.repair
    repair.start(cadence=2.0)
    deployment.network.clock.run_for(10.0)
    repair.stop()
    deployment.run()
    assert repair.stats.digests_requested > 0
    assert deployment.nodes[lost].store.has_body(victim_block)


# ------------------------------------------------------------ chaos / E20
def test_chaos_dht_audit_and_determinism():
    config = ChaosConfig(seed=7, dht=True, drop_rate=0.1)
    first = run_chaos(config)
    assert first.integrity_restored
    assert first.dht["audit_lookups_ok"] == first.dht["audit_lookups"]
    assert first.dht["stale_contacts"] == 0
    assert first.dht["empty_tables"] == 0
    assert "dht" in first.signature()
    second = run_chaos(config)
    assert first.signature() == second.signature()


def test_chaos_without_dht_signature_has_no_dht_key():
    outcome = run_chaos(ChaosConfig(seed=7, drop_rate=0.1))
    assert outcome.dht == {}
    assert "dht" not in outcome.signature()


def test_endurance_dht_audit():
    outcome = run_endurance(
        EnduranceConfig(seed=3, n_blocks=6, dht=True)
    )
    assert outcome.integrity_restored
    assert (
        outcome.dht["audit_lookups_ok"] == outcome.dht["audit_lookups"]
    )
    assert "dht" in outcome.signature()


def test_dht_compare_sublinear_and_deterministic():
    config = DhtCompareConfig(
        network_sizes=(12, 24), n_blocks=3, lookups=6
    )
    outcome = run_dht_compare(config, limits=TEST_LIMITS)
    assert outcome.lookups_ok
    assert outcome.sublinear
    assert outcome.chaos_lookups_ok
    assert outcome.chaos_integrity
    again = run_dht_compare(config, limits=TEST_LIMITS)
    assert outcome.signature() == again.signature()


def test_dht_compare_config_validation():
    with pytest.raises(ConfigurationError):
        DhtCompareConfig(network_sizes=(12,))
    with pytest.raises(ConfigurationError):
        DhtCompareConfig(network_sizes=(24, 12))
    with pytest.raises(ConfigurationError):
        DhtCompareConfig(network_sizes=(6, 12), cluster_size=6)
    with pytest.raises(ConfigurationError):
        DhtCompareConfig(lookups=0)


# ---------------------------------------------------------------- reporting
def test_chaos_summary_renders_dht_section():
    from repro.analysis.report import render_chaos_summary

    outcome = run_chaos(ChaosConfig(seed=7, dht=True, drop_rate=0.1))
    summary = render_chaos_summary(outcome)
    assert "## DHT overlay" in summary
    assert "audit lookups" in summary
    plain = render_chaos_summary(
        run_chaos(ChaosConfig(seed=7, drop_rate=0.1))
    )
    assert "## DHT overlay" not in plain


def test_router_section_lists_dormant_kinds_with_zero_counts():
    from repro.analysis.report import render_deployment_report

    deployment, _ = build_dht(enable=False, n_blocks=2)
    report = render_deployment_report(deployment)
    assert "| dht_find_value | 0 |" in report
    assert "| dht_store | 0 |" in report


def test_cli_chaos_dht_flag(capsys):
    from repro.cli import main

    code = main(
        ["chaos", "--dht", "--drop-rate", "0.1", "--seed", "7"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "## DHT overlay" in out
