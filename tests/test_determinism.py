"""Determinism: identical seeds must reproduce identical simulations."""

from __future__ import annotations

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def run_once(seed: int):
    deployment = ICIDeployment(
        16,
        config=ICIConfig(
            n_clusters=4, replication=2, limits=TEST_LIMITS, seed=seed
        ),
    )
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS, seed=seed)
    report = runner.produce_blocks(5, txs_per_block=4)
    join = deployment.join_new_node()
    deployment.run()
    return deployment, report, join


class TestBitReproducibility:
    def test_block_stream_identical(self):
        _, report_a, _ = run_once(7)
        _, report_b, _ = run_once(7)
        assert report_a.block_hashes == report_b.block_hashes

    def test_traffic_identical(self):
        deployment_a, *_ = run_once(7)
        deployment_b, *_ = run_once(7)
        a, b = deployment_a.network.traffic, deployment_b.network.traffic
        assert a.total_messages == b.total_messages
        assert a.total_bytes == b.total_bytes
        assert dict(a.bytes_by_kind) == dict(b.bytes_by_kind)

    def test_virtual_time_identical(self):
        deployment_a, *_ = run_once(7)
        deployment_b, *_ = run_once(7)
        assert deployment_a.network.now == deployment_b.network.now
        assert (
            deployment_a.metrics.cluster_finalized_at
            == deployment_b.metrics.cluster_finalized_at
        )

    def test_bootstrap_identical(self):
        _, _, join_a = run_once(7)
        _, _, join_b = run_once(7)
        assert join_a.total_bytes == join_b.total_bytes
        assert join_a.duration == join_b.duration
        assert join_a.cluster_id == join_b.cluster_id

    def test_different_seeds_differ(self):
        _, report_a, _ = run_once(7)
        _, report_b, _ = run_once(8)
        assert report_a.block_hashes != report_b.block_hashes

    def test_storage_layout_identical(self):
        deployment_a, *_ = run_once(7)
        deployment_b, *_ = run_once(7)
        layout_a = {
            node_id: node.store.stored_bytes
            for node_id, node in deployment_a.nodes.items()
        }
        layout_b = {
            node_id: node.store.stored_bytes
            for node_id, node in deployment_b.nodes.items()
        }
        assert layout_a == layout_b
