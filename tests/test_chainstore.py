"""Unit tests for the chain store and validating ledger (incl. reorgs)."""

from __future__ import annotations

import pytest

from repro.chain.block import build_block
from repro.chain.chainstore import ChainStore, Ledger, new_ledger_with_faucets
from repro.chain.transaction import make_coinbase
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import ForkError, UnknownBlockError, ValidationError
from tests.conftest import TEST_LIMITS, make_transfer_block


class TestChainStoreHeaders:
    def test_add_and_lookup(self, genesis):
        store = ChainStore()
        assert store.add_header(genesis.header)
        assert store.has_header(genesis.block_hash)
        assert store.header(genesis.block_hash) == genesis.header

    def test_duplicate_add_returns_false(self, genesis):
        store = ChainStore()
        store.add_header(genesis.header)
        assert not store.add_header(genesis.header)
        assert store.header_count == 1

    def test_orphan_header_rejected(self, ledger, alice, bob):
        block = make_transfer_block(ledger, alice, bob, 10)
        store = ChainStore()
        with pytest.raises(ValidationError, match="parent"):
            store.add_header(block.header)

    def test_unknown_header_raises(self):
        with pytest.raises(UnknownBlockError):
            ChainStore().header(sha256(b"x"))

    def test_tip_tracks_highest(self, ledger, alice, bob, chain_of_three):
        store = ChainStore()
        for header in ledger.store.iter_active_headers():
            store.add_header(header)
        assert store.tip is not None
        assert store.tip.height == 3
        assert store.height == 3

    def test_empty_store_height(self):
        store = ChainStore()
        assert store.height == -1
        assert store.tip is None

    def test_active_header_at(self, ledger, chain_of_three):
        store = ledger.store
        assert store.active_header_at(0).is_genesis
        assert store.active_header_at(2) == chain_of_three[1].header
        with pytest.raises(UnknownBlockError):
            store.active_header_at(99)

    def test_iter_active_headers_in_order(self, ledger, chain_of_three):
        heights = [h.height for h in ledger.store.iter_active_headers()]
        assert heights == [0, 1, 2, 3]


class TestChainStoreBodies:
    def test_add_body_indexes_header(self, genesis):
        store = ChainStore()
        assert store.add_body(genesis)
        assert store.has_header(genesis.block_hash)
        assert store.has_body(genesis.block_hash)

    def test_drop_body_keeps_header(self, genesis):
        store = ChainStore()
        store.add_body(genesis)
        assert store.drop_body(genesis.block_hash)
        assert store.has_header(genesis.block_hash)
        assert not store.has_body(genesis.block_hash)
        assert not store.drop_body(genesis.block_hash)

    def test_body_lookup_raises_when_pruned(self, genesis):
        store = ChainStore()
        store.add_body(genesis)
        store.drop_body(genesis.block_hash)
        with pytest.raises(UnknownBlockError, match="not stored"):
            store.body(genesis.block_hash)

    def test_storage_accounting(self, genesis):
        store = ChainStore()
        store.add_body(genesis)
        assert store.header_bytes == 84
        assert store.body_bytes == genesis.body_size_bytes
        assert store.stored_bytes == 84 + genesis.body_size_bytes
        store.drop_body(genesis.block_hash)
        assert store.stored_bytes == 84


class TestLedger:
    def test_genesis_applied_on_init(self, ledger, alice):
        assert ledger.height == 0
        assert ledger.utxos.balance_of(alice.address) > 0

    def test_accept_chain(self, ledger, alice, bob, carol):
        b1 = make_transfer_block(ledger, alice, bob, 1_000)
        assert ledger.accept_block(b1)
        assert ledger.height == 1
        assert ledger.utxos.balance_of(bob.address) >= 1_000

    def test_duplicate_block_returns_false(self, ledger, alice, bob):
        b1 = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(b1)
        assert not ledger.accept_block(b1)

    def test_non_extending_block_raises_fork(self, ledger, alice, bob):
        b1 = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(b1)
        orphan = build_block(
            height=5,
            prev_hash=sha256(b"elsewhere"),
            transactions=[make_coinbase(1, alice.address, 5)],
            timestamp=99.0,
        )
        with pytest.raises(ForkError):
            ledger.accept_block(orphan)

    def test_undo_tip_restores_balances(self, ledger, alice, bob):
        before = ledger.utxos.balance_of(bob.address)
        b1 = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(b1)
        ledger.undo_tip()
        assert ledger.height == 0
        assert ledger.utxos.balance_of(bob.address) == before

    def test_cannot_undo_genesis(self, ledger):
        with pytest.raises(ForkError):
            ledger.undo_tip()

    def test_active_hash_at(self, ledger, chain_of_three):
        assert ledger.active_hash_at(2) == chain_of_three[1].block_hash
        with pytest.raises(UnknownBlockError):
            ledger.active_hash_at(9)

    def test_faucet_helper(self):
        faucets = [KeyPair.from_seed(i).address for i in range(3)]
        ledger = new_ledger_with_faucets(faucets)
        for address in faucets:
            assert ledger.utxos.balance_of(address) > 0


class TestReorg:
    def _fork_from_genesis(self, ledger, alice, bob, length: int):
        """Build a competing branch of ``length`` blocks off genesis."""
        side = Ledger(
            genesis=ledger.store.body(ledger.active_hash_at(0)),
            limits=TEST_LIMITS,
        )
        branch = []
        for i in range(length):
            block = make_transfer_block(side, alice, bob, 10 + i)
            side.accept_block(block)
            branch.append(block)
        return branch

    def test_longer_branch_wins(self, ledger, alice, bob):
        main = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(main)
        branch = self._fork_from_genesis(ledger, alice, bob, 2)
        disconnected = ledger.reorg_to(branch)
        assert disconnected == 1
        assert ledger.height == 2
        assert ledger.tip.block_hash == branch[-1].block_hash

    def test_equal_length_branch_rejected(self, ledger, alice, bob):
        main = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(main)
        branch = self._fork_from_genesis(ledger, alice, bob, 1)
        with pytest.raises(ForkError, match="longer"):
            ledger.reorg_to(branch)

    def test_detached_branch_rejected(self, ledger, alice, bob):
        stray = build_block(
            height=1,
            prev_hash=sha256(b"unknown"),
            transactions=[make_coinbase(1, alice.address, 1)],
            timestamp=1.0,
        )
        with pytest.raises(ForkError, match="attach"):
            ledger.reorg_to([stray])

    def test_empty_branch_rejected(self, ledger):
        with pytest.raises(ForkError, match="empty"):
            ledger.reorg_to([])

    def test_invalid_branch_restores_original_chain(
        self, ledger, alice, bob
    ):
        main = make_transfer_block(ledger, alice, bob, 1_000)
        ledger.accept_block(main)
        original_tip = ledger.tip.block_hash
        branch = self._fork_from_genesis(ledger, alice, bob, 2)
        # Corrupt the second branch block: coinbase overpays.
        bad_tail = build_block(
            height=branch[1].height,
            prev_hash=branch[1].header.prev_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward * 10,
                    alice.address,
                    branch[1].height,
                )
            ],
            timestamp=branch[1].header.timestamp,
        )
        with pytest.raises(ValidationError):
            ledger.reorg_to([branch[0], bad_tail])
        assert ledger.tip.block_hash == original_tip
        assert ledger.height == 1
