"""Tests for the workload generator, scenario builder, and runner."""

from __future__ import annotations

import pytest

from repro.chain.validation import check_transaction_stateless
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import (
    BENCH_LIMITS,
    Scenario,
    build_deployment,
    build_network,
)
from repro.sim.workload import TransactionWorkload, WorkloadConfig
from tests.conftest import TEST_LIMITS


class TestWorkloadConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(n_wallets=1)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(target_tx_bytes=-1)


class TestTransactionWorkload:
    def test_no_funds_no_transfers(self):
        workload = TransactionWorkload()
        assert workload.next_transfer() is None
        assert workload.batch(5) == []

    def test_genesis_funds_wallet_zero(self, genesis):
        workload = TransactionWorkload()
        workload.on_block_confirmed(genesis)
        assert workload.spendable_value(workload.wallets[0]) > 0
        tx = workload.next_transfer()
        assert tx is not None
        check_transaction_stateless(tx, TEST_LIMITS)

    def test_pending_spends_not_reoffered(self, genesis):
        """Two consecutive transfers never double-spend."""
        workload = TransactionWorkload()
        workload.on_block_confirmed(genesis)
        first = workload.next_transfer()
        second = workload.next_transfer()
        if second is not None:  # wallet 0 may have a single outpoint
            spent_first = set(first.outpoints_spent())
            spent_second = set(second.outpoints_spent())
            assert not spent_first & spent_second

    def test_confirmation_recycles_outputs(self, ledger):
        workload = TransactionWorkload()
        workload.on_block_confirmed(
            ledger.store.body(ledger.active_hash_at(0))
        )
        runner_blocks = []
        from repro.chain.block import build_block
        from repro.chain.transaction import make_coinbase

        for height in range(1, 4):
            txs = workload.batch(3)
            coinbase = make_coinbase(
                TEST_LIMITS.block_reward, workload.wallets[0].address, height
            )
            block = build_block(
                height=height,
                prev_hash=ledger.tip.block_hash,
                transactions=[coinbase, *txs],
                timestamp=ledger.tip.timestamp + 1,
            )
            ledger.accept_block(block)  # validates everything
            workload.on_block_confirmed(block)
            runner_blocks.append(block)
        # After three blocks funds have fanned out to several wallets.
        funded = sum(
            workload.spendable_value(w) > 0 for w in workload.wallets
        )
        assert funded >= 2

    def test_deterministic_stream(self, genesis):
        a = TransactionWorkload(WorkloadConfig(seed=7))
        b = TransactionWorkload(WorkloadConfig(seed=7))
        a.on_block_confirmed(genesis)
        b.on_block_confirmed(genesis)
        ta, tb = a.next_transfer(), b.next_transfer()
        assert ta is not None and tb is not None
        assert ta.txid == tb.txid

    def test_padding_inflates_size(self, genesis):
        padded = TransactionWorkload(
            WorkloadConfig(target_tx_bytes=900, seed=1)
        )
        padded.on_block_confirmed(genesis)
        tx = padded.next_transfer()
        assert tx is not None
        assert tx.size_bytes >= 700

    def test_zero_padding(self, genesis):
        lean = TransactionWorkload(WorkloadConfig(target_tx_bytes=0, seed=1))
        lean.on_block_confirmed(genesis)
        tx = lean.next_transfer()
        assert tx is not None
        assert tx.payload == b""


class TestScenario:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            Scenario(strategy="bogus")

    def test_rejects_unknown_latency(self):
        with pytest.raises(ConfigurationError):
            Scenario(latency="bogus")

    @pytest.mark.parametrize("strategy", ["ici", "full", "rapidchain"])
    def test_build_each_strategy(self, strategy):
        scenario = Scenario(strategy=strategy, n_nodes=12, n_groups=3)
        deployment = build_deployment(scenario)
        assert deployment.node_count == 12

    def test_regions_latency_provides_coordinates(self):
        network, coordinates = build_network(
            Scenario(latency="regions", n_nodes=10)
        )
        assert coordinates is not None
        assert len(coordinates) == 10

    def test_ici_with_latency_clustering(self):
        scenario = Scenario(
            strategy="ici",
            n_nodes=12,
            n_groups=3,
            latency="regions",
            clustering="latency",
        )
        deployment = build_deployment(scenario)
        runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
        runner.produce_blocks(2, txs_per_block=2)
        assert deployment.total_finalized_blocks() == 2


class TestRunner:
    def test_produces_valid_chain(self):
        deployment = ICIDeployment(
            12, config=ICIConfig(n_clusters=3, limits=TEST_LIMITS)
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        report = runner.produce_blocks(4, txs_per_block=3)
        assert report.blocks_produced == 4
        assert runner.chain_height == 4
        assert deployment.ledger.height == 4
        assert report.ledger_bytes > 0

    def test_identical_streams_across_strategies(self):
        """Two deployments under the same seed see the same blocks."""
        from repro.baselines.full_replication import (
            FullReplicationDeployment,
        )

        ici = ICIDeployment(
            12, config=ICIConfig(n_clusters=3, limits=TEST_LIMITS)
        )
        full = FullReplicationDeployment(12, limits=TEST_LIMITS)
        hashes_ici = ScenarioRunner(
            ici, limits=TEST_LIMITS
        ).produce_blocks(3, 3).block_hashes
        hashes_full = ScenarioRunner(
            full, limits=TEST_LIMITS
        ).produce_blocks(3, 3).block_hashes
        assert hashes_ici == hashes_full

    def test_proposers_rotate(self):
        deployment = ICIDeployment(
            12, config=ICIConfig(n_clusters=3, limits=TEST_LIMITS)
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        proposers = {
            runner.schedule.proposer_at(h) for h in range(1, 30)
        }
        assert len(proposers) > 3

    def test_transactions_flow_through_blocks(self):
        deployment = ICIDeployment(
            12, config=ICIConfig(n_clusters=3, limits=TEST_LIMITS)
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        report = runner.produce_blocks(5, txs_per_block=4)
        assert report.transactions_produced > 0
