"""Tests for compact (BIP-152-style) block dissemination."""

from __future__ import annotations

import pytest

from repro.chain.block import Block
from repro.core.compact import (
    CompactStats,
    PendingCompact,
    compact_payload_bytes,
)
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.net.message import MessageKind
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def compact_deployment(n_nodes=16, **kwargs):
    kwargs.setdefault("n_clusters", 4)
    kwargs.setdefault("replication", 1)
    kwargs.setdefault("compact_blocks", True)
    kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(n_nodes, config=ICIConfig(**kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    return deployment, runner


class TestCompactDissemination:
    def test_relay_driven_run_finalizes_everywhere(self):
        deployment, runner = compact_deployment()
        report = runner.produce_blocks_via_relay(5, txs_per_block=5)
        assert deployment.total_finalized_blocks() == 5
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_holders_store_reconstructed_bodies(self):
        deployment, runner = compact_deployment()
        report = runner.produce_blocks_via_relay(4, txs_per_block=4)
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            for view in deployment.clusters.views():
                holders = deployment.holders_in_cluster(
                    header, view.cluster_id
                )
                for holder in holders:
                    block = deployment.nodes[holder].store.body(block_hash)
                    assert block.verify_merkle_commitment()

    def test_mempool_hit_rate_high_after_relay(self):
        deployment, runner = compact_deployment()
        runner.produce_blocks_via_relay(5, txs_per_block=5)
        assert deployment.compact_stats.hit_rate > 0.5
        assert deployment.compact_stats.announcements > 0

    def test_compact_saves_dissemination_bytes(self):
        compact, c_runner = compact_deployment()
        c_runner.produce_blocks_via_relay(4, txs_per_block=5)
        full, f_runner = compact_deployment(compact_blocks=False)
        f_runner.produce_blocks_via_relay(4, txs_per_block=5)
        kinds = {MessageKind.BLOCK_BODY, MessageKind.CONTROL}
        compact_bytes = compact.network.traffic.bytes_for_kinds(kinds)
        full_bytes = full.network.traffic.bytes_for_kinds(kinds)
        assert compact_bytes < full_bytes

    def test_cold_mempools_still_converge(self):
        """Without relay every tx is fetched — slower but correct."""
        deployment, runner = compact_deployment()
        report = runner.produce_blocks(4, txs_per_block=4)
        assert deployment.total_finalized_blocks() == 4
        # Everything was fetched (hit rate ~0 — only via txfill).
        assert deployment.compact_stats.transactions_fetched > 0

    def test_compact_ignored_in_non_collaborative_mode(self):
        deployment, runner = compact_deployment(
            verify_collaboratively=False
        )
        runner.produce_blocks(3, txs_per_block=3)
        assert deployment.total_finalized_blocks() == 3
        assert deployment.compact_stats.announcements == 0


class TestCompactPrimitives:
    def test_payload_size_formula(self):
        assert compact_payload_bytes(0) == 84
        assert compact_payload_bytes(10) == 84 + 320

    def test_pending_assembles_in_txid_order(self, ledger, chain_of_three):
        block = chain_of_three[0]
        pending = PendingCompact(
            header=block.header,
            txids=tuple(tx.txid for tx in block.transactions),
            origin=0,
        )
        for tx in reversed(block.transactions):
            pending.have[tx.txid] = tx
        assert not pending.missing
        rebuilt = pending.assemble()
        assert rebuilt.transactions == block.transactions
        assert rebuilt.verify_merkle_commitment()

    def test_missing_lists_unfilled(self, ledger, chain_of_three):
        block = chain_of_three[0]
        pending = PendingCompact(
            header=block.header,
            txids=tuple(tx.txid for tx in block.transactions),
            origin=0,
        )
        assert len(pending.missing) == len(block.transactions)

    def test_stats_hit_rate(self):
        stats = CompactStats()
        assert stats.hit_rate == 1.0
        stats.transactions_referenced = 10
        stats.transactions_fetched = 3
        assert stats.hit_rate == pytest.approx(0.7)

    def test_tampered_reconstruction_rejected(self, ledger, chain_of_three):
        """A body that doesn't match the header commitment is dropped."""
        block_a, block_b = chain_of_three[0], chain_of_three[1]
        pending = PendingCompact(
            header=block_a.header,
            txids=tuple(tx.txid for tx in block_a.transactions),
            origin=0,
        )
        for tx in block_a.transactions:
            pending.have[tx.txid] = tx
        # Swap one transaction for a foreign one with a forged key.
        forged = dict(pending.have)
        victim_txid = block_a.transactions[0].txid
        forged[victim_txid] = block_b.transactions[0]
        pending.have.clear()
        pending.have.update(forged)
        rebuilt = Block(
            header=pending.header,
            transactions=tuple(
                pending.have[txid] for txid in pending.txids
            ),
        )
        assert not rebuilt.verify_merkle_commitment()
