"""Property-based tests (hypothesis) for the DHT overlay's routing core.

Three batteries over :mod:`repro.dht`:

* **id space** — the XOR metric's identity/symmetry/unidirectionality
  and the bucket-index band structure every k-bucket decision rests on;
* **k-buckets** — LRU/eviction invariants of :class:`RoutingTable`
  under arbitrary interleavings of observations, evictions, and full
  buckets (``check_invariants`` after every step);
* **self-lookup convergence** — on random topologies where every node
  knows only a bounded random sample of its peers, the iterative
  closest-first search (the pure-data model of the engine's FIND_NODE
  walk) terminates and lands on the true ``k`` nearest keys.

``derandomize=True`` keeps CI deterministic; a bounded ``ci`` profile
is registered for the workflow's smoke step (``HYPOTHESIS_PROFILE=ci``),
matching ``tests/test_coded_properties.py``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.idspace import (
    ID_BITS,
    block_key,
    bucket_index,
    distance,
    node_key,
    sort_by_distance,
)
from repro.dht.records import ProviderStore
from repro.dht.routing import Contact, KBucket, RoutingTable

SETTINGS = settings(derandomize=True, max_examples=60, deadline=None)

settings.register_profile(
    "ci", derandomize=True, max_examples=25, deadline=None
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

keys = st.integers(min_value=0, max_value=(1 << ID_BITS) - 1)


# ----------------------------------------------------------------- id space
@SETTINGS
@given(keys, keys, keys)
def test_xor_metric_axioms(a, b, c):
    assert distance(a, a) == 0
    assert distance(a, b) == distance(b, a)
    if a != b:
        assert distance(a, b) > 0
    # XOR's defining relation: two legs compose to the third exactly.
    assert distance(a, b) ^ distance(b, c) == distance(a, c)


@SETTINGS
@given(keys, keys)
def test_xor_unidirectionality(target, d):
    # For any target and distance there is exactly one key at that
    # distance — the property that makes closest-first search converge.
    assert distance(target ^ d, target) == d


@SETTINGS
@given(keys, keys)
def test_bucket_index_bands(own, other):
    if own == other:
        with pytest.raises(ValueError):
            bucket_index(own, other)
        return
    index = bucket_index(own, other)
    assert 0 <= index < ID_BITS
    # The band property: the index is the distance's highest set bit,
    # so everything in bucket i is nearer than anything in bucket i+1.
    assert (1 << index) <= distance(own, other) < (1 << (index + 1))


@SETTINGS
@given(st.lists(keys, max_size=32), keys)
def test_sort_by_distance_orders(candidates, target):
    ordered = sort_by_distance(candidates, target)
    assert sorted(ordered) == sorted(candidates)
    dists = [distance(key, target) for key in ordered]
    assert dists == sorted(dists)


@SETTINGS
@given(st.integers(min_value=0, max_value=1 << 40))
def test_key_derivations_disjoint(n):
    # Node and block keys live in domain-separated halves of the same
    # id space: the same preimage never collides across domains.
    address = f"node-{n}".encode()
    assert node_key(address) != block_key(address)
    assert 0 <= node_key(address) < (1 << ID_BITS)


# ---------------------------------------------------------------- k-buckets
contact_ids = st.integers(min_value=0, max_value=199)


def _contact(node_id: int) -> Contact:
    return Contact(
        node_id=node_id, key=node_key(f"node-{node_id}".encode())
    )


@SETTINGS
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(
        st.tuples(st.booleans(), contact_ids), min_size=1, max_size=120
    ),
)
def test_routing_table_invariants_under_churn(k, ops):
    # Arbitrary interleavings of observe/evict keep every structural
    # invariant: bounded buckets, correct band filing, no duplicates,
    # never the owner.
    owner = _contact(1000)
    table = RoutingTable(owner.node_id, owner.key, k=k)
    for observe, node_id in ops:
        if observe:
            stale = table.update(_contact(node_id))
            if stale is not None:
                # A full band rejected the newcomer and nominated its
                # least-recently-seen head for a liveness probe.
                assert stale.node_id in table
                assert node_id == owner.node_id or node_id not in table
        else:
            table.remove(node_id)
        table.check_invariants()
    assert len(table) <= ID_BITS * k


@SETTINGS
@given(st.lists(contact_ids, min_size=1, max_size=60))
def test_kbucket_lru_discipline(observations):
    k = 4
    bucket = KBucket(k)
    for node_id in observations:
        contact = Contact(node_id=node_id, key=node_id)
        accepted = bucket.touch(contact)
        if accepted:
            # Most recently seen is always at the tail.
            assert bucket.entries[-1].node_id == node_id
        else:
            # Rejection happens only when full of *other* contacts —
            # Kademlia keeps the old, drops the new.
            assert bucket.full
            assert all(
                entry.node_id != node_id for entry in bucket.entries
            )
        assert len(bucket) <= k
    # Entries are unique and ordered oldest-first.
    ids = [entry.node_id for entry in bucket.entries]
    assert len(ids) == len(set(ids))


@SETTINGS
@given(st.lists(contact_ids, min_size=2, max_size=60, unique=True))
def test_update_full_bucket_keeps_head_until_removed(node_ids):
    # The probe-and-evict cycle: a full bucket's head survives until an
    # explicit remove, after which the once-rejected newcomer gets in.
    owner = _contact(1000)
    table = RoutingTable(owner.node_id, owner.key, k=1)
    rejected = None
    for node_id in node_ids:
        stale = table.update(_contact(node_id))
        if stale is not None:
            rejected = _contact(node_id)
            assert table.remove(stale.node_id)
            assert table.update(rejected) is None
            assert rejected.node_id in table
        table.check_invariants()


# ------------------------------------------------------------- convergence
@SETTINGS
@given(
    st.integers(min_value=10, max_value=64),
    st.randoms(use_true_random=False),
)
def test_self_lookup_converges_on_random_topologies(n_nodes, rng):
    # The pure-data model of the engine's iterative FIND_NODE: every
    # node observes every peer in a random order, so its table reaches
    # Kademlia's steady state — the near neighbourhood fully known
    # (near buckets hold few ids, never fill), far space capped at k
    # per band.  Querying ever-closer contacts and folding their
    # k-closest answers in must terminate at the true k nearest keys
    # to the target, never revisiting a peer.
    k = 4
    ids = list(range(n_nodes))
    contact_by_id = {i: _contact(i) for i in ids}
    tables: dict[int, RoutingTable] = {}
    for i in ids:
        own = contact_by_id[i]
        table = RoutingTable(own.node_id, own.key, k=k)
        order = ids[:]
        rng.shuffle(order)
        for peer in order:
            if peer != i:
                table.update(contact_by_id[peer])
        tables[i] = table

    requester = rng.choice(ids)
    target = contact_by_id[rng.choice(ids)].key
    known = {
        c.node_id: c.key for c in tables[requester].closest(target, k)
    }
    queried: set[int] = set()
    steps = 0
    while True:
        candidates = [
            nid
            for nid, key in sorted(
                known.items(), key=lambda item: distance(item[1], target)
            )
            if nid not in queried
        ][:k]
        if not candidates:
            break
        for nid in candidates:
            queried.add(nid)
            for c in tables[nid].closest(target, k):
                if c.node_id != requester:
                    known.setdefault(c.node_id, c.key)
        steps += 1
        assert steps <= n_nodes, "lookup failed to terminate"

    # The search found the true k nearest among all reachable keys.
    universe = [
        contact_by_id[i].key for i in ids if i != requester
    ]
    truth = set(sort_by_distance(universe, target)[:k])
    found = set(
        sort_by_distance(list(known.values()), target)[:k]
    )
    assert found == truth


# ----------------------------------------------------------------- records
@SETTINGS
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.lists(
                st.integers(min_value=0, max_value=30),
                min_size=1,
                max_size=4,
            ),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        max_size=40,
    )
)
def test_provider_store_expiry_monotone(puts):
    store = ProviderStore()
    ttl = 10.0
    now = 0.0
    for key, holders, at in puts:
        now = max(now, at)
        store.put(key, holders, now, ttl)
        # Unexpired records always include the just-put holders.
        assert set(holders) <= set(store.get(key, now))
    # Advancing past every TTL drains the store completely.
    dropped = store.expire(now + ttl + 1.0)
    assert dropped >= 0
    for key, _, _ in puts:
        assert store.get(key, now + ttl + 1.0) == ()
