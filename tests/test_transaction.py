"""Unit + property tests for transactions and their serialization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chain.transaction import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
    make_signed_transfer,
)
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import verify
from repro.errors import ValidationError


def outpoint(tag: bytes = b"prev", index: int = 0) -> OutPoint:
    return OutPoint(txid=sha256(tag), index=index)


class TestOutPoint:
    def test_serialize_roundtrip(self):
        op = outpoint(b"x", 7)
        assert OutPoint.deserialize(op.serialize()) == op

    def test_bad_txid_length(self):
        with pytest.raises(ValidationError):
            OutPoint(txid=b"short", index=0)

    def test_negative_index(self):
        with pytest.raises(ValidationError):
            OutPoint(txid=sha256(b"x"), index=-1)

    def test_deserialize_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            OutPoint.deserialize(b"\x00" * 35)


class TestTxOutput:
    def test_negative_value_rejected(self):
        with pytest.raises(ValidationError):
            TxOutput(value=-1, address=b"\x00" * 20)

    def test_bad_address_length_rejected(self):
        with pytest.raises(ValidationError):
            TxOutput(value=1, address=b"\x00" * 19)

    def test_size(self):
        assert TxOutput(value=1, address=b"\x00" * 20).size_bytes == 28


class TestTransactionBasics:
    def test_requires_an_output(self):
        with pytest.raises(ValidationError):
            Transaction(inputs=(), outputs=())

    def test_coinbase_detection(self):
        coinbase = make_coinbase(50, b"\x01" * 20, height=3)
        assert coinbase.is_coinbase
        transfer = Transaction(
            inputs=(TxInput(outpoint=outpoint()),),
            outputs=(TxOutput(value=1, address=b"\x02" * 20),),
        )
        assert not transfer.is_coinbase

    def test_coinbase_txids_unique_per_height(self):
        a = make_coinbase(50, b"\x01" * 20, height=1)
        b = make_coinbase(50, b"\x01" * 20, height=2)
        assert a.txid != b.txid

    def test_total_output_value(self):
        tx = Transaction(
            inputs=(),
            outputs=(
                TxOutput(value=3, address=b"\x01" * 20),
                TxOutput(value=4, address=b"\x02" * 20),
            ),
        )
        assert tx.total_output_value == 7

    def test_size_matches_serialization(self):
        tx = make_coinbase(50, b"\x01" * 20, height=9, extra=b"hello")
        assert tx.size_bytes == len(tx.serialize())

    def test_txid_changes_with_payload(self):
        a = make_coinbase(50, b"\x01" * 20, height=1, extra=b"a")
        b = make_coinbase(50, b"\x01" * 20, height=1, extra=b"b")
        assert a.txid != b.txid


class TestSerialization:
    def test_roundtrip_coinbase(self):
        tx = make_coinbase(50, b"\x01" * 20, height=12, extra=b"data")
        assert Transaction.deserialize(tx.serialize()) == tx

    def test_roundtrip_signed_transfer(self):
        sender = KeyPair.from_seed(0)
        tx = make_signed_transfer(
            sender,
            [(outpoint(), 100)],
            recipient_address=KeyPair.from_seed(1).address,
            amount=30,
        )
        restored = Transaction.deserialize(tx.serialize())
        assert restored == tx
        assert restored.txid == tx.txid

    def test_truncated_encoding_rejected(self):
        raw = make_coinbase(50, b"\x01" * 20, height=1).serialize()
        with pytest.raises(ValidationError):
            Transaction.deserialize(raw[:-2])

    def test_trailing_bytes_rejected(self):
        raw = make_coinbase(50, b"\x01" * 20, height=1).serialize()
        with pytest.raises(ValidationError):
            Transaction.deserialize(raw + b"\x00")

    @given(
        st.integers(0, 2**32 - 1),
        st.binary(max_size=200),
        st.integers(1, 2**40),
    )
    def test_roundtrip_property(self, lock_height, payload, value):
        tx = Transaction(
            inputs=(),
            outputs=(TxOutput(value=value, address=b"\x07" * 20),),
            payload=payload,
            lock_height=lock_height,
        )
        assert Transaction.deserialize(tx.serialize()) == tx


class TestSignedTransfer:
    def test_signature_covers_digest(self):
        sender = KeyPair.from_seed(0)
        tx = make_signed_transfer(
            sender,
            [(outpoint(), 100)],
            recipient_address=KeyPair.from_seed(1).address,
            amount=40,
        )
        assert verify(
            sender.public_key, tx.signing_digest, tx.inputs[0].signature
        )

    def test_change_returns_to_sender(self):
        sender = KeyPair.from_seed(0)
        recipient = KeyPair.from_seed(1)
        tx = make_signed_transfer(
            sender, [(outpoint(), 100)], recipient.address, amount=40
        )
        assert tx.outputs[0].value == 40
        assert tx.outputs[0].address == recipient.address
        assert tx.outputs[1].value == 60
        assert tx.outputs[1].address == sender.address

    def test_exact_spend_has_no_change(self):
        sender = KeyPair.from_seed(0)
        tx = make_signed_transfer(
            sender,
            [(outpoint(), 100)],
            KeyPair.from_seed(1).address,
            amount=100,
        )
        assert len(tx.outputs) == 1

    def test_consumes_outputs_front_to_back(self):
        sender = KeyPair.from_seed(0)
        spendable = [(outpoint(b"a"), 30), (outpoint(b"b"), 30), (outpoint(b"c"), 30)]
        tx = make_signed_transfer(
            sender, spendable, KeyPair.from_seed(1).address, amount=50
        )
        assert len(tx.inputs) == 2  # 30 + 30 covers 50

    def test_insufficient_funds_raises(self):
        sender = KeyPair.from_seed(0)
        with pytest.raises(ValidationError):
            make_signed_transfer(
                sender,
                [(outpoint(), 10)],
                KeyPair.from_seed(1).address,
                amount=11,
            )

    def test_non_positive_amount_raises(self):
        sender = KeyPair.from_seed(0)
        with pytest.raises(ValidationError):
            make_signed_transfer(
                sender, [(outpoint(), 10)], b"\x01" * 20, amount=0
            )

    def test_signing_digest_excludes_signature(self):
        """Digest must be identical pre- and post-signing."""
        sender = KeyPair.from_seed(0)
        tx = make_signed_transfer(
            sender, [(outpoint(), 100)], b"\x01" * 20, amount=10
        )
        unsigned = Transaction(
            inputs=tuple(
                TxInput(outpoint=i.outpoint) for i in tx.inputs
            ),
            outputs=tx.outputs,
            payload=tx.payload,
            lock_height=tx.lock_height,
        )
        assert unsigned.signing_digest == tx.signing_digest
