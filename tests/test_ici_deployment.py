"""Integration tests for the ICIStrategy deployment."""

from __future__ import annotations

import pytest

from repro.chain.block import build_block
from repro.chain.transaction import make_coinbase
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deploy(n_nodes=16, **config_kwargs) -> ICIDeployment:
    config_kwargs.setdefault("n_clusters", 4)
    config_kwargs.setdefault("replication", 1)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    return ICIDeployment(n_nodes, config=ICIConfig(**config_kwargs))


def run_blocks(deployment, n_blocks=4, txs=3):
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    return runner.produce_blocks(n_blocks, txs_per_block=txs), runner


class TestConfig:
    def test_validates_against_population(self):
        with pytest.raises(ConfigurationError):
            ICIConfig(n_clusters=10).validate_for(5)
        with pytest.raises(ConfigurationError):
            ICIConfig(n_clusters=2, replication=9).validate_for(10)

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            ICIConfig(placement="bogus")
        with pytest.raises(ConfigurationError):
            ICIConfig(clustering="bogus")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ConfigurationError):
            ICIConfig(n_clusters=0)
        with pytest.raises(ConfigurationError):
            ICIConfig(replication=0)
        with pytest.raises(ConfigurationError):
            ICIConfig(state_snapshot_bytes=-1)


class TestDissemination:
    def test_every_cluster_finalizes_every_block(self):
        deployment = deploy()
        report, _ = run_blocks(deployment, n_blocks=5)
        assert deployment.total_finalized_blocks() == 5
        for view in deployment.clusters.views():
            for block_hash in report.block_hashes:
                assert (
                    block_hash,
                    view.cluster_id,
                ) in deployment.metrics.cluster_finalized_at

    def test_intra_cluster_integrity_invariant(self):
        """Each cluster collectively holds the entire ledger."""
        deployment = deploy()
        run_blocks(deployment, n_blocks=6)
        for view in deployment.clusters.views():
            assert deployment.cluster_holds_full_ledger(view.cluster_id)

    def test_every_node_has_every_header(self):
        deployment = deploy()
        report, _ = run_blocks(deployment, n_blocks=4)
        for node in deployment.nodes.values():
            assert node.store.header_count == 5  # genesis + 4

    def test_only_holders_keep_bodies(self):
        deployment = deploy()
        report, _ = run_blocks(deployment, n_blocks=4)
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            for view in deployment.clusters.views():
                holders = set(
                    deployment.holders_in_cluster(header, view.cluster_id)
                )
                for member in view.members:
                    has = deployment.nodes[member].store.has_body(block_hash)
                    assert has == (member in holders)

    def test_replication_factor_respected(self):
        deployment = deploy(replication=2)
        report, _ = run_blocks(deployment, n_blocks=4)
        for block_hash in report.block_hashes:
            header = deployment.ledger.store.header(block_hash)
            for view in deployment.clusters.views():
                holders = deployment.holders_in_cluster(
                    header, view.cluster_id
                )
                assert len(holders) == 2
                copies = sum(
                    deployment.nodes[m].store.has_body(block_hash)
                    for m in view.members
                )
                assert copies == 2

    def test_per_node_storage_below_full_ledger(self):
        deployment = deploy()
        report, _ = run_blocks(deployment, n_blocks=6)
        ledger_bytes = deployment.ledger.store.stored_bytes
        storage = deployment.storage_report()
        assert storage.max_node_bytes < ledger_bytes

    def test_finalize_latency_recorded(self):
        deployment = deploy()
        report, _ = run_blocks(deployment, n_blocks=2)
        for block_hash in report.block_hashes:
            latency = deployment.metrics.finalize_latency(
                block_hash, deployment.clusters.cluster_count
            )
            assert latency is not None and latency > 0

    def test_unknown_proposer_rejected(self, genesis):
        deployment = deploy()
        block = build_block(
            height=1,
            prev_hash=deployment.ledger.tip.block_hash,
            transactions=[make_coinbase(1, b"\x01" * 20, 1)],
            timestamp=1.0,
        )
        from repro.errors import UnknownBlockError

        with pytest.raises(UnknownBlockError):
            deployment.disseminate(block, proposer_id=999)


class TestInvalidBlockHandling:
    def test_invalid_block_rejected_by_clusters(self):
        deployment = deploy()
        greedy = build_block(
            height=1,
            prev_hash=deployment.ledger.tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward * 100, b"\x01" * 20, 1
                )
            ],
            timestamp=1.0,
        )
        deployment.disseminate(greedy, proposer_id=0)
        deployment.run()
        assert greedy.block_hash in deployment.metrics.blocks_rejected
        # Nobody retains the invalid body.
        for node in deployment.nodes.values():
            assert not node.store.has_body(greedy.block_hash)
        # The canonical ledger did not apply it.
        assert deployment.ledger.height == 0


class TestAblations:
    def test_broadcast_votes_mode_finalizes(self):
        deployment = deploy(aggregate_votes=False)
        run_blocks(deployment, n_blocks=3)
        assert deployment.total_finalized_blocks() == 3

    def test_broadcast_votes_costs_more_traffic(self):
        agg = deploy(aggregate_votes=True)
        run_blocks(agg, n_blocks=3)
        broadcast = deploy(aggregate_votes=False)
        run_blocks(broadcast, n_blocks=3)
        assert (
            broadcast.network.traffic.total_messages
            > agg.network.traffic.total_messages
        )

    def test_non_collaborative_mode_finalizes(self):
        deployment = deploy(verify_collaboratively=False)
        run_blocks(deployment, n_blocks=3)
        assert deployment.total_finalized_blocks() == 3

    def test_non_collaborative_validates_everywhere(self):
        collab = deploy(verify_collaboratively=True)
        run_blocks(collab, n_blocks=3)
        solo = deploy(verify_collaboratively=False)
        run_blocks(solo, n_blocks=3)
        assert (
            solo.metrics.costs.full_validations
            > collab.metrics.costs.full_validations
        )

    def test_no_pruning_keeps_fetched_bodies(self):
        deployment = deploy(
            verify_collaboratively=False, prune_after_verify=False
        )
        report, _ = run_blocks(deployment, n_blocks=3)
        # In fan-out mode without pruning every member retains every body.
        for block_hash in report.block_hashes:
            copies = sum(
                node.store.has_body(block_hash)
                for node in deployment.nodes.values()
            )
            assert copies == len(deployment.nodes)

    def test_placement_policies_all_work(self):
        for placement in ("hash", "modulo", "round_robin", "capacity"):
            deployment = deploy(placement=placement)
            run_blocks(deployment, n_blocks=2)
            assert deployment.total_finalized_blocks() == 2

    def test_capacity_weights_skew_storage(self):
        deployment = deploy(
            n_nodes=8,
            n_clusters=1,
            placement="capacity",
            node_capacities={0: 8.0},
        )
        run_blocks(deployment, n_blocks=24, txs=2)
        counts = {
            node_id: node.store.body_count
            for node_id, node in deployment.nodes.items()
        }
        mean_others = sum(
            count for node_id, count in counts.items() if node_id != 0
        ) / 7
        assert counts[0] > mean_others

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ICIConfig(placement="capacity", node_capacities={0: 0.0})

    def test_coordinate_clusterings_work(self):
        from repro.clustering.coordinates import place_regions
        from repro.net.latency import CoordinateLatency
        from repro.net.network import Network

        for clustering in ("kmeans", "latency"):
            coordinates = place_regions(16, n_regions=4, seed=1)
            network = Network(latency=CoordinateLatency(coordinates))
            deployment = ICIDeployment(
                16,
                config=ICIConfig(
                    n_clusters=4,
                    clustering=clustering,
                    limits=TEST_LIMITS,
                ),
                network=network,
                coordinates=coordinates,
            )
            run_blocks(deployment, n_blocks=2)
            assert deployment.total_finalized_blocks() == 2

    def test_coordinate_clustering_without_coordinates_rejected(self):
        with pytest.raises(ConfigurationError):
            ICIDeployment(
                8,
                config=ICIConfig(
                    n_clusters=2, clustering="kmeans", limits=TEST_LIMITS
                ),
            )


class TestFaultTolerance:
    def test_finalization_survives_minority_crash(self):
        """< 1/3 of each cluster offline: blocks still finalize."""
        deployment = deploy(n_nodes=16, n_clusters=2)  # clusters of 8
        # Crash one non-aggregating member per cluster (quorum 6 of 8).
        for view in deployment.clusters.views():
            deployment.network.set_online(view.members[-1], False)
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks(2, txs_per_block=2)
        assert deployment.total_finalized_blocks() >= 1

    def test_offline_proposer_blocks_nothing(self):
        deployment = deploy()
        deployment.network.set_online(0, False)
        block = build_block(
            height=1,
            prev_hash=deployment.ledger.tip.block_hash,
            transactions=[
                make_coinbase(TEST_LIMITS.block_reward, b"\x01" * 20, 1)
            ],
            timestamp=1.0,
        )
        deployment.disseminate(block, proposer_id=0)
        deployment.run()
        assert deployment.total_finalized_blocks() == 0
