"""Endurance runs: sustained churn under hostile weather, then self-heal.

:func:`repro.sim.chaos.run_endurance` composes every robustness layer at
once — message faults, a crash, a partition window, and a churn schedule
during production — then turns the anti-entropy sweep loose and audits.
These tests pin the acceptance scenario (integrity restored, repairs
actually happened, byte-identical reruns) and a golden signature so any
behavioural drift in the composed stack fails loudly and bisectably
(``repro trace diff`` localizes the first divergent event).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.chaos import EnduranceConfig, EnduranceOutcome, run_endurance
from tests.conftest import TEST_LIMITS

#: The quick fixed-seed scenario the golden pin freezes.
GOLDEN_CONFIG = dict(seed=42, n_nodes=15, n_clusters=3, n_blocks=6, queries=4)

#: sha256 of the canonical-JSON signature of the golden run.  A change
#: here means the composed churn/fault/repair behaviour changed: verify
#: it is intentional (``repro trace diff`` two exported traces to find
#: the first divergent event), then update the pin.
GOLDEN_SIGNATURE_SHA = (
    "40b368e004932f6e0a62da2bc5e38054aa183e9efa3906dcad59a9c5fb82cf06"
)


def endurance(**kwargs) -> EnduranceOutcome:
    defaults = dict(GOLDEN_CONFIG)
    defaults.update(kwargs)
    return run_endurance(EnduranceConfig(**defaults), limits=TEST_LIMITS)


class TestAcceptance:
    def test_integrity_restored_with_real_repairs(self):
        """The PR's acceptance pin: 20% drop (the default), a crash, a
        partition window, sustained churn — and a healed end state that
        the sweep, not luck, produced."""
        outcome = endurance()
        assert outcome.integrity_restored, outcome.cluster_integrity
        assert outcome.replica_floor_met
        assert outcome.repair["blocks_re_replicated"] > 0
        assert outcome.repair["sweeps"] > 0
        assert outcome.blocks_produced == 6
        assert outcome.joins + outcome.leaves + outcome.churn_crashes > 0
        assert outcome.queries_completed == outcome.queries_attempted

    def test_repair_latency_is_measured(self):
        outcome = endurance()
        assert outcome.time_to_repair  # p50/p95 in virtual seconds
        assert outcome.time_to_repair["p50"] >= 0.0
        assert (
            outcome.time_to_repair["p95"] >= outcome.time_to_repair["p50"]
        )


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        first = endurance()
        second = endurance()
        assert first.signature() == second.signature()
        assert first.repair == second.repair
        assert first.time_to_repair == second.time_to_repair

    def test_different_seeds_diverge(self):
        assert endurance(seed=1).signature() != endurance(
            seed=2
        ).signature()

    def test_golden_signature(self):
        """Byte-exact pin of the golden run's determinism fingerprint."""
        signature = endurance().signature()
        blob = json.dumps(signature, sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()
        assert digest == GOLDEN_SIGNATURE_SHA, signature


class TestEnduranceConfig:
    def test_rejects_degenerate_runs(self):
        with pytest.raises(ConfigurationError):
            EnduranceConfig(n_blocks=1)
        with pytest.raises(ConfigurationError):
            EnduranceConfig(repair_cadence=0.0)
        with pytest.raises(ConfigurationError):
            EnduranceConfig(crash_count=-1)
        with pytest.raises(ConfigurationError):
            EnduranceConfig(max_heal_rounds=0)


class TestEnduranceTrace:
    def test_trace_carries_repair_story_and_counters(self):
        from repro.obs.export import to_chrome_trace, validate_chrome_trace
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        outcome = run_endurance(
            EnduranceConfig(**GOLDEN_CONFIG),
            limits=TEST_LIMITS,
            tracer=tracer,
        )
        assert outcome.tracer is tracer
        payload = to_chrome_trace(tracer, label="endurance test")
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        repair_names = {
            e["name"] for e in events if e.get("cat") == "repair"
        }
        assert "repair_sweep" in repair_names
        assert "under_replicated" in repair_names
        assert "re_replicated" in repair_names
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # per-cluster ledger-bytes series
        assert all("ledger bytes" in e["name"] for e in counters)
        assert all(
            isinstance(v, (int, float))
            for e in counters
            for v in e["args"].values()
        )

    def test_tracing_does_not_change_the_story(self):
        from repro.obs.tracer import Tracer

        bare = endurance()
        traced = run_endurance(
            EnduranceConfig(**GOLDEN_CONFIG),
            limits=TEST_LIMITS,
            tracer=Tracer(),
        )
        assert bare.signature() == traced.signature()


class TestEnduranceReport:
    def test_summary_renders_repair_stats(self):
        from repro.analysis.report import render_endurance_summary

        outcome = endurance()
        summary = render_endurance_summary(outcome)
        assert "cluster integrity: restored" in summary
        assert "## Anti-entropy repair" in summary
        assert "blocks re-replicated" in summary
        assert "time-to-repair p50/p95" in summary
        assert "## Fault interception" in summary
        assert "## Protocol recovery" in summary
        assert "replication floor met" in summary


class TestEnduranceCli:
    def test_cli_runs_reports_and_traces(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "endurance.md"
        trace = tmp_path / "endurance-trace.json"
        code = main(
            [
                "endurance",
                "--seed", "42",
                "--nodes", "15",
                "--groups", "3",
                "--blocks", "6",
                "--report", str(report),
                "--trace", str(trace),
            ]
        )
        assert code == 0  # integrity restored
        out = capsys.readouterr().out
        assert "cluster integrity: restored" in out
        assert "## Anti-entropy repair" in out
        assert "cluster integrity: restored" in report.read_text()

        from repro.obs.export import validate_chrome_trace

        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) == []
        assert any(e["ph"] == "C" for e in payload["traceEvents"])
