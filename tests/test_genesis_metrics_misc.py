"""Coverage for genesis construction, deployment metrics, and errors."""

from __future__ import annotations

import pytest

from repro.chain.genesis import (
    DEFAULT_FAUCET_VALUE,
    GENESIS_TIMESTAMP,
    make_genesis,
)
from repro.core.metrics import (
    BootstrapReport,
    DepartureReport,
    DeploymentMetrics,
    QueryRecord,
)
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import (
    ChainError,
    ConfigurationError,
    CryptoError,
    NetworkError,
    ReproError,
    StorageError,
    ValidationError,
)


class TestGenesis:
    def test_deterministic(self):
        faucets = [KeyPair.from_seed(0).address]
        assert (
            make_genesis(faucets).block_hash
            == make_genesis(faucets).block_hash
        )

    def test_different_faucets_different_hash(self):
        a = make_genesis([KeyPair.from_seed(0).address])
        b = make_genesis([KeyPair.from_seed(1).address])
        assert a.block_hash != b.block_hash

    def test_supply_distribution(self):
        faucets = [KeyPair.from_seed(i).address for i in range(4)]
        genesis = make_genesis(faucets, faucet_value=1000)
        coinbase = genesis.transactions[0]
        assert coinbase.total_output_value == 4000
        assert {out.address for out in coinbase.outputs} == set(faucets)

    def test_header_shape(self):
        genesis = make_genesis([KeyPair.from_seed(0).address])
        assert genesis.header.is_genesis
        assert genesis.header.timestamp == GENESIS_TIMESTAMP
        assert genesis.verify_merkle_commitment()

    def test_no_faucets_rejected(self):
        with pytest.raises(ConfigurationError):
            make_genesis([])

    def test_default_value_positive(self):
        assert DEFAULT_FAUCET_VALUE > 0


class TestDeploymentMetrics:
    def test_finalize_latency_requires_all_clusters(self):
        metrics = DeploymentMetrics()
        block_hash = sha256(b"b")
        metrics.record_submit(block_hash, 1.0)
        metrics.record_cluster_final(block_hash, 0, 2.0)
        assert metrics.finalize_latency(block_hash, n_clusters=2) is None
        metrics.record_cluster_final(block_hash, 1, 3.5)
        assert metrics.finalize_latency(block_hash, 2) == pytest.approx(2.5)

    def test_first_cluster_latency(self):
        metrics = DeploymentMetrics()
        block_hash = sha256(b"b")
        metrics.record_submit(block_hash, 1.0)
        assert metrics.first_cluster_latency(block_hash) is None
        metrics.record_cluster_final(block_hash, 3, 1.7)
        metrics.record_cluster_final(block_hash, 1, 2.9)
        assert metrics.first_cluster_latency(block_hash) == pytest.approx(
            0.7
        )

    def test_unknown_block_latency_none(self):
        metrics = DeploymentMetrics()
        assert metrics.finalize_latency(sha256(b"x"), 1) is None
        assert metrics.first_cluster_latency(sha256(b"x")) is None

    def test_records_are_first_write_wins(self):
        metrics = DeploymentMetrics()
        block_hash = sha256(b"b")
        metrics.record_submit(block_hash, 1.0)
        metrics.record_submit(block_hash, 9.0)
        assert metrics.block_submitted_at[block_hash] == 1.0
        metrics.record_cluster_final(block_hash, 0, 2.0)
        metrics.record_cluster_final(block_hash, 0, 8.0)
        assert metrics.cluster_finalized_at[(block_hash, 0)] == 2.0

    def test_query_latency_aggregation(self):
        metrics = DeploymentMetrics()
        assert metrics.mean_query_latency() is None
        metrics.queries.append(
            QueryRecord(1, 0, sha256(b"a"), started_at=0.0, completed_at=0.4)
        )
        metrics.queries.append(
            QueryRecord(2, 0, sha256(b"b"), started_at=0.0)  # pending
        )
        assert metrics.completed_query_latencies() == [0.4]
        assert metrics.mean_query_latency() == pytest.approx(0.4)


class TestReportObjects:
    def test_bootstrap_report_totals(self):
        report = BootstrapReport(
            node_id=1,
            cluster_id=0,
            started_at=1.0,
            header_bytes=84,
            body_bytes=1000,
            snapshot_bytes=50,
        )
        assert report.total_bytes == 1134
        assert not report.complete
        assert report.duration is None
        report.completed_at = 3.0
        assert report.duration == 2.0
        assert report.complete

    def test_departure_report_duration(self):
        report = DepartureReport(
            node_id=2, cluster_id=1, started_at=5.0, graceful=False
        )
        assert report.duration is None
        report.completed_at = 6.5
        assert report.duration == 1.5

    def test_query_record_latency(self):
        record = QueryRecord(1, 0, sha256(b"a"), started_at=2.0)
        assert record.latency is None
        record.completed_at = 2.25
        assert record.latency == pytest.approx(0.25)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [ChainError, CryptoError, NetworkError, StorageError,
         ConfigurationError, ValidationError],
    )
    def test_all_errors_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_validation_error_is_chain_error(self):
        assert issubclass(ValidationError, ChainError)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise ValidationError("boom")
