"""Unit tests for consensus-rule validation."""

from __future__ import annotations

import pytest

from repro.chain.block import Block, build_block
from repro.chain.transaction import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
    make_signed_transfer,
)
from repro.chain.validation import (
    ValidationLimits,
    check_block_stateless,
    check_header_linkage,
    check_transaction_stateful,
    check_transaction_stateless,
    estimate_verification_cost,
    header_check_cost,
    validate_block,
    verify_merkle_path_cost,
)
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import sign
from repro.errors import ValidationError
from tests.conftest import TEST_LIMITS, make_transfer_block


def signed_transfer(sender: KeyPair, value: int = 100, amount: int = 40):
    return make_signed_transfer(
        sender,
        [(OutPoint(txid=sha256(b"prev"), index=0), value)],
        KeyPair.from_seed(99).address,
        amount=amount,
    )


class TestStatelessTx:
    def test_valid_transfer_passes(self, alice):
        check_transaction_stateless(signed_transfer(alice))

    def test_oversize_rejected(self, alice):
        limits = ValidationLimits(max_tx_bytes=64)
        with pytest.raises(ValidationError, match="exceeds cap"):
            check_transaction_stateless(signed_transfer(alice), limits)

    def test_duplicate_outpoint_rejected(self, alice):
        op = OutPoint(txid=sha256(b"p"), index=0)
        tx = Transaction(
            inputs=(TxInput(outpoint=op), TxInput(outpoint=op)),
            outputs=(TxOutput(value=1, address=alice.address),),
        )
        with pytest.raises(ValidationError, match="twice"):
            check_transaction_stateless(tx)

    def test_missing_witness_rejected(self, alice):
        tx = Transaction(
            inputs=(TxInput(outpoint=OutPoint(txid=sha256(b"p"), index=0)),),
            outputs=(TxOutput(value=1, address=alice.address),),
        )
        with pytest.raises(ValidationError, match="witness"):
            check_transaction_stateless(tx)

    def test_bad_signature_rejected(self, alice, bob):
        tx = signed_transfer(alice)
        forged_inputs = tuple(
            TxInput(
                outpoint=inp.outpoint,
                public_key=inp.public_key,
                signature=sign(bob, b"unrelated"),
            )
            for inp in tx.inputs
        )
        forged = Transaction(
            inputs=forged_inputs,
            outputs=tx.outputs,
            payload=tx.payload,
            lock_height=tx.lock_height,
        )
        with pytest.raises(ValidationError, match="signature"):
            check_transaction_stateless(forged)


class TestHeaderLinkage:
    def test_valid_linkage(self, genesis):
        child = build_block(
            height=1,
            prev_hash=genesis.block_hash,
            transactions=[make_coinbase(50, b"\x01" * 20, height=1)],
            timestamp=genesis.header.timestamp + 1,
        )
        check_header_linkage(child.header, genesis.header)

    def test_wrong_height(self, genesis):
        child = build_block(
            height=2,
            prev_hash=genesis.block_hash,
            transactions=[make_coinbase(50, b"\x01" * 20, height=2)],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError, match="height"):
            check_header_linkage(child.header, genesis.header)

    def test_wrong_parent_hash(self, genesis):
        child = build_block(
            height=1,
            prev_hash=sha256(b"other"),
            transactions=[make_coinbase(50, b"\x01" * 20, height=1)],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError, match="prev_hash"):
            check_header_linkage(child.header, genesis.header)

    def test_backwards_timestamp(self, genesis):
        child = build_block(
            height=1,
            prev_hash=genesis.block_hash,
            transactions=[make_coinbase(50, b"\x01" * 20, height=1)],
            timestamp=genesis.header.timestamp - 1,
        )
        with pytest.raises(ValidationError, match="timestamp"):
            check_header_linkage(child.header, genesis.header)


class TestStatelessBlock:
    def test_empty_block_rejected(self, genesis):
        headerless = Block(header=genesis.header, transactions=())
        with pytest.raises(ValidationError, match="coinbase"):
            check_block_stateless(headerless)

    def test_first_tx_must_be_coinbase(self, alice):
        block = build_block(
            height=1,
            prev_hash=sha256(b"p"),
            transactions=[signed_transfer(alice)],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError, match="coinbase"):
            check_block_stateless(block)

    def test_second_coinbase_rejected(self):
        block = build_block(
            height=1,
            prev_hash=sha256(b"p"),
            transactions=[
                make_coinbase(50, b"\x01" * 20, height=1),
                make_coinbase(50, b"\x02" * 20, height=1),
            ],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError, match="position 0"):
            check_block_stateless(block)

    def test_oversize_body_rejected(self):
        limits = ValidationLimits(max_block_body_bytes=100)
        block = build_block(
            height=1,
            prev_hash=sha256(b"p"),
            transactions=[
                make_coinbase(50, b"\x01" * 20, height=1, extra=b"x" * 200)
            ],
            timestamp=1.0,
        )
        with pytest.raises(ValidationError, match="body"):
            check_block_stateless(block, limits)

    def test_merkle_mismatch_rejected(self, genesis):
        block = build_block(
            height=1,
            prev_hash=sha256(b"p"),
            transactions=[make_coinbase(50, b"\x01" * 20, height=1)],
            timestamp=1.0,
        )
        tampered = Block(
            header=block.header,
            transactions=(
                make_coinbase(50, b"\x02" * 20, height=1),
            ),
        )
        with pytest.raises(ValidationError, match="merkle"):
            check_block_stateless(tampered)


class TestStatefulValidation:
    def test_transfer_block_validates(self, ledger, alice, bob):
        block = make_transfer_block(ledger, alice, bob, 500)
        validate_block(
            block, ledger.tip, ledger.utxos, TEST_LIMITS
        )

    def test_fee_computed(self, ledger, alice):
        spendable = ledger.utxos.outpoints_of(alice.address)
        tx = make_signed_transfer(
            alice, spendable, KeyPair.from_seed(5).address, amount=100
        )
        assert check_transaction_stateful(tx, ledger.utxos) == 0

    def test_unknown_input_rejected(self, ledger, alice):
        tx = signed_transfer(alice)
        with pytest.raises(ValidationError, match="unknown"):
            check_transaction_stateful(tx, ledger.utxos)

    def test_stolen_output_rejected(self, ledger, alice, bob):
        """bob signs a spend of alice's output: ownership check fires."""
        spendable = ledger.utxos.outpoints_of(alice.address)
        tx = make_signed_transfer(
            bob,
            spendable,  # alice's outpoints, bob's signature/key
            KeyPair.from_seed(5).address,
            amount=10,
        )
        with pytest.raises(ValidationError, match="own"):
            check_transaction_stateful(tx, ledger.utxos)

    def test_excess_coinbase_rejected(self, ledger, alice, bob):
        block = make_transfer_block(ledger, alice, bob, 500)
        greedy_coinbase = make_coinbase(
            TEST_LIMITS.block_reward * 2,
            alice.address,
            height=block.height,
        )
        greedy = build_block(
            height=block.height,
            prev_hash=block.header.prev_hash,
            transactions=[greedy_coinbase, *block.transactions[1:]],
            timestamp=block.header.timestamp,
        )
        with pytest.raises(ValidationError, match="coinbase claims"):
            validate_block(greedy, ledger.tip, ledger.utxos, TEST_LIMITS)

    def test_intra_block_spend_allowed(self, ledger, alice, bob):
        """tx2 spending tx1's output inside one block is valid."""
        spendable = ledger.utxos.outpoints_of(alice.address)
        tx1 = make_signed_transfer(
            alice, spendable, bob.address, amount=1_000
        )
        tx2 = make_signed_transfer(
            bob,
            [(OutPoint(txid=tx1.txid, index=0), 1_000)],
            alice.address,
            amount=600,
        )
        height = ledger.height + 1
        block = build_block(
            height=height,
            prev_hash=ledger.tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward, alice.address, height
                ),
                tx1,
                tx2,
            ],
            timestamp=ledger.tip.timestamp + 1,
        )
        validate_block(block, ledger.tip, ledger.utxos, TEST_LIMITS)

    def test_intra_block_double_spend_rejected(self, ledger, alice, bob):
        spendable = ledger.utxos.outpoints_of(alice.address)
        tx1 = make_signed_transfer(alice, spendable, bob.address, amount=10)
        tx2 = make_signed_transfer(alice, spendable, bob.address, amount=20)
        height = ledger.height + 1
        block = build_block(
            height=height,
            prev_hash=ledger.tip.block_hash,
            transactions=[
                make_coinbase(
                    TEST_LIMITS.block_reward, alice.address, height
                ),
                tx1,
                tx2,
            ],
            timestamp=ledger.tip.timestamp + 1,
        )
        with pytest.raises(ValidationError, match="double-spend"):
            validate_block(block, ledger.tip, ledger.utxos, TEST_LIMITS)

    def test_genesis_with_parent_context(self, genesis):
        from repro.chain.utxo import UtxoSet

        validate_block(genesis, None, UtxoSet())

    def test_non_genesis_without_parent_rejected(self, ledger, alice, bob):
        from repro.chain.utxo import UtxoSet

        block = make_transfer_block(ledger, alice, bob, 10)
        with pytest.raises(ValidationError, match="no parent"):
            validate_block(block, None, UtxoSet())


class TestCostModel:
    def test_verification_cost_scales_with_signatures(self, ledger, alice, bob):
        small = make_transfer_block(ledger, alice, bob, 10)
        assert estimate_verification_cost(small) > 0

    def test_header_check_is_cheaper_than_body(self, ledger, alice, bob):
        block = make_transfer_block(ledger, alice, bob, 10)
        assert header_check_cost() < estimate_verification_cost(block)

    def test_merkle_path_cost_monotonic(self):
        assert verify_merkle_path_cost(10) > verify_merkle_path_cost(2)
