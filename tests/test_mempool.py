"""Unit tests for the mempool."""

from __future__ import annotations

import pytest

from repro.chain.mempool import Mempool
from repro.chain.transaction import make_coinbase, make_signed_transfer
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.errors import UnknownTransactionError, ValidationError
from tests.conftest import TEST_LIMITS


@pytest.fixture
def pool() -> Mempool:
    return Mempool(limits=TEST_LIMITS)


def transfer_from(ledger, sender, amount=100, payload=b""):
    return make_signed_transfer(
        sender,
        ledger.utxos.outpoints_of(sender.address),
        KeyPair.from_seed(50).address,
        amount=amount,
        payload=payload,
    )


class TestAdmission:
    def test_valid_transfer_admitted(self, pool, ledger, alice):
        tx = transfer_from(ledger, alice)
        assert pool.add(tx, ledger.utxos)
        assert tx.txid in pool
        assert pool.get(tx.txid) == tx
        assert len(pool) == 1

    def test_duplicate_returns_false(self, pool, ledger, alice):
        tx = transfer_from(ledger, alice)
        pool.add(tx, ledger.utxos)
        assert not pool.add(tx, ledger.utxos)

    def test_coinbase_rejected(self, pool, ledger):
        with pytest.raises(ValidationError, match="coinbase"):
            pool.add(make_coinbase(1, b"\x01" * 20, 1), ledger.utxos)

    def test_conflicting_spend_rejected(self, pool, ledger, alice):
        tx1 = transfer_from(ledger, alice, amount=100)
        tx2 = transfer_from(ledger, alice, amount=200)
        pool.add(tx1, ledger.utxos)
        with pytest.raises(ValidationError, match="conflict"):
            pool.add(tx2, ledger.utxos)

    def test_unknown_inputs_rejected(self, pool, ledger, bob):
        from repro.chain.transaction import OutPoint

        tx = make_signed_transfer(
            bob,
            [(OutPoint(txid=sha256(b"ghost"), index=0), 500)],
            KeyPair.from_seed(50).address,
            amount=100,
        )
        with pytest.raises(ValidationError):
            pool.add(tx, ledger.utxos)

    def test_pool_capacity_enforced(self, ledger, alice):
        pool = Mempool(limits=TEST_LIMITS, max_transactions=1)
        pool.add(transfer_from(ledger, alice), ledger.utxos)
        other = make_signed_transfer(
            alice,
            ledger.utxos.outpoints_of(alice.address),
            KeyPair.from_seed(51).address,
            amount=77,
            payload=b"different",
        )
        with pytest.raises(ValidationError):
            pool.add(other, ledger.utxos)

    def test_get_unknown_raises(self, pool):
        with pytest.raises(UnknownTransactionError):
            pool.get(sha256(b"missing"))


class TestRemoval:
    def test_remove_frees_outpoints(self, pool, ledger, alice):
        tx1 = transfer_from(ledger, alice, amount=100)
        pool.add(tx1, ledger.utxos)
        assert pool.remove(tx1.txid)
        # The same outputs can now be re-offered.
        tx2 = transfer_from(ledger, alice, amount=200)
        assert pool.add(tx2, ledger.utxos)

    def test_remove_missing_returns_false(self, pool):
        assert not pool.remove(sha256(b"missing"))

    def test_remove_confirmed_evicts_conflicts(self, pool, ledger, alice):
        pooled = transfer_from(ledger, alice, amount=100)
        pool.add(pooled, ledger.utxos)
        # A *different* transaction spending the same outputs confirms.
        confirmed = transfer_from(ledger, alice, amount=333)
        removed = pool.remove_confirmed([confirmed])
        assert removed == 1
        assert pooled.txid not in pool


class TestSelection:
    def test_selection_respects_byte_budget(self, pool, ledger, alice, bob):
        # Fund bob so two independent transfers exist.
        from tests.conftest import make_transfer_block

        block = make_transfer_block(ledger, alice, bob, 10_000)
        ledger.accept_block(block)
        tx_a = transfer_from(ledger, alice, amount=50, payload=b"a" * 400)
        tx_b = transfer_from(ledger, bob, amount=60)
        pool.add(tx_a, ledger.utxos)
        pool.add(tx_b, ledger.utxos)
        tight = pool.select_for_block(max_body_bytes=tx_b.size_bytes + 10)
        assert tx_a not in tight
        assert tx_b in tight

    def test_selection_orders_by_fee_rate(self, pool, ledger, alice, bob):
        from tests.conftest import make_transfer_block
        from repro.chain.transaction import (
            Transaction,
            TxInput,
            TxOutput,
        )
        from repro.crypto.signatures import sign

        block = make_transfer_block(ledger, alice, bob, 10_000)
        ledger.accept_block(block)
        # bob pays a 500-unit fee (outputs < inputs); alice pays none.
        spendable_bob = ledger.utxos.outpoints_of(bob.address)
        total = sum(v for _, v in spendable_bob)
        unsigned = Transaction(
            inputs=tuple(TxInput(outpoint=op) for op, _ in spendable_bob),
            outputs=(
                TxOutput(
                    value=total - 500,
                    address=KeyPair.from_seed(60).address,
                ),
            ),
        )
        signature = sign(bob, unsigned.signing_digest)
        fee_tx = Transaction(
            inputs=tuple(
                TxInput(
                    outpoint=op,
                    public_key=bob.public_key,
                    signature=signature,
                )
                for op, _ in spendable_bob
            ),
            outputs=unsigned.outputs,
        )
        free_tx = transfer_from(ledger, alice, amount=77)
        pool.add(fee_tx, ledger.utxos)
        pool.add(free_tx, ledger.utxos)
        chosen = pool.select_for_block(max_body_bytes=100_000)
        assert chosen[0].txid == fee_tx.txid

    def test_total_bytes(self, pool, ledger, alice):
        tx = transfer_from(ledger, alice)
        pool.add(tx, ledger.utxos)
        assert pool.total_bytes == tx.size_bytes
