"""Unit tests for quorum math, vote tallies, the PBFT round, proposers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.mempool import Mempool
from repro.consensus.pbft import RoundPhase, VerificationRound
from repro.consensus.proposer import BlockProposer, ProposerSchedule
from repro.consensus.quorum import (
    Vote,
    VoteTally,
    byzantine_quorum,
    max_byzantine_tolerated,
)
from repro.crypto.hashing import sha256
from repro.errors import ConsensusError
from tests.conftest import TEST_LIMITS


class TestQuorumMath:
    @pytest.mark.parametrize(
        "m,quorum", [(1, 1), (3, 3), (4, 3), (7, 5), (10, 7), (100, 67)]
    )
    def test_quorum_values(self, m, quorum):
        assert byzantine_quorum(m) == quorum

    def test_soundness_relation(self):
        """Two quorums intersect in >f members for every cluster size."""
        for m in range(1, 60):
            quorum = byzantine_quorum(m)
            f = max_byzantine_tolerated(m)
            assert 2 * quorum - m > f

    def test_invalid_size(self):
        with pytest.raises(ConsensusError):
            byzantine_quorum(0)
        with pytest.raises(ConsensusError):
            max_byzantine_tolerated(0)


class TestVoteTally:
    def test_accept_quorum(self):
        tally = VoteTally(cluster_size=4)
        for member in range(3):
            tally.record(member, Vote.ACCEPT)
        assert tally.accepted
        assert tally.decided

    def test_not_decided_below_quorum(self):
        tally = VoteTally(cluster_size=4)
        tally.record(0, Vote.ACCEPT)
        assert not tally.decided

    def test_rejection_when_quorum_impossible(self):
        tally = VoteTally(cluster_size=4)  # quorum 3
        tally.record(0, Vote.REJECT)
        tally.record(1, Vote.REJECT)
        assert tally.rejected

    def test_duplicate_votes_ignored(self):
        tally = VoteTally(cluster_size=4)
        tally.record(0, Vote.ACCEPT)
        tally.record(0, Vote.ACCEPT)
        assert tally.accepts == 1

    def test_equivocation_discards_member(self):
        tally = VoteTally(cluster_size=4)
        tally.record(0, Vote.ACCEPT)
        tally.record(0, Vote.REJECT)
        assert tally.accepts == 0
        assert tally.rejects == 0
        assert 0 in tally.equivocators
        tally.record(0, Vote.ACCEPT)  # stays discarded
        assert tally.accepts == 0

    def test_equivocators_count_against_acceptance(self):
        tally = VoteTally(cluster_size=3)  # quorum 3
        tally.record(0, Vote.ACCEPT)
        tally.record(0, Vote.REJECT)
        assert tally.rejected  # only 2 honest voters remain < quorum


def make_round(m: int = 4, holders=(0,), member: int = 1):
    return VerificationRound(
        block_hash=sha256(b"block"),
        members=tuple(range(m)),
        holders=tuple(holders),
        member_id=member,
    )


class TestVerificationRound:
    def test_prepare_majority_triggers_commit(self):
        round_ = make_round(m=4, holders=(0, 1, 2), member=3)
        assert not round_.on_prepare(0, Vote.ACCEPT)
        assert round_.on_prepare(1, Vote.ACCEPT)  # 2 of 3 = majority
        assert round_.my_commit_vote is Vote.ACCEPT
        assert round_.phase is RoundPhase.AWAITING_COMMITS

    def test_reject_majority_commits_reject(self):
        round_ = make_round(m=4, holders=(0, 1, 2), member=3)
        round_.on_prepare(0, Vote.REJECT)
        assert round_.on_prepare(1, Vote.REJECT)
        assert round_.my_commit_vote is Vote.REJECT

    def test_single_holder_prepare_suffices(self):
        round_ = make_round(m=4, holders=(0,), member=1)
        assert round_.on_prepare(0, Vote.ACCEPT)

    def test_non_holder_prepare_ignored(self):
        round_ = make_round(m=4, holders=(0,), member=1)
        assert not round_.on_prepare(3, Vote.ACCEPT)

    def test_commit_quorum_accepts(self):
        round_ = make_round(m=4, holders=(0,), member=1)
        round_.on_prepare(0, Vote.ACCEPT)
        assert not round_.on_commit(0, Vote.ACCEPT, now=1.0)
        assert not round_.on_commit(1, Vote.ACCEPT, now=2.0)
        assert round_.on_commit(2, Vote.ACCEPT, now=3.0)
        assert round_.accepted
        assert round_.decided_at == 3.0

    def test_commit_quorum_rejects(self):
        round_ = make_round(m=4, holders=(0,), member=1)
        round_.on_commit(0, Vote.REJECT)
        assert round_.on_commit(1, Vote.REJECT)
        assert round_.phase is RoundPhase.REJECTED

    def test_events_after_decision_ignored(self):
        round_ = make_round(m=3, holders=(0,), member=1)
        for member in range(3):
            round_.on_commit(member, Vote.ACCEPT)
        assert round_.decided
        assert not round_.on_commit(0, Vote.ACCEPT)
        assert not round_.on_prepare(0, Vote.ACCEPT)

    def test_stranger_commit_ignored(self):
        round_ = make_round(m=3, holders=(0,), member=1)
        assert not round_.on_commit(99, Vote.ACCEPT)
        assert round_.commit_tally.accepts == 0

    def test_commit_vote_before_quorum_raises(self):
        round_ = make_round()
        with pytest.raises(ConsensusError):
            _ = round_.my_commit_vote

    def test_owner_must_be_member(self):
        with pytest.raises(ConsensusError):
            make_round(m=3, holders=(0,), member=9)

    def test_holders_must_be_members(self):
        with pytest.raises(ConsensusError):
            VerificationRound(
                block_hash=sha256(b"b"),
                members=(0, 1),
                holders=(5,),
                member_id=0,
            )

    def test_needs_a_holder(self):
        with pytest.raises(ConsensusError):
            VerificationRound(
                block_hash=sha256(b"b"),
                members=(0, 1),
                holders=(),
                member_id=0,
            )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 20), st.data())
    def test_quorum_of_accepts_always_decides(self, m, data):
        holders = tuple(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(0, m - 1), min_size=1, max_size=min(m, 3)
                    )
                )
            )
        )
        round_ = make_round(m=m, holders=holders, member=0)
        for holder in holders:
            round_.on_prepare(holder, Vote.ACCEPT)
        for member in range(byzantine_quorum(m)):
            round_.on_commit(member, Vote.ACCEPT)
        assert round_.accepted


class TestProposerSchedule:
    def test_deterministic(self):
        a = ProposerSchedule(range(10), seed=1)
        b = ProposerSchedule(range(10), seed=1)
        assert [a.proposer_at(h) for h in range(20)] == [
            b.proposer_at(h) for h in range(20)
        ]

    def test_spread_over_nodes(self):
        schedule = ProposerSchedule(range(10), seed=0)
        chosen = {schedule.proposer_at(h) for h in range(200)}
        assert len(chosen) == 10

    def test_remove_and_add(self):
        schedule = ProposerSchedule([0, 1, 2], seed=0)
        schedule.remove(1)
        assert 1 not in schedule.eligible
        schedule.add(1)
        assert 1 in schedule.eligible
        schedule.add(1)  # idempotent
        assert schedule.eligible.count(1) == 1

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConsensusError):
            ProposerSchedule([])

    def test_negative_height_rejected(self):
        with pytest.raises(ConsensusError):
            ProposerSchedule([0]).proposer_at(-1)


class TestBlockProposer:
    def test_coinbase_first_and_reward(self, ledger, alice):
        proposer = BlockProposer(alice.address, limits=TEST_LIMITS)
        block = proposer.propose(
            height=1,
            prev_hash=ledger.tip.block_hash,
            mempool=Mempool(limits=TEST_LIMITS),
            timestamp=5.0,
        )
        assert block.transactions[0].is_coinbase
        assert (
            block.transactions[0].total_output_value
            == TEST_LIMITS.block_reward
        )
        assert block.header.nonce == 1

    def test_extra_transactions_respect_budget(self, ledger, alice):
        from repro.chain.transaction import make_coinbase

        tiny_limits = TEST_LIMITS
        proposer = BlockProposer(alice.address, limits=tiny_limits)
        fillers = [
            make_coinbase(0, alice.address, height=1, extra=bytes([i]) * 100)
            for i in range(10)
        ]
        block = proposer.propose(
            height=1,
            prev_hash=ledger.tip.block_hash,
            mempool=Mempool(limits=tiny_limits),
            timestamp=5.0,
            extra_transactions=fillers,
        )
        assert block.body_size_bytes <= tiny_limits.max_block_body_bytes
