"""Unit tests for latency models, messages, the network fabric, traffic."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownNodeError
from repro.net.latency import (
    ConstantLatency,
    CoordinateLatency,
    UniformLatency,
)
from repro.net.message import (
    ENVELOPE_OVERHEAD,
    Message,
    MessageKind,
    sized_message,
)
from repro.net.network import Network
from repro.net.simclock import SimClock


class Recorder:
    """Test endpoint: remembers what it receives and when."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.received: list[tuple[float, Message]] = []

    def handle_message(self, message: Message) -> None:
        self.received.append((self.network.now, message))


@pytest.fixture
def net() -> Network:
    return Network(
        clock=SimClock(), latency=ConstantLatency(0.1), bandwidth_bps=1000.0
    )


def wire(net: Network, count: int) -> list[Recorder]:
    endpoints = []
    for node_id in range(count):
        endpoint = Recorder(net)
        net.register(node_id, endpoint)
        endpoints.append(endpoint)
    return endpoints


class TestLatencyModels:
    def test_constant_self_delay_zero(self):
        model = ConstantLatency(0.5)
        assert model.delay(3, 3) == 0.0
        assert model.delay(1, 2) == 0.5

    def test_uniform_symmetric_and_stable(self):
        model = UniformLatency(0.01, 0.1, seed=4)
        assert model.delay(1, 2) == model.delay(2, 1)
        assert model.delay(1, 2) == model.delay(1, 2)
        assert 0.01 <= model.delay(1, 2) < 0.1

    def test_uniform_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.2, 0.1)

    def test_coordinate_distance_scaling(self):
        model = CoordinateLatency(
            [(0.0, 0.0), (3.0, 4.0)], seconds_per_unit=0.01, base_seconds=0.0
        )
        assert model.delay(0, 1) == pytest.approx(0.05)  # distance 5

    def test_coordinate_missing_node(self):
        model = CoordinateLatency([(0.0, 0.0)])
        with pytest.raises(ConfigurationError):
            model.delay(0, 5)

    def test_transmission_time(self):
        model = ConstantLatency(0.0)
        assert model.transmission_time(1000, 1000.0) == 1.0
        with pytest.raises(ConfigurationError):
            model.transmission_time(10, 0)

    def test_total_delay_combines(self):
        model = ConstantLatency(0.1)
        assert model.total_delay(0, 1, 500, 1000.0) == pytest.approx(0.6)


class TestMessages:
    def test_envelope_added(self):
        message = sized_message(MessageKind.CONTROL, 0, 1, "x", 100)
        assert message.size_bytes == 100 + ENVELOPE_OVERHEAD

    def test_minimum_size_is_envelope(self):
        message = Message(
            kind=MessageKind.CONTROL,
            sender=0,
            recipient=1,
            payload=None,
            size_bytes=0,
        )
        assert message.size_bytes >= ENVELOPE_OVERHEAD

    def test_message_ids_unique(self):
        a = sized_message(MessageKind.CONTROL, 0, 1, None, 0)
        b = sized_message(MessageKind.CONTROL, 0, 1, None, 0)
        assert a.message_id != b.message_id


class TestDelivery:
    def test_delivery_with_latency_and_bandwidth(self, net):
        endpoints = wire(net, 2)
        net.send(sized_message(MessageKind.CONTROL, 0, 1, "hi", 60))
        net.run()
        assert len(endpoints[1].received) == 1
        arrived_at, message = endpoints[1].received[0]
        assert message.payload == "hi"
        assert arrived_at == pytest.approx(0.1 + 100 / 1000.0)

    def test_offline_recipient_drops(self, net):
        endpoints = wire(net, 2)
        net.set_online(1, False)
        net.send(sized_message(MessageKind.CONTROL, 0, 1, "hi", 0))
        net.run()
        assert not endpoints[1].received
        assert net.dropped_messages == 1

    def test_offline_sender_drops_immediately(self, net):
        endpoints = wire(net, 2)
        net.set_online(0, False)
        net.send(sized_message(MessageKind.CONTROL, 0, 1, "hi", 0))
        net.run()
        assert not endpoints[1].received
        assert net.dropped_messages == 1

    def test_recovered_node_receives_again(self, net):
        endpoints = wire(net, 2)
        net.set_online(1, False)
        net.set_online(1, True)
        net.send(sized_message(MessageKind.CONTROL, 0, 1, "hi", 0))
        net.run()
        assert len(endpoints[1].received) == 1

    def test_unknown_liveness_target(self, net):
        with pytest.raises(UnknownNodeError):
            net.set_online(99, True)

    def test_online_count(self, net):
        wire(net, 3)
        assert net.online_count() == 3
        net.set_online(2, False)
        assert net.online_count() == 2

    def test_unregister_removes(self, net):
        wire(net, 2)
        net.unregister(1)
        assert 1 not in net.node_ids
        net.send(sized_message(MessageKind.CONTROL, 0, 1, "hi", 0))
        net.run()
        assert net.dropped_messages == 1

    def test_unregister_drops_topology_entry(self, net):
        """Regression: departed nodes used to linger in the peer map."""
        wire(net, 3)
        net.set_topology({0: (1, 2), 1: (0,), 2: (0,)})
        net.unregister(2)
        with pytest.raises(UnknownNodeError):
            net.peers_of(2)
        # Re-registering starts from a clean (empty) peer list, not the
        # stale one.
        net.register(2, Recorder(net))
        assert net.peers_of(2) == ()


class TestTopologyAccess:
    def test_peers_of_unknown_raises(self, net):
        with pytest.raises(UnknownNodeError):
            net.peers_of(42)

    def test_set_topology(self, net):
        wire(net, 3)
        net.set_topology({0: (1,), 1: (0, 2), 2: (1,)})
        assert net.peers_of(1) == (0, 2)


class TestTrafficAccounting:
    def test_counters_updated_on_delivery(self, net):
        wire(net, 2)
        net.send(sized_message(MessageKind.TX_BODY, 0, 1, "tx", 100))
        net.run()
        traffic = net.traffic
        assert traffic.total_messages == 1
        assert traffic.total_bytes == 100 + ENVELOPE_OVERHEAD
        assert traffic.bytes_by_kind[MessageKind.TX_BODY] > 0
        assert traffic.bytes_sent_by_node[0] == traffic.total_bytes
        assert traffic.bytes_received_by_node[1] == traffic.total_bytes

    def test_dropped_messages_not_counted(self, net):
        wire(net, 2)
        net.set_online(1, False)
        net.send(sized_message(MessageKind.TX_BODY, 0, 1, "tx", 100))
        net.run()
        assert net.traffic.total_messages == 0

    def test_snapshot_delta(self, net):
        wire(net, 2)
        net.send(sized_message(MessageKind.TX_BODY, 0, 1, "a", 10))
        net.run()
        first = net.traffic.snapshot()
        net.send(sized_message(MessageKind.BLOCK_BODY, 0, 1, "b", 20))
        net.run()
        delta = net.traffic.snapshot().delta(first)
        assert delta.total_messages == 1
        assert delta.total_bytes == 20 + ENVELOPE_OVERHEAD
        assert MessageKind.TX_BODY not in delta.bytes_by_kind

    def test_bytes_for_kinds(self, net):
        wire(net, 2)
        net.send(sized_message(MessageKind.TX_BODY, 0, 1, "a", 10))
        net.send(sized_message(MessageKind.BLOCK_BODY, 0, 1, "b", 20))
        net.run()
        subtotal = net.traffic.bytes_for_kinds({MessageKind.TX_BODY})
        assert subtotal == 10 + ENVELOPE_OVERHEAD
