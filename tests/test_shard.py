"""Unit tests for the cluster-sharded event lanes (``net/shard.py``)."""

from __future__ import annotations

import pytest

from repro.clustering.membership import ClusterTable
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import SimulationError
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.message import MessageKind, sized_message
from repro.net.network import Network
from repro.net.shard import GLOBAL_SHARD, ShardedClock, ShardMap
from repro.net.simclock import SimClock
from repro.sim.backend import ParallelBackend, backend_scope


class Recorder:
    """Test endpoint: remembers what it receives and when."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.received: list[tuple[float, int]] = []

    def handle_message(self, message) -> None:
        self.received.append((self.network.now, message.message_id))


class TestShardMap:
    def test_unmapped_resolves_to_global(self):
        assert ShardMap().shard_of(123) == GLOBAL_SHARD

    def test_assign_and_remove_bump_version(self):
        shard_map = ShardMap()
        shard_map.assign(7, 2)
        assert shard_map.shard_of(7) == 2
        assert shard_map.version == 1
        shard_map.remove(7)
        assert shard_map.shard_of(7) == GLOBAL_SHARD
        assert shard_map.version == 2
        shard_map.remove(7)  # unmapped: no version tick
        assert shard_map.version == 2

    def test_negative_shard_rejected(self):
        with pytest.raises(SimulationError):
            ShardMap().assign(1, -1)

    def test_rebuild_offsets_cluster_ids_past_global(self):
        shard_map = ShardMap()
        table = ClusterTable.from_assignment([[0, 1], [2, 3, 4]])
        shard_map.rebuild(table)
        assert shard_map.shard_of(0) == 1
        assert shard_map.shard_of(4) == 2
        assert shard_map.shards() == [1, 2]
        assert len(shard_map) == 5


class TestSimClockCompatibility:
    """A sharded clock with no shard map is an exact SimClock."""

    def test_time_order_and_now(self):
        clock = ShardedClock()
        order: list[str] = []
        clock.schedule(2.0, lambda: order.append("late"))
        clock.schedule(1.0, lambda: order.append("early"))
        clock.run()
        assert order == ["early", "late"]
        assert clock.now == 2.0
        assert clock.processed == 2
        assert clock.pending == 0

    def test_ties_run_in_scheduling_order(self):
        clock = ShardedClock()
        order: list[int] = []
        for index in range(5):
            clock.schedule(1.0, lambda i=index: order.append(i))
        clock.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_lands_exactly(self):
        clock = ShardedClock()
        fired: list[float] = []
        clock.schedule(1.0, lambda: fired.append(clock.now))
        clock.schedule(3.0, lambda: fired.append(clock.now))
        clock.run_until(2.0)
        assert fired == [1.0]
        assert clock.now == 2.0
        assert clock.pending == 1
        clock.run()
        assert fired == [1.0, 3.0]

    def test_cancelled_event_skipped_and_pending_tracks(self):
        clock = ShardedClock()
        fired: list[bool] = []
        handle = clock.schedule(1.0, lambda: fired.append(True))
        assert clock.pending == 1
        assert handle.cancel()
        assert clock.pending == 0
        clock.run()
        assert not fired

    def test_step_couples(self):
        clock = ShardedClock()
        clock.schedule(1.0, lambda: None)
        assert not clock.coupled
        assert clock.step()
        assert clock.coupled


def sharded_network(workers: int = 1) -> tuple[Network, ShardedClock]:
    clock = ShardedClock(workers=workers)
    network = Network(clock=clock, latency=ConstantLatency(0.1))
    return network, clock


def ping(network: Network, sender: int, recipient: int):
    message = sized_message(
        MessageKind.BLOCK_ANNOUNCE, sender, recipient, None, 100
    )
    network.send(message)
    return message


class TestLaneRouting:
    def test_cross_shard_mail_delivers_identically_to_serial(self):
        serial_net = Network(
            clock=SimClock(), latency=ConstantLatency(0.1)
        )
        shard_net, clock = sharded_network()
        for shard, node in ((1, 0), (1, 1), (2, 2), (2, 3)):
            clock.shard_map.assign(node, shard)
        logs = {}
        for name, network in (("serial", serial_net), ("shard", shard_net)):
            endpoints = {}
            for node in range(4):
                endpoints[node] = Recorder(network)
                network.register(node, endpoints[node])
            # Intra-shard, cross-shard, and a nested reply chain.
            network.send_many(
                [
                    sized_message(
                        MessageKind.BLOCK_ANNOUNCE, a, b, None, 100
                    )
                    for a, b in ((0, 1), (0, 2), (3, 1), (2, 3))
                ]
            )
            network.run()
            logs[name] = {
                node: [t for t, _ in endpoints[node].received]
                for node in range(4)
            }
        assert logs["serial"] == logs["shard"]
        assert shard_net.traffic.total_messages == (
            serial_net.traffic.total_messages
        )
        assert not clock.coupled

    def test_lanes_advance_independently(self):
        network, clock = sharded_network()

        class SelfTalker:
            """Endpoint that keeps scheduling to itself."""

            def __init__(self, count):
                self.count = count

            def handle_message(self, message):
                if self.count:
                    self.count -= 1
                    ping(network, 0, 0)

        network.register(0, SelfTalker(5))
        network.register(1, Recorder(network))
        clock.shard_map.assign(0, 1)
        clock.shard_map.assign(1, 2)
        ping(network, 0, 0)
        ping(network, 1, 1)
        network.run()
        times = clock.lane_times()
        # Node 0's lane processed a chain of 6 self-sends; node 1's one.
        assert times[1] > times[2]
        assert clock.pending == 0

    def test_lookahead_is_min_cross_shard_delay(self):
        clock = ShardedClock()
        network = Network(
            clock=clock, latency=UniformLatency(0.02, 0.2, seed=1)
        )
        for node in range(6):
            network.register(node, Recorder(network))
            clock.shard_map.assign(node, 1 + node % 2)
        expected = min(
            network.latency.delay(a, b)
            for a in range(6)
            for b in range(6)
            if a != b and a % 2 != b % 2
        )
        assert clock.lookahead == pytest.approx(expected)

    def test_zero_lookahead_couples(self):
        clock = ShardedClock()
        network = Network(clock=clock, latency=ConstantLatency(0.0))
        for node in (0, 1):
            network.register(node, Recorder(network))
            clock.shard_map.assign(node, node + 1)
        ping(network, 0, 1)
        network.run()
        assert clock.coupled


class TestCoupling:
    def test_fault_injector_couples(self):
        from repro.sim.faults import FaultConfig, FaultInjector, FaultPlan

        network, clock = sharded_network()
        network.register(0, Recorder(network))
        plan = FaultPlan(FaultConfig(drop_rate=0.5, seed=1))
        network.attach_faults(FaultInjector(plan, network))
        assert clock.coupled

    def test_remap_at_quiescence_stays_sharded(self):
        network, clock = sharded_network()
        for node in range(4):
            network.register(node, Recorder(network))
        clock.remap_shards(ClusterTable.from_assignment([[0, 1], [2, 3]]))
        assert not clock.coupled
        assert clock.shard_map.shard_of(3) == 2

    def test_remap_with_inflight_events_couples(self):
        network, clock = sharded_network()
        for node in range(4):
            network.register(node, Recorder(network))
        clock.remap_shards(ClusterTable.from_assignment([[0, 1], [2, 3]]))
        ping(network, 0, 1)  # lands in lane 1's heap
        clock.remap_shards(ClusterTable.from_assignment([[0, 2], [1, 3]]))
        assert clock.coupled
        network.run()
        assert clock.pending == 0

    def test_remap_during_drain_defers_coupling_to_barrier(self):
        network, clock = sharded_network()
        table = ClusterTable.from_assignment([[0, 1], [2, 3]])
        seen: list[bool] = []

        class Remapper:
            def handle_message(self, message):
                clock.remap_shards(table)
                seen.append(clock.coupled)

        network.register(0, Remapper())
        network.register(1, Recorder(network))
        clock.shard_map.assign(0, 1)
        clock.shard_map.assign(1, 2)
        ping(network, 1, 1)
        ping(network, 0, 0)
        network.run()
        # Inside the callback the clock was still sharded; the epoch
        # loop coupled at the next barrier and finished serially.
        assert seen == [False]
        assert clock.coupled


class TestDeploymentFeed:
    """Cluster assignment and churn flow into the shard map."""

    def build(self, n_nodes=16, n_clusters=4):
        config = ICIConfig(n_clusters=n_clusters, replication=2)
        with backend_scope(ParallelBackend(workers=2)):
            deployment = ICIDeployment(n_nodes, config=config)
        return deployment

    def test_initial_clustering_populates_map(self):
        deployment = self.build()
        clock = deployment.network.clock
        assert isinstance(clock, ShardedClock)
        shard_map = clock.shard_map
        for view in deployment.clusters.views():
            for node in view.members:
                assert shard_map.shard_of(node) == view.cluster_id + 1

    def test_join_extends_map(self):
        deployment = self.build()
        clock = deployment.network.clock
        before = clock.shard_map.version
        report = deployment.join_new_node()
        deployment.run()
        assert clock.shard_map.version > before
        assert clock.shard_map.shard_of(report.node_id) != GLOBAL_SHARD

    def test_leave_drops_member_from_map(self):
        deployment = self.build()
        clock = deployment.network.clock
        victim = next(iter(deployment.clusters.views())).members[0]
        deployment.leave_node(victim)
        deployment.run()
        assert clock.shard_map.shard_of(victim) == GLOBAL_SHARD
        assert victim not in deployment.nodes
