"""Unit tests for storage accounting, replication health, and erasure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.chainstore import ChainStore
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import StorageError
from repro.storage.accounting import (
    full_replication_total,
    ici_per_node,
    ici_total,
    rapidchain_per_node,
    rapidchain_total,
    report_network,
    report_node,
)
from repro.storage.erasure import (
    encode_group,
    parity_storage_total,
    recover_chunk,
)
from repro.storage.placement import RendezvousPlacement
from repro.storage.replication import (
    analytic_block_survival,
    analytic_ledger_survival,
    availability_under_failures,
    binomial_failure_probability,
    expected_repair_fraction,
    plan_repair_after_departure,
    sample_failure_sets,
)


def header_at(height: int) -> BlockHeader:
    return BlockHeader(
        height=height,
        prev_hash=sha256(f"p{height}".encode()),
        merkle_root=ZERO_HASH,
        timestamp=float(height),
    )


class TestReports:
    def test_node_report(self, genesis):
        store = ChainStore()
        store.add_body(genesis)
        report = report_node(7, store)
        assert report.node_id == 7
        assert report.total_bytes == store.stored_bytes
        assert report.body_count == 1

    def test_network_report_aggregates(self, genesis):
        stores = {}
        for node_id in range(3):
            store = ChainStore()
            store.add_header(genesis.header)
            if node_id == 0:
                store.add_body(genesis)
            stores[node_id] = store
        report = report_network(stores)
        assert report.node_count == 3
        assert report.total_bytes == sum(
            s.stored_bytes for s in stores.values()
        )
        assert report.max_node_bytes == stores[0].stored_bytes
        assert report.mean_node_bytes == report.total_bytes / 3
        assert report.stdev_node_bytes > 0

    def test_ratio_to(self, genesis):
        a = report_network({0: ChainStore()})
        store = ChainStore()
        store.add_body(genesis)
        b = report_network({0: store})
        assert b.ratio_to(b) == 1.0
        assert a.ratio_to(b) == 0.0


class TestClosedForms:
    def test_full_replication_scales_with_n(self):
        assert full_replication_total(100, 10) == 1000

    def test_rapidchain_independent_of_n(self):
        assert rapidchain_total(1000, 250, 1.0) == rapidchain_total(
            4000, 250, 1.0
        )

    def test_headline_25_percent(self):
        """The abstract's claim: ICI(16,1) = 25% of RapidChain(250)."""
        rc = rapidchain_total(1000, 250, 1.0)
        ici = ici_total(1000, 16, 1, 1.0)
        assert ici / rc == pytest.approx(0.25)

    def test_replication_scales_ici(self):
        assert ici_total(100, 10, 2, 1.0) == 2 * ici_total(100, 10, 1, 1.0)

    def test_per_node_forms(self):
        assert ici_per_node(10, 2, 100.0) == 20.0
        assert rapidchain_per_node(100, 10, 100.0) == 10.0

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            rapidchain_total(10, 20, 1.0)
        with pytest.raises(ValueError):
            ici_total(10, 0, 1, 1.0)
        with pytest.raises(ValueError):
            ici_total(10, 5, 6, 1.0)


class TestAvailability:
    def test_no_failures_all_available(self):
        headers = [header_at(h) for h in range(50)]
        report = availability_under_failures(
            headers, list(range(10)), 2, RendezvousPlacement(), set()
        )
        assert report.all_available
        assert report.survival_fraction == 1.0

    def test_failing_all_holders_loses_block(self):
        headers = [header_at(0)]
        policy = RendezvousPlacement()
        holders = set(policy.holders(headers[0], list(range(6)), 2))
        report = availability_under_failures(
            headers, list(range(6)), 2, policy, holders
        )
        assert report.lost_blocks == 1
        assert not report.all_available

    def test_at_risk_counting(self):
        headers = [header_at(0)]
        policy = RendezvousPlacement()
        holders = policy.holders(headers[0], list(range(6)), 2)
        report = availability_under_failures(
            headers, list(range(6)), 2, policy, {holders[0]}
        )
        assert report.at_risk_blocks == 1
        assert report.lost_blocks == 0

    def test_analytic_block_survival(self):
        assert analytic_block_survival(10, 1, 0.5) == 0.5
        assert analytic_block_survival(10, 2, 0.5) == 0.75
        assert analytic_block_survival(10, 3, 0.0) == 1.0

    def test_analytic_ledger_survival(self):
        single = analytic_block_survival(10, 2, 0.3)
        assert analytic_ledger_survival(5, 10, 2, 0.3) == pytest.approx(
            single**5
        )

    def test_bad_probability_rejected(self):
        with pytest.raises(StorageError):
            analytic_block_survival(10, 2, 1.5)

    def test_binomial_failure_probability(self):
        # m=4, r=2, f=2: C(2,0)/C(4,2) = 1/6
        assert binomial_failure_probability(4, 2, 2) == pytest.approx(1 / 6)
        assert binomial_failure_probability(4, 2, 1) == 0.0
        assert binomial_failure_probability(4, 2, 4) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 12), st.integers(1, 3), st.integers(0, 3))
    def test_monte_carlo_matches_hypergeometric(self, m, r, extra):
        """Measured loss over random failure sets ≈ closed form."""
        r = min(r, m)
        f = min(r + extra, m)
        members = list(range(m))
        headers = [header_at(h) for h in range(60)]
        policy = RendezvousPlacement()
        expected = binomial_failure_probability(m, r, f)
        losses = 0
        trials = 0
        for failed in sample_failure_sets(members, f, 25, seed=1):
            report = availability_under_failures(
                headers, members, r, policy, failed
            )
            losses += report.lost_blocks
            trials += report.total_blocks
        measured = losses / trials
        assert abs(measured - expected) < 0.25


class TestRepairPlanning:
    def test_departure_triggers_transfers(self):
        members = list(range(8))
        headers = [header_at(h) for h in range(100)]
        policy = RendezvousPlacement()
        plan = plan_repair_after_departure(
            headers,
            body_bytes=lambda _h: 1000,
            old_members=members,
            departed=3,
            replication=2,
            policy=policy,
        )
        # Expected ≈ r/m of blocks need repair.
        assert 0 < plan.transfer_count < len(headers)
        assert plan.bytes_moved == plan.transfer_count * 1000

    def test_unknown_departed_rejected(self):
        with pytest.raises(StorageError):
            plan_repair_after_departure(
                [], lambda _h: 0, [0, 1], departed=9, replication=1,
                policy=RendezvousPlacement(),
            )

    def test_departure_below_replication_rejected(self):
        with pytest.raises(StorageError):
            plan_repair_after_departure(
                [], lambda _h: 0, [0, 1], departed=0, replication=2,
                policy=RendezvousPlacement(),
            )

    def test_expected_repair_fraction(self):
        assert expected_repair_fraction(10, 2) == 0.2
        assert expected_repair_fraction(2, 2) == 1.0
        with pytest.raises(StorageError):
            expected_repair_fraction(0, 1)

    def test_sample_failure_sets_bounds(self):
        sets = list(sample_failure_sets(range(5), 2, 4, seed=0))
        assert len(sets) == 4
        for failed in sets:
            assert len(failed) == 2
        with pytest.raises(StorageError):
            list(sample_failure_sets([0], 2, 1))


class TestErasure:
    def test_encode_and_recover(self):
        chunks = [(bytes([i]) * 4, f"body-{i}".encode() * (i + 1)) for i in range(4)]
        group = encode_group(chunks)
        lost_id, lost_body = chunks[2]
        surviving = {
            chunk_id: body for chunk_id, body in chunks if chunk_id != lost_id
        }
        assert recover_chunk(group, lost_id, surviving) == lost_body

    def test_recover_each_position(self):
        chunks = [(bytes([i]) * 4, bytes([i * 7]) * (10 + i)) for i in range(5)]
        group = encode_group(chunks)
        for lost_id, lost_body in chunks:
            surviving = {
                cid: body for cid, body in chunks if cid != lost_id
            }
            assert recover_chunk(group, lost_id, surviving) == lost_body

    def test_two_losses_rejected(self):
        chunks = [(bytes([i]) * 4, b"x" * 8) for i in range(3)]
        group = encode_group(chunks)
        surviving = {chunks[2][0]: chunks[2][1]}  # two missing
        with pytest.raises(StorageError, match="exactly one"):
            recover_chunk(group, chunks[0][0], surviving)

    def test_wrong_length_survivor_rejected(self):
        chunks = [(bytes([i]) * 4, b"x" * 8) for i in range(3)]
        group = encode_group(chunks)
        surviving = {chunks[1][0]: b"x" * 7, chunks[2][0]: b"x" * 8}
        with pytest.raises(StorageError, match="length"):
            recover_chunk(group, chunks[0][0], surviving)

    def test_empty_group_rejected(self):
        with pytest.raises(StorageError):
            encode_group([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(StorageError):
            encode_group([(b"a" * 4, b"x"), (b"a" * 4, b"y")])

    def test_unknown_chunk_rejected(self):
        group = encode_group([(b"a" * 4, b"x" * 4)])
        with pytest.raises(StorageError):
            group.index_of(b"z" * 4)

    def test_parity_storage_closed_form(self):
        # group of 4: overhead factor 1.25 per cluster.
        assert parity_storage_total(100, 10, 4, 1000.0) == pytest.approx(
            10 * 1250.0
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.binary(min_size=1, max_size=40), min_size=2, max_size=6
        ),
        st.data(),
    )
    def test_recovery_property(self, bodies, data):
        chunks = [
            (index.to_bytes(4, "big"), body)
            for index, body in enumerate(bodies)
        ]
        group = encode_group(chunks)
        lost = data.draw(st.integers(0, len(chunks) - 1))
        lost_id, lost_body = chunks[lost]
        surviving = {cid: b for cid, b in chunks if cid != lost_id}
        assert recover_chunk(group, lost_id, surviving) == lost_body
