"""Property-based tests (hypothesis) for placement, layout, and erasure.

These are the invariants the chaos suite leans on: placement always
yields exactly ``r`` distinct in-cluster holders no matter the membership
(so every chunk has a holder to retry against), layout totals are exact
closed forms, and the XOR parity extension round-trips any single lost
chunk.  ``derandomize=True`` keeps CI deterministic — hypothesis explores
the same example set every run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import PlacementError, StorageError
from repro.storage.erasure import encode_group, recover_chunk
from repro.storage.layout import (
    balanced_clusters,
    full_replication_layout,
    ici_layout,
    synthetic_chain,
)
from repro.storage.placement import (
    ModuloSlotPlacement,
    RendezvousPlacement,
    RoundRobinPlacement,
    load_imbalance,
    placement_load,
)

SETTINGS = settings(derandomize=True, max_examples=60, deadline=None)

POLICIES = [
    RendezvousPlacement,
    ModuloSlotPlacement,
    RoundRobinPlacement,
]


def header_at(height: int, salt: int = 0) -> BlockHeader:
    return BlockHeader(
        height=height,
        prev_hash=ZERO_HASH,
        merkle_root=sha256(f"prop-{salt}-{height}".encode()),
        timestamp=float(height),
        nonce=height,
    )


members_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000),
    min_size=1,
    max_size=12,
    unique=True,
)


class TestPlacementProperties:
    @pytest.mark.parametrize("policy_cls", POLICIES)
    @SETTINGS
    @given(
        members=members_strategy,
        height=st.integers(min_value=0, max_value=500),
        replication=st.integers(min_value=1, max_value=12),
    )
    def test_exactly_r_distinct_in_cluster_holders(
        self, policy_cls, members, height, replication
    ):
        """Every chunk gets exactly ``r`` distinct holders, all members."""
        header = header_at(height)
        policy = policy_cls()
        if replication > len(members):
            with pytest.raises(PlacementError):
                policy.holders(header, members, replication)
            return
        holders = policy.holders(header, members, replication)
        assert len(holders) == replication
        assert len(set(holders)) == replication
        assert set(holders) <= set(members)

    @pytest.mark.parametrize("policy_cls", POLICIES)
    @SETTINGS
    @given(
        members=members_strategy,
        height=st.integers(min_value=0, max_value=500),
    )
    def test_caller_order_is_irrelevant(self, policy_cls, members, height):
        """Placement is a function of the *set* of members (determinism)."""
        header = header_at(height)
        policy = policy_cls()
        replication = min(2, len(members))
        forward = policy.holders(header, members, replication)
        backward = policy.holders(header, list(reversed(members)), replication)
        assert forward == backward
        assert forward == policy.holders(header, members, replication)

    @SETTINGS
    @given(
        members=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=2,
            max_size=10,
            unique=True,
        ),
        joiner=st.integers(min_value=10_001, max_value=20_000),
        height=st.integers(min_value=0, max_value=500),
    )
    def test_rendezvous_membership_stability(self, members, joiner, height):
        """A join only ever hands chunks *to the joiner* (HRW stability)."""
        header = header_at(height)
        policy = RendezvousPlacement()
        replication = min(2, len(members))
        before = set(policy.holders(header, members, replication))
        after = set(policy.holders(header, members + [joiner], replication))
        assert after <= before | {joiner}

    def test_rendezvous_load_is_balanced(self):
        """Max/mean load stays near 1 over a long chain (E9's claim)."""
        headers = [header_at(height) for height in range(400)]
        load = placement_load(
            headers, members=list(range(10)), replication=2,
            policy=RendezvousPlacement(),
        )
        assert sum(load.values()) == 400 * 2
        assert all(count > 0 for count in load.values())
        assert load_imbalance(load) < 1.5


class TestLayoutProperties:
    @SETTINGS
    @given(
        n_nodes=st.integers(min_value=4, max_value=24),
        n_groups=st.integers(min_value=1, max_value=4),
        n_blocks=st.integers(min_value=0, max_value=12),
        replication=st.integers(min_value=1, max_value=2),
    )
    def test_ici_layout_totals_are_exact(
        self, n_nodes, n_groups, n_blocks, replication
    ):
        """Network storage = n_clusters · r · chain bytes, to the byte."""
        if n_nodes // n_groups < replication:
            return  # degenerate: some cluster smaller than r
        clusters = balanced_clusters(n_nodes, n_groups, seed=1)
        if min(clusters.sizes()) < replication:
            return
        chain = synthetic_chain(n_blocks, mean_body_bytes=10_000, seed=2)
        report = ici_layout(clusters, chain, replication=replication)
        chain_bytes = sum(block.body_bytes for block in chain)
        body_total = sum(node.body_bytes for node in report.per_node)
        assert body_total == clusters.cluster_count * replication * chain_bytes
        body_count = sum(node.body_count for node in report.per_node)
        assert body_count == clusters.cluster_count * replication * n_blocks

    @SETTINGS
    @given(
        n_nodes=st.integers(min_value=1, max_value=20),
        n_blocks=st.integers(min_value=0, max_value=12),
    )
    def test_full_replication_dominates_ici(self, n_nodes, n_blocks):
        """Everyone-stores-everything is exactly n · chain bytes."""
        chain = synthetic_chain(n_blocks, mean_body_bytes=10_000, seed=3)
        report = full_replication_layout(list(range(n_nodes)), chain)
        chain_bytes = sum(block.body_bytes for block in chain)
        body_total = sum(node.body_bytes for node in report.per_node)
        assert body_total == n_nodes * chain_bytes


bodies_strategy = st.lists(
    st.binary(min_size=0, max_size=200),
    min_size=1,
    max_size=6,
)


class TestErasureProperties:
    @SETTINGS
    @given(bodies=bodies_strategy, data=st.data())
    def test_any_single_lost_chunk_round_trips(self, bodies, data):
        """k-of-(k+parity): any one missing chunk is reconstructed exactly."""
        chunks = [
            (sha256(f"chunk-{index}".encode()), body)
            for index, body in enumerate(bodies)
        ]
        group = encode_group(chunks)
        lost_index = data.draw(
            st.integers(min_value=0, max_value=len(chunks) - 1)
        )
        lost_id, lost_body = chunks[lost_index]
        surviving = {
            chunk_id: body
            for chunk_id, body in chunks
            if chunk_id != lost_id
        }
        assert recover_chunk(group, lost_id, surviving) == lost_body

    @SETTINGS
    @given(bodies=bodies_strategy)
    def test_two_missing_chunks_are_unrecoverable(self, bodies):
        """XOR parity holds exactly one erasure; a second must raise."""
        if len(bodies) < 2:
            return
        chunks = [
            (sha256(f"chunk-{index}".encode()), body)
            for index, body in enumerate(bodies)
        ]
        group = encode_group(chunks)
        surviving = {
            chunk_id: body for chunk_id, body in chunks[2:]
        }
        with pytest.raises(StorageError):
            recover_chunk(group, chunks[0][0], surviving)

    @SETTINGS
    @given(bodies=bodies_strategy)
    def test_parity_length_covers_longest_chunk(self, bodies):
        chunks = [
            (sha256(f"chunk-{index}".encode()), body)
            for index, body in enumerate(bodies)
        ]
        group = encode_group(chunks)
        assert group.padded_length == max(len(body) for body in bodies)
        assert group.lengths == tuple(len(body) for body in bodies)

    def test_duplicate_ids_rejected(self):
        chunk_id = sha256(b"dup")
        with pytest.raises(StorageError):
            encode_group([(chunk_id, b"a"), (chunk_id, b"b")])
        with pytest.raises(StorageError):
            encode_group([])


class TestEnduranceConvergence:
    """The anti-entropy sweep's contract, re-derived from raw storage.

    Rather than trusting the outcome's audit flags, these walk the healed
    deployment directly: per cluster, the union of what the members hold
    must equal the canonical chain, and each block must keep
    ``min(r, live_cluster_size)`` live replicas.
    """

    @settings(derandomize=True, max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_000))
    def test_coverage_union_and_replica_floor(self, seed):
        from repro.sim.chaos import EnduranceConfig, run_endurance
        from repro.sim.faults import live_members
        from tests.conftest import TEST_LIMITS

        outcome = run_endurance(
            EnduranceConfig(
                seed=seed,
                n_nodes=12,
                n_clusters=3,
                n_blocks=4,
                queries=0,
            ),
            limits=TEST_LIMITS,
        )
        deployment = outcome.deployment
        canonical = {
            header.block_hash
            for header in deployment.ledger.store.iter_active_headers()
        }
        replication = deployment.config.replication
        for view in deployment.clusters.views():
            stores = [
                deployment.nodes[member].store for member in view.members
            ]
            union = set()
            for store in stores:
                union |= {
                    block.block_hash for block in store.iter_bodies()
                }
            assert canonical <= union, (
                f"cluster {view.cluster_id} lost "
                f"{len(canonical - union)} blocks (seed {seed})"
            )
            live = live_members(deployment.network, sorted(view.members))
            floor = min(replication, len(live))
            for block_hash in canonical:
                holders = sum(
                    1
                    for member in live
                    if deployment.nodes[member].store.has_body(block_hash)
                )
                assert holders >= floor, (
                    f"cluster {view.cluster_id} holds {holders} live "
                    f"replicas of a block, floor {floor} (seed {seed})"
                )
