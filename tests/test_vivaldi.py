"""Tests for Vivaldi network-coordinate estimation."""

from __future__ import annotations

import math

import pytest

from repro.clustering.coordinates import place_regions, place_uniform
from repro.clustering.vivaldi import VivaldiEstimator, embedding_quality
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, CoordinateLatency


class TestConstruction:
    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            VivaldiEstimator(0)
        with pytest.raises(ConfigurationError):
            VivaldiEstimator(4, cc=0.0)
        with pytest.raises(ConfigurationError):
            VivaldiEstimator(4, ce=1.5)

    def test_initial_error_is_maximal(self):
        estimator = VivaldiEstimator(4)
        assert estimator.error_of(0) == 1.0
        assert estimator.mean_error() == 1.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            VivaldiEstimator(2).observe(0, 1, -0.1)


class TestConvergence:
    def test_embeds_euclidean_latencies_accurately(self):
        points = place_regions(30, n_regions=4, seed=2)
        model = CoordinateLatency(points)
        estimator = VivaldiEstimator(30, seed=2)
        coordinates = estimator.estimate_from_model(model, rounds=40)
        quality = embedding_quality(model, coordinates, range(30), seed=2)
        assert quality < 0.15

    def test_confidence_improves_with_samples(self):
        points = place_uniform(20, seed=3)
        model = CoordinateLatency(points)
        estimator = VivaldiEstimator(20, seed=3)
        assert estimator.mean_error() == 1.0
        estimator.estimate_from_model(model, rounds=30)
        # Confidence converges far below the clueless starting value.
        assert estimator.mean_error() < 0.2

    def test_deterministic_under_seed(self):
        points = place_uniform(12, seed=4)
        model = CoordinateLatency(points)
        a = VivaldiEstimator(12, seed=9).estimate_from_model(model, rounds=10)
        b = VivaldiEstimator(12, seed=9).estimate_from_model(model, rounds=10)
        assert a == b

    def test_constant_latency_spreads_nodes(self):
        """Uniform pairwise latency: every pair ends ≈ the same distance."""
        model = ConstantLatency(0.05)
        estimator = VivaldiEstimator(4, seed=5)
        coordinates = estimator.estimate_from_model(model, rounds=60)
        distances = [
            math.hypot(
                coordinates[i][0] - coordinates[j][0],
                coordinates[i][1] - coordinates[j][1],
            )
            for i in range(4)
            for j in range(i + 1, 4)
        ]
        # 4 equidistant points cannot embed exactly in 2-D, but all
        # pairwise distances should land in a narrow band near 0.05.
        assert max(distances) < 2.5 * min(distances)

    def test_coincident_start_separates(self):
        estimator = VivaldiEstimator(2, seed=6)
        for _ in range(30):
            estimator.observe(0, 1, 0.08)
        coordinates = estimator.coordinates()
        gap = math.hypot(
            coordinates[0][0] - coordinates[1][0],
            coordinates[0][1] - coordinates[1][1],
        )
        assert gap == pytest.approx(0.08, rel=0.2)


class TestClusteringOnEstimates:
    def test_estimated_coordinates_cluster_like_true_ones(self):
        """k-means on Vivaldi output recovers region structure."""
        from repro.clustering.algorithms import KMeansClustering
        from repro.clustering.coordinates import mean_pairwise_distance

        from repro.clustering.algorithms import RandomBalancedClustering

        points = place_regions(40, n_regions=4, seed=7)
        model = CoordinateLatency(points)
        estimated = VivaldiEstimator(40, seed=7).estimate_from_model(
            model, rounds=40
        )

        def spread_of(table):
            return sum(
                mean_pairwise_distance([points[m] for m in view.members])
                for view in table.views()
            ) / table.cluster_count

        on_estimates = spread_of(
            KMeansClustering(estimated, seed=7).form_clusters(
                list(range(40)), 4
            )
        )
        on_truth = spread_of(
            KMeansClustering(points, seed=7).form_clusters(
                list(range(40)), 4
            )
        )
        on_random = spread_of(
            RandomBalancedClustering(seed=7).form_clusters(
                list(range(40)), 4
            )
        )
        # Estimated coordinates recover most of the true-coordinate win.
        assert on_estimates < on_random
        assert on_estimates < 1.4 * on_truth

    def test_embedding_quality_bounds(self):
        points = place_uniform(10, seed=8)
        model = CoordinateLatency(points)
        perfect = [
            (x * 0.001 + 0.005 * 0, y * 0.001) for x, y in points
        ]
        # Perfectly scaled coordinates ≈ model distances (up to base).
        quality = embedding_quality(model, perfect, range(10), seed=8)
        assert quality < 0.2
