"""Shared fixtures: wallets, blocks, small ledgers and deployments."""

from __future__ import annotations

import pytest

from repro.chain.block import Block, build_block
from repro.chain.chainstore import Ledger
from repro.chain.genesis import make_genesis
from repro.chain.transaction import make_signed_transfer
from repro.chain.validation import ValidationLimits
from repro.crypto.keys import KeyPair

#: Small consensus limits so unit tests stay fast.
TEST_LIMITS = ValidationLimits(
    max_block_body_bytes=50_000, max_tx_bytes=10_000
)


@pytest.fixture
def alice() -> KeyPair:
    return KeyPair.from_seed(0)


@pytest.fixture
def bob() -> KeyPair:
    return KeyPair.from_seed(1)


@pytest.fixture
def carol() -> KeyPair:
    return KeyPair.from_seed(2)


@pytest.fixture
def genesis(alice: KeyPair) -> Block:
    """Genesis paying the whole supply to alice."""
    return make_genesis([alice.address])


@pytest.fixture
def ledger(genesis: Block) -> Ledger:
    return Ledger(genesis=genesis, limits=TEST_LIMITS)


def make_transfer_block(
    ledger: Ledger,
    sender: KeyPair,
    recipient: KeyPair,
    amount: int,
    miner: KeyPair | None = None,
) -> Block:
    """Seal a valid next block containing one transfer."""
    spendable = ledger.utxos.outpoints_of(sender.address)
    tx = make_signed_transfer(
        sender=sender,
        spendable=spendable,
        recipient_address=recipient.address,
        amount=amount,
    )
    miner = miner or sender
    from repro.chain.transaction import make_coinbase

    height = ledger.height + 1
    coinbase = make_coinbase(
        reward=TEST_LIMITS.block_reward,
        miner_address=miner.address,
        height=height,
    )
    tip = ledger.tip
    assert tip is not None
    return build_block(
        height=height,
        prev_hash=tip.block_hash,
        transactions=[coinbase, tx],
        timestamp=tip.timestamp + 1.0,
    )


@pytest.fixture
def chain_of_three(
    ledger: Ledger, alice: KeyPair, bob: KeyPair, carol: KeyPair
) -> list[Block]:
    """Three applied blocks on top of genesis (alice→bob→carol payments)."""
    blocks = []
    block1 = make_transfer_block(ledger, alice, bob, 1_000)
    ledger.accept_block(block1)
    blocks.append(block1)
    block2 = make_transfer_block(ledger, bob, carol, 400)
    ledger.accept_block(block2)
    blocks.append(block2)
    block3 = make_transfer_block(ledger, alice, carol, 2_000)
    ledger.accept_block(block3)
    blocks.append(block3)
    return blocks
