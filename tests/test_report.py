"""Tests for the markdown report generators (deployment/bench/chaos/trace)."""

from __future__ import annotations

import io

from repro.analysis.report import (
    render_deployment_report,
    write_deployment_report,
)
from repro.baselines.full_replication import FullReplicationDeployment
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def ici_deployment(**kwargs):
    kwargs.setdefault("n_clusters", 4)
    kwargs.setdefault("replication", 1)
    kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(16, config=ICIConfig(**kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    runner.produce_blocks(4, txs_per_block=3)
    return deployment, runner


class TestReportSections:
    def test_contains_all_core_sections(self):
        deployment, _ = ici_deployment()
        report = render_deployment_report(deployment)
        for heading in (
            "## Population",
            "## Storage",
            "## Traffic",
            "## Verification",
            "## Latency",
        ):
            assert heading in report

    def test_membership_events_after_join_and_leave(self):
        deployment, _ = ici_deployment()
        deployment.join_new_node()
        deployment.run()
        victim = deployment.clusters.members_of(0)[1]
        deployment.leave_node(victim)
        deployment.run()
        report = render_deployment_report(deployment)
        assert "## Membership events" in report
        assert "join" in report
        assert "leave" in report

    def test_parity_reported(self):
        deployment, _ = ici_deployment(
            replication=1, parity_group_size=3
        )
        report = render_deployment_report(deployment)
        assert "parity bytes" in report
        assert "parity groups" in report

    def test_reorgs_reported(self):
        deployment, runner = ici_deployment()
        runner.produce_fork(fork_from_height=2, length=3)
        report = render_deployment_report(deployment)
        assert "reorgs" in report

    def test_compact_hit_rate_reported(self):
        deployment = ICIDeployment(
            12,
            config=ICIConfig(
                n_clusters=3,
                compact_blocks=True,
                limits=TEST_LIMITS,
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks_via_relay(3, txs_per_block=3)
        report = render_deployment_report(deployment)
        assert "compact mempool hit rate" in report

    def test_works_for_baselines(self):
        deployment = FullReplicationDeployment(8, limits=TEST_LIMITS)
        ScenarioRunner(deployment, limits=TEST_LIMITS).produce_blocks(
            2, txs_per_block=2
        )
        report = render_deployment_report(deployment, title="baseline")
        assert report.startswith("# baseline")
        assert "## Storage" in report

    def test_write_to_stream(self):
        deployment, _ = ici_deployment()
        buffer = io.StringIO()
        write_deployment_report(deployment, buffer)
        assert buffer.getvalue().endswith("\n")
        assert "## Traffic" in buffer.getvalue()

    def test_tables_are_well_formed_markdown(self):
        deployment, _ = ici_deployment()
        report = render_deployment_report(deployment)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3


def bench_payload() -> dict:
    """A minimal, schema-shaped benchmark payload for rendering tests."""
    from repro.bench.schema import wall_stats

    return {
        "schema": "repro-bench",
        "schema_version": 1,
        "created_at": "2026-01-01T00:00:00+0000",
        "profile": "quick",
        "host": {"python": "3.11", "platform": "test"},
        "calibration": {"wall_seconds": 0.05, "rounds": 200_000},
        "benchmarks": {
            "e1": {
                "title": "storage growth",
                "wall_seconds": wall_stats([0.5, 0.6]),
                "peak_rss_kb": 2048,
                "simulated": {
                    "ici": {"virtual_seconds": 12.0, "messages": 345},
                },
            }
        },
    }


class TestBenchSummary:
    def test_renders_the_suite_table(self):
        from repro.analysis.report import render_bench_summary

        summary = render_bench_summary(bench_payload())
        assert summary.startswith("# Benchmark run (quick profile)")
        assert "calibration kernel: 0.0500s" in summary
        assert "| e1 | storage growth | 0.500 |" in summary
        assert "345" in summary
        assert "## Baseline comparison" not in summary

    def test_appends_the_baseline_verdict(self):
        from repro.analysis.report import render_bench_summary
        from repro.bench.baseline import compare_to_baseline

        payload = bench_payload()
        comparison = compare_to_baseline(payload, payload)
        summary = render_bench_summary(payload, comparison)
        assert "## Baseline comparison" in summary
        assert "RESULT" in summary


class TestChaosSummary:
    def test_summary_includes_latency_percentiles(self):
        from repro.analysis.report import render_chaos_summary
        from repro.sim.chaos import ChaosConfig, run_chaos

        outcome = run_chaos(
            ChaosConfig(seed=3, n_blocks=4, queries=4, drop_rate=0.2),
            limits=TEST_LIMITS,
        )
        summary = render_chaos_summary(outcome)
        assert "## Delivery latency (virtual time)" in summary
        assert "| message kind | delivered | p50 | p95 | p99 | max |" in (
            summary
        )
        assert "block_body" in summary

    def test_tolerates_outcomes_without_percentiles(self):
        """Older pickled/stubbed outcomes may lack the new field."""
        from types import SimpleNamespace

        from repro.analysis.report import render_chaos_summary
        from repro.sim.chaos import ChaosConfig, run_chaos

        outcome = run_chaos(
            ChaosConfig(seed=3, n_blocks=4, queries=0), limits=TEST_LIMITS
        )
        stub = SimpleNamespace(
            **{
                name: getattr(outcome, name)
                for name in dir(outcome)
                if not name.startswith("_")
                and name != "latency_percentiles"
            }
        )
        summary = render_chaos_summary(stub)
        assert "## Delivery latency (virtual time)" not in summary
        assert "cluster integrity" in summary


class TestTraceSummaryReport:
    def test_renders_latency_timelines_and_phases(self):
        from repro.analysis.report import render_trace_summary
        from repro.obs.summary import summarize
        from repro.obs.tracer import Tracer, tracing

        tracer = Tracer()
        with tracing(tracer):
            deployment, _ = ici_deployment()
            with tracer.span("stream"):
                deployment.run()
        summary = render_trace_summary(summarize(tracer), title="T")
        assert summary.startswith("# T")
        assert "## Delivery latency by message kind (virtual time)" in (
            summary
        )
        assert "## Per-node timelines" in summary
        assert "## Phases" in summary
        assert "| stream |" in summary

    def test_single_deployment_nodes_sort_numerically(self):
        from repro.analysis.report import render_trace_summary
        from repro.obs.summary import summarize
        from repro.obs.tracer import Tracer, tracing

        tracer = Tracer()
        with tracing(tracer):
            deployment, _ = ici_deployment()
            deployment.run()
        summary = render_trace_summary(summarize(tracer))
        rows = [
            line.split("|")[1].strip()
            for line in summary.splitlines()
            if line.startswith("| ") and line.split("|")[1].strip().isdigit()
        ]
        assert rows == sorted(rows, key=int)
        assert len(rows) > 2
