"""Tests for the markdown deployment report generator."""

from __future__ import annotations

import io

from repro.analysis.report import (
    render_deployment_report,
    write_deployment_report,
)
from repro.baselines.full_replication import FullReplicationDeployment
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def ici_deployment(**kwargs):
    kwargs.setdefault("n_clusters", 4)
    kwargs.setdefault("replication", 1)
    kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(16, config=ICIConfig(**kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    runner.produce_blocks(4, txs_per_block=3)
    return deployment, runner


class TestReportSections:
    def test_contains_all_core_sections(self):
        deployment, _ = ici_deployment()
        report = render_deployment_report(deployment)
        for heading in (
            "## Population",
            "## Storage",
            "## Traffic",
            "## Verification",
            "## Latency",
        ):
            assert heading in report

    def test_membership_events_after_join_and_leave(self):
        deployment, _ = ici_deployment()
        deployment.join_new_node()
        deployment.run()
        victim = deployment.clusters.members_of(0)[1]
        deployment.leave_node(victim)
        deployment.run()
        report = render_deployment_report(deployment)
        assert "## Membership events" in report
        assert "join" in report
        assert "leave" in report

    def test_parity_reported(self):
        deployment, _ = ici_deployment(
            replication=1, parity_group_size=3
        )
        report = render_deployment_report(deployment)
        assert "parity bytes" in report
        assert "parity groups" in report

    def test_reorgs_reported(self):
        deployment, runner = ici_deployment()
        runner.produce_fork(fork_from_height=2, length=3)
        report = render_deployment_report(deployment)
        assert "reorgs" in report

    def test_compact_hit_rate_reported(self):
        deployment = ICIDeployment(
            12,
            config=ICIConfig(
                n_clusters=3,
                compact_blocks=True,
                limits=TEST_LIMITS,
            ),
        )
        runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
        runner.produce_blocks_via_relay(3, txs_per_block=3)
        report = render_deployment_report(deployment)
        assert "compact mempool hit rate" in report

    def test_works_for_baselines(self):
        deployment = FullReplicationDeployment(8, limits=TEST_LIMITS)
        ScenarioRunner(deployment, limits=TEST_LIMITS).produce_blocks(
            2, txs_per_block=2
        )
        report = render_deployment_report(deployment, title="baseline")
        assert report.startswith("# baseline")
        assert "## Storage" in report

    def test_write_to_stream(self):
        deployment, _ = ici_deployment()
        buffer = io.StringIO()
        write_deployment_report(deployment, buffer)
        assert buffer.getvalue().endswith("\n")
        assert "## Traffic" in buffer.getvalue()

    def test_tables_are_well_formed_markdown(self):
        deployment, _ = ici_deployment()
        report = render_deployment_report(deployment)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3
