"""Integration tests: graceful departure, crash repair, parity recovery."""

from __future__ import annotations

import pytest

from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.core.parity import ParityManager, RecoveryReport
from repro.errors import ClusteringError, ConfigurationError, StorageError
from repro.sim.runner import ScenarioRunner
from tests.conftest import TEST_LIMITS


def deployed(n_nodes=20, n_blocks=10, **config_kwargs):
    config_kwargs.setdefault("n_clusters", 4)
    config_kwargs.setdefault("replication", 2)
    config_kwargs.setdefault("limits", TEST_LIMITS)
    deployment = ICIDeployment(n_nodes, config=ICIConfig(**config_kwargs))
    runner = ScenarioRunner(deployment, limits=TEST_LIMITS)
    report = runner.produce_blocks(n_blocks, txs_per_block=4)
    return deployment, report


def copies_per_block(deployment, cluster_id):
    members = deployment.clusters.members_of(cluster_id)
    return [
        sum(
            deployment.nodes[m].store.has_body(header.block_hash)
            for m in members
        )
        for header in deployment.ledger.store.iter_active_headers()
    ]


class TestGracefulDeparture:
    def test_leaver_removed_and_integrity_kept(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        report = deployment.leave_node(victim)
        deployment.run()
        assert report.complete and report.graceful
        assert victim not in deployment.nodes
        assert not deployment.clusters.contains(victim)
        assert deployment.cluster_holds_full_ledger(cluster)

    def test_replication_count_restored_exactly(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        deployment.leave_node(victim)
        deployment.run()
        assert all(c == 2 for c in copies_per_block(deployment, cluster))

    @pytest.mark.parametrize(
        "placement", ["hash", "modulo", "round_robin"]
    )
    def test_all_placements_repair_correctly(self, placement):
        deployment, _ = deployed(placement=placement)
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        report = deployment.leave_node(victim)
        deployment.run()
        assert report.complete
        assert all(c == 2 for c in copies_per_block(deployment, cluster))

    def test_rendezvous_moves_least(self):
        moved = {}
        for placement in ("hash", "modulo"):
            deployment, _ = deployed(placement=placement)
            cluster = deployment.nodes[0].cluster_id
            victim = deployment.clusters.members_of(cluster)[1]
            report = deployment.leave_node(victim)
            deployment.run()
            moved[placement] = report.blocks_transferred
        assert moved["hash"] <= moved["modulo"]

    def test_departed_node_unregistered_from_network(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        deployment.leave_node(victim)
        deployment.run()
        assert victim not in deployment.network.node_ids

    def test_unknown_node_rejected(self):
        deployment, _ = deployed()
        with pytest.raises(ClusteringError):
            deployment.leave_node(999)

    def test_departure_below_replication_rejected(self):
        # clusters of 2 with replication 2: nobody may leave.
        deployment, _ = deployed(n_nodes=8, n_clusters=4, replication=2)
        with pytest.raises(ClusteringError):
            deployment.leave_node(0)

    def test_departures_recorded_in_metrics(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[1]
        deployment.leave_node(victim)
        deployment.run()
        assert len(deployment.metrics.departures) == 1
        assert deployment.metrics.departures[0].node_id == victim

    def test_sequential_departures(self):
        deployment, _ = deployed(n_nodes=24, n_clusters=3, replication=2)
        cluster = deployment.nodes[0].cluster_id
        for _ in range(3):
            victim = deployment.clusters.members_of(cluster)[-1]
            report = deployment.leave_node(victim)
            deployment.run()
            assert report.complete
        assert deployment.cluster_holds_full_ledger(cluster)


class TestCrashRepair:
    def test_r2_crash_fully_repaired(self):
        deployment, _ = deployed(replication=2)
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        report = deployment.repair_after_crash(victim)
        deployment.run()
        assert report.complete and not report.graceful
        assert not report.lost_blocks
        assert deployment.cluster_holds_full_ledger(cluster)
        assert all(c == 2 for c in copies_per_block(deployment, cluster))

    def test_r1_crash_loses_victims_blocks(self):
        deployment, _ = deployed(
            n_nodes=16, n_clusters=4, replication=1
        )
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        held = deployment.nodes[victim].store.body_count
        non_genesis_held = sum(
            not block.header.is_genesis
            for block in deployment.nodes[victim].store.iter_bodies()
        )
        report = deployment.repair_after_crash(victim)
        deployment.run()
        assert len(report.lost_blocks) == non_genesis_held
        assert held >= non_genesis_held

    def test_genesis_never_lost(self):
        """Genesis is a hardcoded constant — regenerated, not fetched."""
        deployment, _ = deployed(
            n_nodes=16, n_clusters=4, replication=1
        )
        genesis_hash = deployment.ledger.active_hash_at(0)
        for view in deployment.clusters.views():
            holder = next(
                m
                for m in view.members
                if deployment.nodes[m].store.has_body(genesis_hash)
            )
            report = deployment.repair_after_crash(holder)
            deployment.run()
            assert genesis_hash not in report.lost_blocks
            members = deployment.clusters.members_of(view.cluster_id)
            assert any(
                deployment.nodes[m].store.has_body(genesis_hash)
                for m in members
            )
            break  # one cluster suffices

    def test_crash_forces_node_offline(self):
        deployment, _ = deployed()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        deployment.repair_after_crash(victim)
        deployment.run()
        assert victim not in deployment.nodes


class TestParityExtension:
    def make_parity_deployment(self, n_blocks=16):
        deployment, report = deployed(
            n_nodes=20,
            n_clusters=2,
            replication=1,
            parity_group_size=4,
            n_blocks=n_blocks,
        )
        deployment.parity.flush(deployment)
        return deployment, report

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ICIConfig(parity_group_size=1)
        with pytest.raises(ConfigurationError):
            ICIConfig(parity_group_size=-1)
        with pytest.raises(StorageError):
            ParityManager(group_size=1)

    def test_groups_seal_as_blocks_finalize(self):
        deployment, _ = self.make_parity_deployment()
        assert deployment.parity.sealed_groups > 0
        assert deployment.parity.total_parity_bytes > 0

    def test_stripes_are_holder_disjoint(self):
        """No member holds two bodies of the same sealed group."""
        deployment, _ = self.make_parity_deployment()
        parity = deployment.parity
        for group_id, sealed in parity._sealed.items():
            holders_seen: set[int] = set()
            for member_hash in sealed.group.member_ids:
                header = deployment.ledger.store.header(member_hash)
                holders = deployment.holders_in_cluster(
                    header, sealed.cluster_id
                )
                for holder in holders:
                    assert holder not in holders_seen
                    holders_seen.add(holder)
            assert sealed.parity_holder not in holders_seen

    def test_crash_with_parity_loses_nothing(self):
        deployment, _ = self.make_parity_deployment()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        report = deployment.repair_after_crash(victim)
        deployment.run()
        assert not report.lost_blocks
        assert deployment.cluster_holds_full_ledger(cluster)

    def test_recovered_blocks_verify_against_headers(self):
        deployment, _ = self.make_parity_deployment()
        cluster = deployment.nodes[0].cluster_id
        victim = deployment.clusters.members_of(cluster)[0]
        lost_bodies = [
            block.block_hash
            for block in deployment.nodes[victim].store.iter_bodies()
            if not block.header.is_genesis
        ]
        deployment.repair_after_crash(victim)
        deployment.run()
        members = deployment.clusters.members_of(cluster)
        for block_hash in lost_bodies:
            holder = next(
                m
                for m in members
                if deployment.nodes[m].store.has_body(block_hash)
            )
            block = deployment.nodes[holder].store.body(block_hash)
            assert block.verify_merkle_commitment()

    def test_parity_cheaper_than_extra_replica(self):
        with_parity, _ = self.make_parity_deployment()
        r2, _ = deployed(
            n_nodes=20, n_clusters=2, replication=2, n_blocks=16
        )
        parity_bodies = sum(
            r.body_bytes for r in with_parity.storage_report().per_node
        ) + with_parity.parity.total_parity_bytes
        r2_bodies = sum(
            r.body_bytes for r in r2.storage_report().per_node
        )
        assert parity_bodies < 0.8 * r2_bodies

    def test_double_loss_in_group_unrecoverable(self):
        deployment, _ = self.make_parity_deployment()
        parity = deployment.parity
        # Pick a sealed group, delete two of its bodies everywhere.
        group_id, sealed = next(iter(parity._sealed.items()))
        victims = sealed.group.member_ids[:2]
        members = deployment.clusters.members_of(sealed.cluster_id)
        for block_hash in victims:
            for m in members:
                deployment.nodes[m].unassign_body(block_hash)
        recovery = RecoveryReport()
        block = parity.recover_block(
            deployment, sealed.cluster_id, victims[0], recovery
        )
        assert block is None
        assert victims[0] in recovery.unrecoverable

    def test_recovery_reads_are_accounted(self):
        deployment, _ = self.make_parity_deployment()
        parity = deployment.parity
        group_id, sealed = next(iter(parity._sealed.items()))
        target = sealed.group.member_ids[0]
        members = deployment.clusters.members_of(sealed.cluster_id)
        for m in members:
            deployment.nodes[m].unassign_body(target)
        recovery = RecoveryReport()
        block = parity.recover_block(
            deployment, sealed.cluster_id, target, recovery
        )
        assert block is not None
        assert recovery.bytes_read > 0
        assert recovery.parity_bytes_read > 0

    def test_departed_parity_holder_still_charges_survivor_reads(self):
        """Churn-then-recover: reads before the parity check are charged.

        A group seals, churn removes the parity holder, and only then a
        body is lost.  Recovery must fail (the parity chunk left with its
        holder) — but the survivor bodies were read *before* the failure
        was known, so ``bytes_read`` must count them, exactly as the
        missing-survivor abort path charges its partial reads.
        """
        deployment, _ = self.make_parity_deployment()
        parity = deployment.parity
        # A group whose parity holder may depart (replication=1 clusters
        # of 10: any member holding only its own replicas can leave).
        group_id, sealed = next(iter(parity._sealed.items()))
        deployment.leave_node(sealed.parity_holder)
        deployment.run()
        assert not deployment.network.is_online(sealed.parity_holder)
        target = sealed.group.member_ids[0]
        members = deployment.clusters.members_of(sealed.cluster_id)
        for m in members:
            deployment.nodes[m].unassign_body(target)
        recovery = RecoveryReport()
        block = parity.recover_block(
            deployment, sealed.cluster_id, target, recovery
        )
        assert block is None
        assert target in recovery.unrecoverable
        assert recovery.bytes_read > 0, (
            "survivor reads preceding the parity-holder failure "
            "must be charged to the report"
        )
        assert recovery.parity_bytes_read == 0

    def test_flush_seals_partial_stripes(self):
        deployment, _ = deployed(
            n_nodes=20,
            n_clusters=2,
            replication=1,
            parity_group_size=50,  # never fills naturally
            n_blocks=6,
        )
        assert deployment.parity.sealed_groups == 0
        sealed = deployment.parity.flush(deployment)
        assert sealed > 0
        assert deployment.parity.sealed_groups == sealed
