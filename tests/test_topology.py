"""Unit + property tests for peer-graph topologies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.topology import (
    clustered_topology,
    full_mesh,
    is_connected,
    random_regular,
    ring,
)


class TestFullMesh:
    def test_everyone_peers_with_everyone(self):
        topology = full_mesh([0, 1, 2])
        assert topology[0] == (1, 2)
        assert topology[1] == (0, 2)
        assert topology[2] == (0, 1)

    def test_single_node(self):
        assert full_mesh([7]) == {7: ()}

    def test_connected(self):
        assert is_connected(full_mesh(list(range(6))))


class TestRing:
    def test_ring_degree_two(self):
        topology = ring([0, 1, 2, 3])
        for peers in topology.values():
            assert len(peers) == 2
        assert is_connected(topology)

    def test_two_nodes(self):
        topology = ring([0, 1])
        assert topology[0] == (1,)
        assert topology[1] == (0,)

    def test_single_node(self):
        assert ring([0]) == {0: ()}


class TestRandomRegular:
    def test_degree_bounds(self):
        topology = random_regular(list(range(30)), degree=4, seed=1)
        for peers in topology.values():
            assert 4 <= len(peers) <= 12

    def test_connected(self):
        topology = random_regular(list(range(50)), degree=3, seed=2)
        assert is_connected(topology)

    def test_small_population_falls_back_to_mesh(self):
        topology = random_regular([0, 1, 2], degree=8)
        assert topology == full_mesh([0, 1, 2])

    def test_symmetry(self):
        topology = random_regular(list(range(20)), degree=3, seed=3)
        for node, peers in topology.items():
            for peer in peers:
                assert node in topology[peer]

    def test_no_self_loops(self):
        topology = random_regular(list(range(20)), degree=3, seed=4)
        for node, peers in topology.items():
            assert node not in peers

    def test_bad_degree(self):
        with pytest.raises(ConfigurationError):
            random_regular([0, 1], degree=0)

    def test_deterministic_under_seed(self):
        a = random_regular(list(range(15)), degree=3, seed=9)
        b = random_regular(list(range(15)), degree=3, seed=9)
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=100),
    )
    def test_always_connected_property(self, n, degree, seed):
        topology = random_regular(list(range(n)), degree=degree, seed=seed)
        assert is_connected(topology)


class TestClusteredTopology:
    def test_intra_cluster_mesh(self):
        clusters = [[0, 1, 2], [3, 4, 5]]
        topology = clustered_topology(clusters, seed=0)
        assert 1 in topology[0] and 2 in topology[0]
        assert 4 in topology[3] and 5 in topology[3]

    def test_bridges_exist(self):
        clusters = [[0, 1, 2], [3, 4, 5]]
        topology = clustered_topology(clusters, inter_cluster_links=2, seed=0)
        cross = [
            (a, b)
            for a in (0, 1, 2)
            for b in topology[a]
            if b in (3, 4, 5)
        ]
        assert cross

    def test_connected_overall(self):
        clusters = [list(range(i * 4, i * 4 + 4)) for i in range(5)]
        topology = clustered_topology(clusters, seed=1)
        assert is_connected(topology)

    def test_empty_cluster_tolerated(self):
        topology = clustered_topology([[0, 1], []], seed=0)
        assert set(topology) == {0, 1}

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=50),
    )
    def test_clustered_always_connected(self, k, size, seed):
        clusters = [
            list(range(i * size, (i + 1) * size)) for i in range(k)
        ]
        assert is_connected(clustered_topology(clusters, seed=seed))
