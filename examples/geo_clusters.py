"""Geographic clustering: latency-aware formation on a coordinate plane.

Places 40 nodes in 5 geographic regions, forms clusters three ways
(random / k-means / latency-greedy), and measures what cluster formation
does to intra-cluster retrieval latency under a distance-based latency
model — the E10 ablation as a runnable demo.

Run:  python examples/geo_clusters.py
"""

from __future__ import annotations

import statistics

from repro import ICIConfig, ICIDeployment, ScenarioRunner
from repro.analysis.tables import format_seconds, render_table
from repro.clustering.coordinates import (
    mean_pairwise_distance,
    place_regions,
)
from repro.net.latency import CoordinateLatency
from repro.net.network import Network
from repro.sim.scenario import BENCH_LIMITS

N_NODES = 40
N_CLUSTERS = 5


def run_with(clustering: str) -> tuple[float, float]:
    """Returns (mean intra-cluster spread, mean retrieval latency)."""
    coordinates = place_regions(N_NODES, n_regions=N_CLUSTERS, seed=11)
    deployment = ICIDeployment(
        N_NODES,
        config=ICIConfig(
            n_clusters=N_CLUSTERS,
            replication=1,
            clustering=clustering,
            limits=BENCH_LIMITS,
            seed=11,
        ),
        network=Network(latency=CoordinateLatency(coordinates)),
        coordinates=coordinates,
    )
    runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
    report = runner.produce_blocks(8, txs_per_block=5)

    spread = statistics.fmean(
        mean_pairwise_distance([coordinates[m] for m in view.members])
        for view in deployment.clusters.views()
    )

    latencies = []
    for block_hash in report.block_hashes[:4]:
        header = deployment.ledger.store.header(block_hash)
        for view in deployment.clusters.views():
            holders = set(
                deployment.holders_in_cluster(header, view.cluster_id)
            )
            for requester in [
                m for m in view.members if m not in holders
            ][:3]:
                record = deployment.retrieve_block(requester, block_hash)
                deployment.run()
                if record.latency is not None:
                    latencies.append(record.latency)
    return spread, statistics.fmean(latencies)


def main() -> None:
    rows = []
    for clustering in ("random", "kmeans", "latency"):
        spread, latency = run_with(clustering)
        rows.append(
            (clustering, f"{spread:.1f}", format_seconds(latency))
        )
    print(
        render_table(
            [
                "clustering",
                "mean intra-cluster distance",
                "mean retrieval latency",
            ],
            rows,
            title=(
                f"Cluster formation on a {N_CLUSTERS}-region map "
                f"(N={N_NODES}, distance-proportional latency)"
            ),
        )
    )
    print(
        "\nrandom clusters span the whole map, so fetching a body means a"
        "\ncross-continent round trip; coordinate-aware formation keeps"
        "\nholders nearby. The default stays 'random' because its storage"
        "\nmath is exact and membership is not attacker-choosable."
    )


if __name__ == "__main__":
    main()
