"""Quickstart: run an ICIStrategy network end to end.

Spins up 40 nodes in 5 clusters, streams 12 blocks of signed UTXO
transactions through collaborative dissemination + verification, then
shows what each node actually stores and fetches a block a node does not
hold from its cluster.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ICIConfig, ICIDeployment, ScenarioRunner
from repro.analysis.tables import format_bytes, format_seconds, render_table
from repro.sim.scenario import BENCH_LIMITS


def main() -> None:
    # 1. Deploy: 40 nodes, 5 clusters of 8, each block stored twice per
    #    cluster (replication 2).
    config = ICIConfig(n_clusters=5, replication=2, limits=BENCH_LIMITS)
    deployment = ICIDeployment(n_nodes=40, config=config)
    print(
        f"deployed {deployment.node_count} nodes in "
        f"{deployment.clusters.cluster_count} clusters"
    )

    # 2. Stream 12 blocks of wallet-to-wallet payments through it.
    runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
    report = runner.produce_blocks(12, txs_per_block=8)
    print(
        f"produced {report.blocks_produced} blocks / "
        f"{report.transactions_produced} transactions; "
        f"all clusters finalized {deployment.total_finalized_blocks()}"
    )

    # 3. Storage: every node keeps all headers but only its slice of
    #    bodies, so per-node storage is far below the full ledger.
    ledger_bytes = deployment.ledger.store.stored_bytes
    storage = deployment.storage_report()
    print()
    print(
        render_table(
            ["quantity", "value"],
            [
                ("full ledger", format_bytes(ledger_bytes)),
                ("mean per node", format_bytes(storage.mean_node_bytes)),
                ("max per node", format_bytes(storage.max_node_bytes)),
                (
                    "saving vs full replication",
                    f"{100 * (1 - storage.mean_node_bytes / ledger_bytes):.1f}%",
                ),
            ],
            title="Storage",
        )
    )

    # 4. Integrity: each cluster still collectively holds everything.
    intact = all(
        deployment.cluster_holds_full_ledger(view.cluster_id)
        for view in deployment.clusters.views()
    )
    print(f"\nintra-cluster integrity: {'OK' if intact else 'VIOLATED'}")

    # 5. Retrieval: a non-holder fetches a body from a cluster-mate.
    target = report.block_hashes[3]
    header = deployment.ledger.store.header(target)
    cluster0 = deployment.nodes[0].cluster_id
    holders = set(deployment.holders_in_cluster(header, cluster0))
    requester = next(
        m for m in deployment.clusters.members_of(cluster0)
        if m not in holders
    )
    record = deployment.retrieve_block(requester, target)
    deployment.run()
    print(
        f"node {requester} fetched block #{header.height} from a "
        f"cluster-mate in {format_seconds(record.latency)}"
    )


if __name__ == "__main__":
    main()
