"""Storage comparison: ICIStrategy vs RapidChain vs full replication.

Feeds the identical block stream (same seed → byte-identical blocks)
through all three strategies and prints the paper's central comparison:
per-node and network-total storage, plus dissemination traffic.

Run:  python examples/storage_comparison.py
"""

from __future__ import annotations

from repro import (
    FullReplicationDeployment,
    ICIConfig,
    ICIDeployment,
    RapidChainDeployment,
    ScenarioRunner,
)
from repro.analysis.tables import format_bytes, render_table
from repro.sim.scenario import BENCH_LIMITS
from repro.storage.accounting import ici_total, rapidchain_total

N_NODES = 48
GROUPS = 6          # cluster/committee size 8
N_BLOCKS = 20


def main() -> None:
    deployments = {
        "full replication": FullReplicationDeployment(
            N_NODES, limits=BENCH_LIMITS
        ),
        "rapidchain": RapidChainDeployment(
            N_NODES, n_committees=GROUPS, limits=BENCH_LIMITS
        ),
        "ici (r=1)": ICIDeployment(
            N_NODES,
            config=ICIConfig(
                n_clusters=GROUPS, replication=1, limits=BENCH_LIMITS
            ),
        ),
        "ici (r=2)": ICIDeployment(
            N_NODES,
            config=ICIConfig(
                n_clusters=GROUPS, replication=2, limits=BENCH_LIMITS
            ),
        ),
    }

    rows = []
    reference_total = None
    for name, deployment in deployments.items():
        runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
        runner.produce_blocks(N_BLOCKS, txs_per_block=8)
        storage = deployment.storage_report()
        traffic = deployment.network.traffic.total_bytes
        if name == "rapidchain":
            reference_total = storage.total_bytes
        rows.append(
            (
                name,
                format_bytes(storage.mean_node_bytes),
                format_bytes(storage.total_bytes),
                format_bytes(traffic),
            )
        )

    print(
        render_table(
            ["strategy", "bytes/node", "network total", "traffic"],
            rows,
            title=(
                f"Identical {N_BLOCKS}-block stream through each strategy "
                f"(N={N_NODES}, group size {N_NODES // GROUPS})"
            ),
        )
    )

    # The paper's headline at its own scale, from the closed forms:
    print()
    rc = rapidchain_total(1000, 250, 1.0)
    rows = [
        (
            f"ici m={m} r={r}",
            f"{100 * ici_total(1000, m, r, 1.0) / rc:.1f}%",
        )
        for m, r in ((16, 1), (32, 2), (62, 1), (250, 1))
    ]
    print(
        render_table(
            ["configuration", "% of RapidChain storage (N=1000, g=250)"],
            rows,
            title="Paper-scale closed forms (the abstract's 25% claim)",
        )
    )


if __name__ == "__main__":
    main()
