"""The abstract's three claims, regenerated in one run.

The ICDCS 2020 abstract makes three quantitative promises:

1. storage: "just needs 25% of storage space needed by Rapidchain";
2. communication: "reduce communication overhead by collaboratively
   storing and verifying blocks through in-cluster nodes";
3. bootstrapping: "could greatly save the overhead of bootstrapping".

This script reproduces all three — the storage claim at the paper's
literal scale (N=1000, committees of 250, a 2 GB ledger of 1 MB blocks)
via exact placement layout, the other two on the message-driven
simulator.

Run:  python examples/paper_numbers.py
"""

from __future__ import annotations

from repro import (
    FullReplicationDeployment,
    ICIConfig,
    ICIDeployment,
    RapidChainDeployment,
    ScenarioRunner,
)
from repro.analysis.tables import format_bytes, render_table
from repro.sim.scenario import BENCH_LIMITS
from repro.storage.communication import ici_advantage_factor
from repro.storage.layout import (
    balanced_clusters,
    ici_layout,
    rapidchain_layout,
    synthetic_chain,
)


def claim_1_storage() -> None:
    print("Claim 1 — 25% of RapidChain's storage (N=1000, 2 GB ledger)")
    blocks = synthetic_chain(2000, mean_body_bytes=1_000_000, seed=1)
    ici = ici_layout(
        balanced_clusters(1000, 62, seed=1), blocks, replication=1
    )  # clusters of ~16
    rapid = rapidchain_layout(
        balanced_clusters(1000, 4, seed=1), blocks
    )  # committees of 250
    ici_bodies = sum(r.body_bytes for r in ici.per_node)
    rapid_bodies = sum(r.body_bytes for r in rapid.per_node)
    print(
        render_table(
            ["quantity", "value"],
            [
                ("RapidChain network storage", format_bytes(rapid_bodies)),
                ("ICIStrategy network storage", format_bytes(ici_bodies)),
                ("ratio", f"{ici_bodies / rapid_bodies:.1%}  (claim: 25%)"),
                ("ICI bytes per node (mean)", format_bytes(ici_bodies / 1000)),
            ],
        )
    )


def claim_2_communication() -> None:
    print("\nClaim 2 — reduced communication overhead per block")
    n, groups, blocks = 48, 6, 10
    rows = []
    for name, deployment in (
        ("full replication", FullReplicationDeployment(n, limits=BENCH_LIMITS)),
        (
            "ici",
            ICIDeployment(
                n,
                config=ICIConfig(
                    n_clusters=groups, replication=1, limits=BENCH_LIMITS
                ),
            ),
        ),
    ):
        runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
        runner.produce_blocks(blocks, txs_per_block=8)
        rows.append(
            (
                name,
                format_bytes(
                    deployment.network.traffic.total_bytes / blocks
                ),
            )
        )
    print(render_table(["strategy", "traffic per block"], rows))
    print(
        "closed form at 1 MB blocks (N=1000, m=16): full/ici = "
        f"{ici_advantage_factor(1000, 16, 1, 1_000_000):.1f}x"
    )


def claim_3_bootstrap() -> None:
    print("\nClaim 3 — greatly reduced bootstrapping overhead")
    # Groups of 12: a RapidChain joiner downloads its committee's whole
    # shard (D/4); an ICI joiner only its assigned slice (≈ D/13).
    n, groups, blocks = 48, 4, 30
    rows = []
    for name, deployment in (
        ("full node", FullReplicationDeployment(n, limits=BENCH_LIMITS)),
        (
            "rapidchain",
            RapidChainDeployment(
                n, n_committees=groups, limits=BENCH_LIMITS
            ),
        ),
        (
            "ici",
            ICIDeployment(
                n,
                config=ICIConfig(
                    n_clusters=groups, replication=1, limits=BENCH_LIMITS
                ),
            ),
        ),
    ):
        runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
        runner.produce_blocks(blocks, txs_per_block=8)
        join = deployment.join_new_node()
        deployment.run()
        rows.append((name, format_bytes(join.total_bytes)))
    print(render_table(["strategy", "joiner download"], rows))


if __name__ == "__main__":
    claim_1_storage()
    claim_2_communication()
    claim_3_bootstrap()
