"""Address history: the chain explorer over collaborative storage.

Streams blocks through an ICIStrategy network, then answers the classic
wallet questions — balance and full credit/debit history — from the
reorg-aware explorer index, and shows the index tracking a chain
reorganization (stale-branch history disappears).

Run:  python examples/address_history.py
"""

from __future__ import annotations

from repro import ICIConfig, ICIDeployment, ScenarioRunner
from repro.analysis.tables import render_table
from repro.crypto.keys import KeyPair
from repro.sim.scenario import BENCH_LIMITS


def print_history(deployment, address: bytes, label: str) -> None:
    events = deployment.explorer.history(address)
    rows = [
        (
            event.height,
            event.direction,
            f"{event.amount:,}",
            event.txid.hex()[:12] + "…",
        )
        for event in events[-8:]
    ]
    print(
        render_table(
            ["height", "dir", "amount", "txid"],
            rows,
            title=(
                f"{label}: balance "
                f"{deployment.explorer.balance(address):,} "
                f"({len(events)} events, last {len(rows)} shown)"
            ),
        )
    )


def main() -> None:
    deployment = ICIDeployment(
        16, config=ICIConfig(n_clusters=4, limits=BENCH_LIMITS)
    )
    runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
    report = runner.produce_blocks(10, txs_per_block=6)

    faucet = KeyPair.from_seed(0).address
    payee = KeyPair.from_seed(3).address
    print_history(deployment, faucet, "faucet wallet")
    print()
    print_history(deployment, payee, "wallet #3")

    # A reorg orphans the last two blocks; their history must vanish.
    orphaned = [
        tx.txid for block in report.blocks[8:] for tx in block.transactions
    ]
    runner.produce_fork(fork_from_height=8, length=3)
    print(
        f"\nreorg! chain now at height {deployment.ledger.height} "
        f"({deployment.reorg_count} reorg)"
    )
    from repro.errors import UnknownTransactionError

    gone = 0
    for txid in orphaned:
        try:
            deployment.explorer.locate_transaction(txid)
        except UnknownTransactionError:
            gone += 1
    print(
        f"{gone}/{len(orphaned)} stale-branch transactions correctly "
        "dropped from the index"
    )
    print()
    print_history(deployment, faucet, "faucet wallet (post-reorg)")


if __name__ == "__main__":
    main()
