"""SPV wallet: a headers-only client verifying payments via a cluster.

A light wallet stores 84 bytes per block instead of the ledger.  To check
an incoming payment it asks any cluster node; the request routes to the
block's holder, which answers with the transaction plus its Merkle audit
path; the wallet folds the path against the header it already has.

Run:  python examples/spv_wallet.py
"""

from __future__ import annotations

from repro import ICIConfig, ICIDeployment, ScenarioRunner
from repro.analysis.tables import format_bytes, format_seconds, render_table
from repro.crypto.hashing import sha256
from repro.sim.scenario import BENCH_LIMITS


def main() -> None:
    deployment = ICIDeployment(
        n_nodes=20,
        config=ICIConfig(n_clusters=4, replication=1, limits=BENCH_LIMITS),
    )
    runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
    report = runner.produce_blocks(10, txs_per_block=10)

    wallet = deployment.attach_light_client()
    ledger_bytes = deployment.ledger.store.stored_bytes
    print(
        f"light wallet synced: {wallet.store.header_count} headers, "
        f"{format_bytes(wallet.storage_bytes)} "
        f"(vs {format_bytes(ledger_bytes)} full ledger)"
    )

    # Verify three real payments from different blocks.
    rows = []
    for block in (report.blocks[2], report.blocks[5], report.blocks[8]):
        tx = block.transactions[-1]
        record = deployment.spv_check(
            wallet.node_id, block.block_hash, tx.txid
        )
        deployment.run()
        rows.append(
            (
                f"#{block.height}",
                tx.txid.hex()[:12] + "…",
                "valid" if record.verified else "INVALID",
                format_bytes(record.proof_bytes),
                format_seconds(record.latency),
            )
        )

    # And one fabricated payment the cluster must refuse to prove.
    block = report.blocks[2]
    record = deployment.spv_check(
        wallet.node_id, block.block_hash, sha256(b"forged payment")
    )
    deployment.run()
    rows.append(
        (
            f"#{block.height}",
            "forged…",
            "valid" if record.verified else "rejected",
            "-",
            format_seconds(record.latency),
        )
    )

    print()
    print(
        render_table(
            ["block", "txid", "verdict", "proof size", "latency"],
            rows,
            title="SPV payment checks",
        )
    )


if __name__ == "__main__":
    main()
