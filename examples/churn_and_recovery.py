"""Churn: holder crashes, retrieval failover, and cheap bootstrapping.

Demonstrates the operational story of ICIStrategy:
  1. a block's primary holder crashes → a cluster-mate's retrieval
     transparently fails over to the replica;
  2. a brand-new node joins → it downloads headers plus only its assigned
     slice of bodies, then immediately serves its cluster;
  3. availability math: how replication r bounds what a crash can lose.

Run:  python examples/churn_and_recovery.py
"""

from __future__ import annotations

from repro import ICIConfig, ICIDeployment, ScenarioRunner
from repro.analysis.tables import format_bytes, format_seconds, render_table
from repro.sim.scenario import BENCH_LIMITS
from repro.storage.replication import analytic_block_survival


def main() -> None:
    deployment = ICIDeployment(
        n_nodes=24,
        config=ICIConfig(n_clusters=3, replication=2, limits=BENCH_LIMITS),
    )
    runner = ScenarioRunner(deployment, limits=BENCH_LIMITS)
    report = runner.produce_blocks(15, txs_per_block=6)
    print(
        f"chain at height {runner.chain_height}; "
        f"clusters of {24 // 3}, replication 2"
    )

    # --- 1. crash a holder, watch retrieval fail over ------------------
    target = report.block_hashes[5]
    header = deployment.ledger.store.header(target)
    cluster = deployment.nodes[0].cluster_id
    holders = deployment.holders_in_cluster(header, cluster)
    requester = next(
        m
        for m in deployment.clusters.members_of(cluster)
        if m not in holders
    )
    print(
        f"\nblock #{header.height} holders in cluster {cluster}: "
        f"{list(holders)}; crashing holder {holders[0]}"
    )
    deployment.network.set_online(holders[0], False)
    record = deployment.retrieve_block(requester, target)
    deployment.run()
    print(
        f"node {requester} still retrieved it in "
        f"{format_seconds(record.latency)} after {record.attempts} "
        f"attempt(s) (failover to replica {holders[1]})"
    )
    deployment.network.set_online(holders[0], True)

    # --- 2. a new node joins cheaply ------------------------------------
    ledger_bytes = deployment.ledger.store.stored_bytes
    join = deployment.join_new_node()
    deployment.run()
    print()
    print(
        render_table(
            ["quantity", "value"],
            [
                ("joiner node id", join.node_id),
                ("cluster joined", join.cluster_id),
                ("headers downloaded", format_bytes(join.header_bytes)),
                ("bodies downloaded", format_bytes(join.body_bytes)),
                ("bodies fetched", join.bodies_fetched),
                ("total download", format_bytes(join.total_bytes)),
                ("full ledger (for comparison)", format_bytes(ledger_bytes)),
                ("sync time", format_seconds(join.duration)),
                (
                    "freed from displaced holders",
                    format_bytes(join.migration_bytes_freed),
                ),
            ],
            title="Bootstrap report",
        )
    )
    intact = deployment.cluster_holds_full_ledger(join.cluster_id)
    print(f"cluster integrity after join: {'OK' if intact else 'VIOLATED'}")

    # --- 3. what can a crash lose? --------------------------------------
    print()
    rows = [
        (
            f"r={r}",
            *(
                f"{analytic_block_survival(8, r, p):.4f}"
                for p in (0.1, 0.3, 0.5)
            ),
        )
        for r in (1, 2, 3)
    ]
    print(
        render_table(
            ["replication", "p=0.1", "p=0.3", "p=0.5"],
            rows,
            title=(
                "P(block survives) when each member independently fails "
                "with probability p (cluster size 8)"
            ),
        )
    )


if __name__ == "__main__":
    main()
