"""Churn workloads: joins, graceful leaves, and crashes over time.

Real networks lose and gain members continuously; the strategy's claims
only matter if intra-cluster integrity survives that.  A
:class:`ChurnSchedule` draws a deterministic event sequence from
configured rates, and :class:`ChurnDriver` interleaves it with block
production on an ICI deployment, collecting what each event cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.core.icistrategy import ICIDeployment
from repro.errors import ClusteringError, ConfigurationError, StorageError
from repro.sim.runner import ScenarioRunner


class ChurnKind(Enum):
    """What happens to the population."""

    JOIN = "join"
    LEAVE = "leave"     # graceful: repairs before departure
    CRASH = "crash"     # abrupt: survivors repair after the fact


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, scheduled after a given block height."""

    after_block: int
    kind: ChurnKind


@dataclass(frozen=True)
class ChurnConfig:
    """Rates are events per produced block (expectation)."""

    join_rate: float = 0.1
    leave_rate: float = 0.05
    crash_rate: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for rate in (self.join_rate, self.leave_rate, self.crash_rate):
            if rate < 0:
                raise ConfigurationError("churn rates must be >= 0")


def make_schedule(config: ChurnConfig, n_blocks: int) -> list[ChurnEvent]:
    """Draw a deterministic event list for an ``n_blocks`` run."""
    rng = random.Random(config.seed)
    events: list[ChurnEvent] = []
    for block in range(1, n_blocks + 1):
        for kind, rate in (
            (ChurnKind.JOIN, config.join_rate),
            (ChurnKind.LEAVE, config.leave_rate),
            (ChurnKind.CRASH, config.crash_rate),
        ):
            if rng.random() < rate:
                events.append(ChurnEvent(after_block=block, kind=kind))
    return events


@dataclass
class ChurnOutcome:
    """Aggregate cost of a churn-endurance run."""

    blocks_produced: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    skipped_events: int = 0
    bootstrap_bytes: int = 0
    repair_bytes: int = 0
    lost_blocks: int = 0
    integrity_violations: int = 0
    population_history: list[int] = field(default_factory=list)


class ChurnDriver:
    """Interleaves block production with scheduled membership churn."""

    def __init__(
        self,
        deployment: ICIDeployment,
        runner: ScenarioRunner,
        config: ChurnConfig | None = None,
        settle_seconds: float | None = None,
    ) -> None:
        self.deployment = deployment
        self.runner = runner
        self.config = config or ChurnConfig()
        self._rng = random.Random(self.config.seed ^ 0x5A5A)
        # Settle mode (endurance runs): the anti-entropy sweep keeps
        # rescheduling itself, so a full drain would never return —
        # advance a bounded virtual-time window after each event instead
        # and audit integrity at the end of the run, not per event
        # (transient mid-repair deficits are the expected state).
        self.settle_seconds = settle_seconds

    def run(self, n_blocks: int, txs_per_block: int = 4) -> ChurnOutcome:
        """Produce ``n_blocks`` while applying the drawn churn schedule.

        After every event the driver checks intra-cluster integrity of
        the affected cluster and counts violations (expected to be zero
        for r ≥ 2 or parity-protected deployments).
        """
        schedule = make_schedule(self.config, n_blocks)
        by_block: dict[int, list[ChurnEvent]] = {}
        for event in schedule:
            by_block.setdefault(event.after_block, []).append(event)

        outcome = ChurnOutcome()
        for block_index in range(1, n_blocks + 1):
            self.runner.produce_blocks(1, txs_per_block=txs_per_block)
            outcome.blocks_produced += 1
            for event in by_block.get(block_index, []):
                self._apply(event, outcome)
            outcome.population_history.append(self.deployment.node_count)
        return outcome

    # ------------------------------------------------------------- events
    def _apply(self, event: ChurnEvent, outcome: ChurnOutcome) -> None:
        if event.kind is ChurnKind.JOIN:
            self._apply_join(outcome)
        else:
            self._apply_departure(event.kind, outcome)

    def _settle(self) -> None:
        """Let in-flight protocol traffic progress after an event."""
        if self.settle_seconds is None:
            self.deployment.run()
        else:
            self.deployment.network.clock.run_for(self.settle_seconds)

    def _apply_join(self, outcome: ChurnOutcome) -> None:
        report = self.deployment.join_new_node()
        self._settle()
        if not report.complete:
            outcome.skipped_events += 1
            return
        outcome.joins += 1
        outcome.bootstrap_bytes += report.total_bytes
        self._check_integrity(report.cluster_id, outcome)
        # New members join the proposer rotation immediately.
        self.runner.schedule.add(report.node_id)

    def _apply_departure(
        self, kind: ChurnKind, outcome: ChurnOutcome
    ) -> None:
        victim = self._pick_victim()
        if victim is None:
            outcome.skipped_events += 1
            return
        try:
            if kind is ChurnKind.LEAVE:
                report = self.deployment.leave_node(victim)
            else:
                report = self.deployment.repair_after_crash(victim)
        except (ClusteringError, StorageError):
            # StorageError: removing the victim would empty its cluster
            # (possible when faults already felled the other members) —
            # degrade to a skipped event rather than abort the run.
            outcome.skipped_events += 1
            return
        self._settle()
        if kind is ChurnKind.LEAVE:
            outcome.leaves += 1
        else:
            outcome.crashes += 1
        outcome.repair_bytes += report.bytes_moved
        outcome.lost_blocks += len(report.lost_blocks)
        self.runner.schedule.remove(victim)
        self._check_integrity(report.cluster_id, outcome)

    def _pick_victim(self) -> int | None:
        """A random live member whose cluster can afford to lose it.

        Liveness comes from the fault layer's view (``live_members``),
        not an ad-hoc membership list: a node the fault plan crashed or
        stalled is neither counted toward its cluster's spare capacity
        nor picked for departure, so churn composes with fault
        injection.  On clean networks every clustered member is online
        and the candidate list — and hence the RNG draw — is identical
        to the historical behaviour.
        """
        from repro.sim.faults import live_members

        minimum = max(self.deployment.config.replication + 1, 2)
        network = self.deployment.network
        candidates: list[int] = []
        for view in self.deployment.clusters.views():
            live = live_members(network, view.members)
            if len(live) > minimum:
                candidates.extend(live)
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _check_integrity(
        self, cluster_id: int, outcome: ChurnOutcome
    ) -> None:
        if self.settle_seconds is not None:
            # Endurance mode: mid-run deficits are the anti-entropy
            # engine's job; only the end-of-run audit is meaningful.
            return
        try:
            intact = self.deployment.cluster_holds_full_ledger(cluster_id)
        except ClusteringError:
            return
        if not intact:
            outcome.integrity_violations += 1
