"""Coded-archival vs adaptive-only storage comparison under Zipf reads.

The acceptance experiment for the archival tier
(:mod:`repro.storage.coded`): drive two same-seed deployments — both
with heat-aware adaptive replication, one additionally with the
Reed–Solomon archival tier — through an identical block stream and an
identical Zipf-skewed read stream, let the anti-entropy sweep converge
placements (and archive the cold tail) between read batches, and
compare:

* **total stored bytes** (replica bytes plus coded chunk bytes): the
  archival run must store meaningfully less, because every cold block
  drops from its adaptive floor of full replicas (``r - cold_margin``
  bodies per cluster) to ``n/k`` body-sizes of coded chunks;
* **read availability**: every query must still complete — cold reads
  fall through the replica failover tail into a lazy ``k``-chunk
  decode, whose cost is reported as read amplification, not failure.

The comparison runs at ``r = 3`` so the equal-durability framing is
honest: the adaptive-only cold floor is then two full replicas per
cluster (tolerates one holder loss), while the default ``3+1`` code
tolerates one chunk-holder loss at ``4/3 ≈ 1.33×`` the body size.

Between rounds the archival run is audited: every cluster must hold
every block — as replicas *or* ≥ ``k`` live chunks
(:func:`repro.sim.chaos.archival_cluster_integrity`) — and no block may
sit below its floor: the **coded floor** for archived blocks, the shed
floor for everything else.  Breaches are counted and pinned at zero.

Everything is seeded, so the whole outcome — byte totals, archival
stats, latency ranks — is a determinism signature the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.obs.summary import percentile
from repro.obs.tracer import Tracer
from repro.sim.runner import ScenarioRunner
from repro.sim.workload import ReadWorkloadConfig, ZipfReadWorkload


@dataclass(frozen=True)
class ArchivalCompareConfig:
    """One seeded archival-vs-adaptive-only comparison."""

    seed: int = 42
    n_nodes: int = 18
    n_clusters: int = 3
    #: ``r = 3`` so the adaptive cold floor (two replicas) and the
    #: default 3+1 code both tolerate one holder loss — equal
    #: durability, different bills.
    replication: int = 3
    n_blocks: int = 16
    txs_per_block: int = 4
    #: Total reads, split evenly across the convergence rounds.
    reads: int = 150
    zipf_exponent: float = 1.1
    #: Read-batch + sweep-window rounds after production.
    rounds: int = 6
    repair_cadence: float = 5.0
    #: Optional heat-model override (``None`` = HeatConfig defaults).
    heat: "object | None" = None
    #: Optional archival-code override (``None`` = ArchivalConfig 3+1).
    code: "object | None" = None
    backend: str = "serial"
    workers: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ConfigurationError("compare runs need at least 2 blocks")
        if self.reads < 1 or self.rounds < 1:
            raise ConfigurationError("reads/rounds must be >= 1")
        if self.repair_cadence <= 0:
            raise ConfigurationError("repair_cadence must be > 0")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be > 0")


@dataclass
class ArchivalCompareOutcome:
    """Both runs' storage bills, query outcomes, and coded-floor audit."""

    config: ArchivalCompareConfig
    #: Adaptive-only total (replica bytes; no coded tier).
    adaptive_bytes: int = 0
    #: Archival total: replica bytes *plus* coded chunk bytes.
    coded_bytes: int = 0
    adaptive_queries_completed: int = 0
    coded_queries_completed: int = 0
    adaptive_p95_latency: float = 0.0
    coded_p95_latency: float = 0.0
    archival_stats: dict[str, int] = field(default_factory=dict)
    archived_blocks: int = 0
    chunk_bytes: int = 0
    tier_counts: dict[str, int] = field(default_factory=dict)
    #: Per-round audits that found a cluster unable to produce a block
    #: (no replica and no decodable chunk set).
    coverage_breaches: int = 0
    #: Per-round audits that found a block below its (coded or shed)
    #: floor.
    floor_breaches: int = 0
    audit_rounds: int = 0
    #: The driven deployments, for the bench harness's simulated
    #: metrics (not part of the signature).
    adaptive_deployment: ICIDeployment | None = field(
        default=None, repr=False
    )
    coded_deployment: ICIDeployment | None = field(
        default=None, repr=False
    )
    tracer: Tracer | None = field(default=None, repr=False)

    @property
    def savings_fraction(self) -> float:
        """Stored bytes saved by the archival run, as a fraction."""
        if self.adaptive_bytes == 0:
            return 0.0
        return 1.0 - self.coded_bytes / self.adaptive_bytes

    @property
    def reads_ok(self) -> bool:
        """The archival run completed every query the baseline did."""
        return (
            self.coded_queries_completed >= self.adaptive_queries_completed
        )

    @property
    def converged_safely(self) -> bool:
        """No coverage hole or sub-floor block in any audit round."""
        return (
            self.audit_rounds > 0
            and self.coverage_breaches == 0
            and self.floor_breaches == 0
            and self.archival_stats.get("failed_reconstructions", 0) == 0
        )

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed)."""
        return {
            "adaptive_bytes": self.adaptive_bytes,
            "coded_bytes": self.coded_bytes,
            "adaptive_queries_completed": self.adaptive_queries_completed,
            "coded_queries_completed": self.coded_queries_completed,
            "adaptive_p95_latency": self.adaptive_p95_latency,
            "coded_p95_latency": self.coded_p95_latency,
            "archival_stats": dict(self.archival_stats),
            "archived_blocks": self.archived_blocks,
            "chunk_bytes": self.chunk_bytes,
            "tier_counts": dict(self.tier_counts),
            "coverage_breaches": self.coverage_breaches,
            "floor_breaches": self.floor_breaches,
            "audit_rounds": self.audit_rounds,
            "savings_bp": int(self.savings_fraction * 10_000),
        }


def archival_shed_floor_met(
    deployment: ICIDeployment, planner, tier
) -> bool:
    """Round-by-round floor: coded floor for archived, shed for the rest.

    The lenient convergence-time audit (the analogue of
    :func:`repro.sim.adaptive.shed_floor_met`): archived blocks must
    hold ≥ ``k`` live chunks on distinct members, everything else the
    replica shed floor ``min(target, r, live)``.  A deficit *toward* a
    hot target is convergence work, not a breach; the final audit runs
    the stricter :func:`repro.sim.chaos.archival_floor_met`.
    """
    from repro.sim.faults import live_members

    base = deployment.config.replication
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        for header in deployment.ledger.store.iter_active_headers():
            if header.is_genesis:
                continue
            block_hash = header.block_hash
            if tier.is_archived(view.cluster_id, block_hash):
                if not tier.coded_floor_ok(view.cluster_id, block_hash):
                    return False
                continue
            target = planner.target_for(block_hash)
            floor = min(max(target, 1), base, len(live))
            holders = sum(
                1
                for member in live
                if deployment.nodes[member].store.has_body(block_hash)
            )
            if holders < floor:
                return False
    return True


def _drive(
    config: ArchivalCompareConfig,
    limits: ValidationLimits,
    archival: bool,
    outcome: ArchivalCompareOutcome,
) -> ICIDeployment:
    """One side of the comparison: produce, read in rounds, sweep."""
    from repro.sim.backend import backend_scope, parse_backend
    from repro.sim.chaos import (
        archival_cluster_integrity,
        archival_floor_met,
    )

    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    with backend_scope(parse_backend(config.backend, config.workers)):
        deployment = ICIDeployment(config.n_nodes, config=ici)
    planner = deployment.enable_adaptive_replication(config.heat)
    tier = (
        deployment.enable_archival_tier(config.code) if archival else None
    )
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    report = runner.produce_blocks(
        config.n_blocks, txs_per_block=config.txs_per_block
    )
    block_hashes = report.block_hashes
    # Both sides replay the *same* read sequence: the workload is a pure
    # function of its seed and the (identical) population sizes.
    reads = ZipfReadWorkload(
        ReadWorkloadConfig(
            seed=config.seed ^ 0x2EAD, exponent=config.zipf_exponent
        )
    )
    node_ids = sorted(deployment.nodes)
    repair = deployment.repair
    per_round, remainder = divmod(config.reads, config.rounds)
    for round_index in range(config.rounds):
        batch = per_round + (1 if round_index < remainder else 0)
        for requester, block_hash in reads.reads(
            block_hashes, node_ids, batch
        ):
            deployment.retrieve_block(requester, block_hash)
        deployment.run()
        repair.start(cadence=config.repair_cadence)
        deployment.network.clock.run_for(config.repair_cadence * 2)
        repair.stop()
        deployment.run()
        if tier is not None:
            outcome.audit_rounds += 1
            if not all(
                archival_cluster_integrity(
                    deployment, tier, view.cluster_id
                )
                for view in deployment.clusters.views()
            ):
                outcome.coverage_breaches += 1
            if not archival_shed_floor_met(deployment, planner, tier):
                outcome.floor_breaches += 1

    completed = [
        record.completed_at - record.started_at
        for record in deployment.metrics.queries
        if record.completed_at is not None
    ]
    p95 = percentile(sorted(completed), 0.95) if completed else 0.0
    total_bytes = deployment.storage_report().total_bytes
    if tier is None:
        outcome.adaptive_bytes = total_bytes
        outcome.adaptive_queries_completed = len(completed)
        outcome.adaptive_p95_latency = p95
    else:
        outcome.coded_bytes = total_bytes + tier.total_chunk_bytes
        outcome.coded_queries_completed = len(completed)
        outcome.coded_p95_latency = p95
        outcome.archival_stats = tier.as_dict()
        outcome.archived_blocks = tier.archived_blocks
        outcome.chunk_bytes = tier.total_chunk_bytes
        outcome.tier_counts = planner.tier_counts()
        if not archival_floor_met(deployment, planner, tier):
            # Final state must also satisfy the strict tier-aware floor
            # (hot targets filled, coded floors held).
            outcome.floor_breaches += 1
    return deployment


def run_archival_compare(
    config: ArchivalCompareConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
    tracer: Tracer | None = None,
) -> ArchivalCompareOutcome:
    """Run the adaptive-only and archival deployments and compare.

    With a ``tracer``, both deployments attach to it (separate track
    labels), so one trace carries both timelines side by side —
    including the archival run's ``block_archived`` / ``block_thawed``
    instants and the "tier archival coded bytes" counter series.
    """
    from repro.obs.hooks import install_tracing

    config = config or ArchivalCompareConfig()
    outcome = ArchivalCompareOutcome(config=config, tracer=tracer)
    for archival in (False, True):
        deployment = _drive(config, limits, archival, outcome)
        if tracer is not None:
            install_tracing(
                deployment,
                tracer,
                label="archival" if archival else "adaptive",
            )
        if archival:
            outcome.coded_deployment = deployment
        else:
            outcome.adaptive_deployment = deployment
    return outcome
