"""Chaos scenarios: seeded end-to-end runs under the fault layer.

A chaos run drives the full ICIStrategy stack through hostile weather —
message drop/duplicate/delay rates, mid-run crashes and stalls, optional
partitions — then heals the network, reconciles every replica, and
checks the paper's core claim survived: **each cluster again holds the
complete ledger**.  Everything is derived from one seed, so the same
configuration reproduces identical fault schedules, retry/timeout
counters, and outcomes run after run (the chaos test suite pins this).

Shape of a run (:func:`run_chaos`):

1. produce the first half of the block stream under message-level faults;
2. crash/stall deterministically-chosen victims (removed from the
   proposer rotation — a crashed proposer would strand its block) and,
   optionally, cut a minority partition;
3. produce the second half degraded — the engines' retry probes carry
   delivery as far as live replicas allow;
4. heal, restore the rotation, and :func:`reconcile` every node (header
   catch-up, assigned-body refetch through the query path, finality
   re-kick via the verification probes);
5. exercise a join (bootstrap retries) and a batch of queries under the
   still-lossy link rates;
6. audit per-cluster integrity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.obs.hooks import install_tracing
from repro.obs.summary import summarize
from repro.obs.tracer import Tracer
from repro.protocols.reliability import RetryPolicy
from repro.sim.faults import FaultConfig, FaultPlan, PartitionWindow
from repro.sim.runner import ScenarioRunner


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded chaos scenario (all randomness derives from ``seed``)."""

    seed: int = 0
    n_nodes: int = 16
    n_clusters: int = 4
    replication: int = 2
    n_blocks: int = 8
    txs_per_block: int = 2
    drop_rate: float = 0.2
    duplicate_rate: float = 0.05
    delay_rate: float = 0.05
    delay_seconds: float = 1.0
    crash_count: int = 1
    stall_count: int = 0
    partition: bool = False
    join_after: bool = True
    queries: int = 8

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ConfigurationError("chaos runs need at least 2 blocks")
        if self.crash_count < 0 or self.stall_count < 0 or self.queries < 0:
            raise ConfigurationError("counts must be >= 0")


@dataclass
class ChaosOutcome:
    """What one chaos run did and whether the network came back whole."""

    config: ChaosConfig
    blocks_produced: int = 0
    finalized_blocks: int = 0
    crashed: list[int] = field(default_factory=list)
    stalled: list[int] = field(default_factory=list)
    partitioned: list[int] = field(default_factory=list)
    fault_stats: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    timeouts: dict[str, int] = field(default_factory=dict)
    degraded: dict[str, int] = field(default_factory=dict)
    refetched_bodies: int = 0
    queries_attempted: int = 0
    queries_completed: int = 0
    queries_degraded: int = 0
    bootstrap_complete: bool | None = None
    bootstrap_bodies_unavailable: int = 0
    cluster_integrity: dict[int, bool] = field(default_factory=dict)
    virtual_seconds: float = 0.0
    events_processed: int = 0
    #: Per-kind delivery-latency percentiles (virtual time) from the
    #: run's trace; quantifies degradation beyond the counters.  Not
    #: part of :meth:`signature` — latency values are floats derived
    #: from the same deterministic stream the counters pin.
    latency_percentiles: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    #: The run's tracer (``repro chaos --trace`` exports it).
    tracer: Tracer | None = field(default=None, repr=False)

    @property
    def integrity_restored(self) -> bool:
        """Did every cluster end the run holding the full ledger?"""
        return bool(self.cluster_integrity) and all(
            self.cluster_integrity.values()
        )

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed).

        Covers every counter the fault and reliability layers produced;
        the chaos tests assert two same-seed runs match exactly.
        """
        return {
            "fault_stats": dict(self.fault_stats),
            "retries": dict(self.retries),
            "timeouts": dict(self.timeouts),
            "degraded": dict(self.degraded),
            "blocks_produced": self.blocks_produced,
            "finalized_blocks": self.finalized_blocks,
            "crashed": list(self.crashed),
            "stalled": list(self.stalled),
            "refetched_bodies": self.refetched_bodies,
            "queries_completed": self.queries_completed,
            "queries_degraded": self.queries_degraded,
            "virtual_seconds": self.virtual_seconds,
            "events_processed": self.events_processed,
        }


#: Backoff pacing chaos runs install on the query tracker.
CHAOS_QUERY_POLICY = RetryPolicy(
    base_timeout=2.0, backoff=1.5, max_timeout=12.0, rounds=3
)


def run_chaos(
    config: ChaosConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
    tracer: Tracer | None = None,
) -> ChaosOutcome:
    """Run one seeded chaos scenario end to end (see module docs).

    Every run carries a tracer (a caller-supplied one, or an internal
    default-capacity one): the delivery-latency percentiles in the
    outcome come from its deliver spans.  Tracing is observation-only —
    it draws no randomness and schedules nothing, so the determinism
    signature is unchanged by it (the chaos suite pins this).
    """
    config = config or ChaosConfig()
    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    deployment = ICIDeployment(config.n_nodes, config=ici)
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    plan = FaultPlan(
        config=FaultConfig(
            seed=config.seed,
            drop_rate=config.drop_rate,
            duplicate_rate=config.duplicate_rate,
            delay_rate=config.delay_rate,
            delay_seconds=config.delay_seconds,
        )
    )
    injector = plan.install(deployment.network)
    deployment.query.set_retry_policy(CHAOS_QUERY_POLICY)
    if tracer is None:
        tracer = Tracer()
    install_tracing(deployment, tracer)
    outcome = ChaosOutcome(config=config, tracer=tracer)
    rng = random.Random(config.seed ^ 0xC4A05)

    # Phase 1: first half of the stream under message-level faults only.
    first_half = max(1, config.n_blocks // 2)
    with tracer.span("produce:clean"):
        report = runner.produce_blocks(
            first_half, txs_per_block=config.txs_per_block
        )

    # Phase 2: mid-run outages.  Victims come only from clusters that can
    # spare a member (mirrors the churn driver's minimum), and leave the
    # proposer rotation while down — a dead proposer's block would exist
    # only in the oracle ledger, unrecoverable by any replica.
    victims = _pick_victims(
        deployment, rng, config.crash_count + config.stall_count
    )
    outcome.crashed = victims[: config.crash_count]
    outcome.stalled = victims[config.crash_count :]
    for victim in outcome.crashed:
        injector.crash(victim)
        runner.schedule.remove(victim)
    for victim in outcome.stalled:
        injector.stall(victim)
        runner.schedule.remove(victim)
    if config.partition:
        outcome.partitioned = _cut_minority(deployment, injector, victims)
        for victim in outcome.partitioned:
            runner.schedule.remove(victim)

    # Phase 3: the degraded half.
    with tracer.span("produce:degraded"):
        report2 = runner.produce_blocks(
            config.n_blocks - first_half,
            txs_per_block=config.txs_per_block,
        )
    outcome.blocks_produced = (
        report.blocks_produced + report2.blocks_produced
    )

    # Phase 4: heal and reconcile.
    with tracer.span("heal:reconcile"):
        injector.heal()
        for victim in (
            outcome.crashed + outcome.stalled + outcome.partitioned
        ):
            runner.schedule.add(victim)
        outcome.refetched_bodies = reconcile(deployment)

    # Phase 5: a join and a query batch, still under lossy links.
    with tracer.span("join:queries"):
        if config.join_after:
            join = deployment.join_new_node()
            deployment.run()
            outcome.bootstrap_complete = join.complete
            outcome.bootstrap_bodies_unavailable = len(
                join.bodies_unavailable
            )
            if join.complete:
                runner.schedule.add(join.node_id)
        block_hashes = report.block_hashes + report2.block_hashes
        node_ids = sorted(deployment.nodes)
        for _ in range(config.queries):
            requester = rng.choice(node_ids)
            block_hash = rng.choice(block_hashes)
            record = deployment.retrieve_block(requester, block_hash)
            deployment.run()
            outcome.queries_attempted += 1
            if record.completed_at is not None:
                outcome.queries_completed += 1
            if record.degraded:
                outcome.queries_degraded += 1

    # Phase 6: audit.
    for view in deployment.clusters.views():
        outcome.cluster_integrity[view.cluster_id] = (
            deployment.cluster_holds_full_ledger(view.cluster_id)
        )
    outcome.finalized_blocks = deployment.total_finalized_blocks()
    outcome.fault_stats = injector.stats.as_dict()
    stats = deployment.metrics.router_stats
    outcome.retries = dict(stats.retries)
    outcome.timeouts = dict(stats.timeouts)
    outcome.degraded = dict(stats.degraded)
    outcome.virtual_seconds = deployment.network.now
    outcome.events_processed = deployment.network.clock.processed
    outcome.latency_percentiles = summarize(tracer).latency_percentiles()
    return outcome


def reconcile(deployment: ICIDeployment) -> int:
    """Repair every replica after a heal; returns bodies refetched.

    Three passes, each drained to quiescence:

    1. **Header catch-up** — nodes that missed gossiped headers (their
       links were cut) index the canonical headers in height order, which
       also reopens any verification round they never saw.
    2. **Body refetch** — every assigned holder missing its body pulls it
       through the ordinary query path; under faults the query engine
       re-adopts the body into the holder's assignment.
    3. **Finality re-kick** — members still stuck re-enter the
       verification engine's probe chain, which replays certificates or
       re-broadcasts attestations until the round closes.
    """
    headers = list(deployment.ledger.store.iter_active_headers())
    for node_id in sorted(deployment.nodes):
        node = deployment.nodes[node_id]
        for header in headers:
            if not node.store.has_header(header.block_hash):
                deployment.dissemination.note_header(node, header)
    deployment.run()

    refetched = 0
    for view in deployment.clusters.views():
        for header in headers:
            if header.is_genesis:
                continue
            holders = deployment.holders_in_cluster(header, view.cluster_id)
            for holder in holders:
                node = deployment.nodes[holder]
                if node.store.has_body(header.block_hash):
                    continue
                deployment.retrieve_block(holder, header.block_hash)
                refetched += 1
    deployment.run()

    verification = deployment.verification
    for node_id in sorted(deployment.nodes):
        node = deployment.nodes[node_id]
        for header in headers:
            if header.is_genesis:
                continue
            if not node.is_finalized(header.block_hash):
                verification.ensure_round(node, header)
    deployment.run()
    return refetched


def _pick_victims(
    deployment: ICIDeployment, rng: random.Random, count: int
) -> list[int]:
    """Deterministically sample outage victims from spare-capacity clusters."""
    if count == 0:
        return []
    minimum = max(deployment.config.replication + 1, 2)
    candidates = [
        member
        for view in deployment.clusters.views()
        if view.size > minimum
        for member in view.members
    ]
    count = min(count, len(candidates))
    return rng.sample(sorted(candidates), count) if count else []


def _cut_minority(
    deployment: ICIDeployment, injector, exclude: list[int]
) -> list[int]:
    """Partition a below-quorum minority of the largest cluster.

    The cut stays under the Byzantine threshold (⌊(m−1)/3⌋) so the
    majority side keeps finalizing; the isolated members catch up at
    heal + reconcile time.
    """
    views = sorted(
        deployment.clusters.views(), key=lambda v: (-v.size, v.cluster_id)
    )
    view = views[0]
    eligible = [m for m in view.members if m not in exclude]
    cut = max((len(view.members) - 1) // 3, 1)
    minority = sorted(eligible)[:cut]
    if not minority:
        return []
    others = [
        node_id
        for node_id in deployment.nodes
        if node_id not in minority
    ]
    injector.partition(
        PartitionWindow(
            side_a=frozenset(minority),
            side_b=frozenset(others),
            start=deployment.network.now,
        )
    )
    return minority
