"""Chaos scenarios: seeded end-to-end runs under the fault layer.

A chaos run drives the full ICIStrategy stack through hostile weather —
message drop/duplicate/delay rates, mid-run crashes and stalls, optional
partitions — then heals the network, reconciles every replica, and
checks the paper's core claim survived: **each cluster again holds the
complete ledger**.  Everything is derived from one seed, so the same
configuration reproduces identical fault schedules, retry/timeout
counters, and outcomes run after run (the chaos test suite pins this).

Shape of a run (:func:`run_chaos`):

1. produce the first half of the block stream under message-level faults;
2. crash/stall deterministically-chosen victims (removed from the
   proposer rotation — a crashed proposer would strand its block) and,
   optionally, cut a minority partition;
3. produce the second half degraded — the engines' retry probes carry
   delivery as far as live replicas allow;
4. heal, restore the rotation, and :func:`reconcile` every node (header
   catch-up, assigned-body refetch through the query path, finality
   re-kick via the verification probes);
5. exercise a join (bootstrap retries) and a batch of queries under the
   still-lossy link rates;
6. audit per-cluster integrity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.obs.hooks import install_tracing
from repro.obs.summary import summarize
from repro.obs.tracer import Tracer
from repro.protocols.reliability import RetryPolicy
from repro.sim.faults import FaultConfig, FaultPlan, PartitionWindow
from repro.sim.runner import ScenarioRunner


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded chaos scenario (all randomness derives from ``seed``)."""

    seed: int = 0
    n_nodes: int = 16
    n_clusters: int = 4
    replication: int = 2
    n_blocks: int = 8
    txs_per_block: int = 2
    drop_rate: float = 0.2
    duplicate_rate: float = 0.05
    delay_rate: float = 0.05
    delay_seconds: float = 1.0
    crash_count: int = 1
    stall_count: int = 0
    partition: bool = False
    join_after: bool = True
    queries: int = 8
    #: Kademlia-style DHT overlay (:mod:`repro.dht`): queries resolve
    #: holders via FIND_VALUE, the join bootstraps by self-lookup, the
    #: heal phase refreshes routing tables and republishes provider
    #: records, and the audit adds a table-liveness census plus a
    #: full lookup batch.  Off by default: non-DHT signatures must
    #: stay byte-identical (golden pins).
    dht: bool = False
    #: Failure-domain awareness (:mod:`repro.net.domains`): placement
    #: spreads replicas across zones, phase 2 replaces the sampled
    #: victims with a full **zone outage** (every live member of one
    #: deterministically-drawn zone crashes at once), and the audit
    #: adds a post-heal domain-diversity check.  Off by default:
    #: domain-oblivious signatures must stay byte-identical (golden
    #: pins).
    domains: bool = False
    #: Zones in the failure-domain map (domain runs only).
    zones: int = 4
    #: Simulation backend (``"serial"`` or ``"parallel"``).  Fault
    #: injection couples a sharded clock into the serial-exact schedule,
    #: so signatures are backend-independent by construction; the knob
    #: exists to exercise exactly that property.
    backend: str = "serial"
    workers: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ConfigurationError("chaos runs need at least 2 blocks")
        if self.crash_count < 0 or self.stall_count < 0 or self.queries < 0:
            raise ConfigurationError("counts must be >= 0")
        if self.domains and self.zones < 2:
            raise ConfigurationError("domain runs need at least 2 zones")


@dataclass
class ChaosOutcome:
    """What one chaos run did and whether the network came back whole."""

    config: ChaosConfig
    blocks_produced: int = 0
    finalized_blocks: int = 0
    crashed: list[int] = field(default_factory=list)
    stalled: list[int] = field(default_factory=list)
    partitioned: list[int] = field(default_factory=list)
    fault_stats: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    timeouts: dict[str, int] = field(default_factory=dict)
    degraded: dict[str, int] = field(default_factory=dict)
    refetched_bodies: int = 0
    queries_attempted: int = 0
    queries_completed: int = 0
    queries_degraded: int = 0
    bootstrap_complete: bool | None = None
    bootstrap_bodies_unavailable: int = 0
    cluster_integrity: dict[int, bool] = field(default_factory=dict)
    #: DHT overlay counters + audit (``DHTStats.as_dict()`` merged with
    #: the table census and the audit lookup batch); empty on non-DHT
    #: runs, and only a non-empty dict joins :meth:`signature` — the
    #: same opt-in discipline as the endurance outcome's ``adaptive``.
    dht: dict[str, int] = field(default_factory=dict)
    #: Failure-domain census + audit (zone killed, victim count,
    #: placement spread deficit, diversity repairs, post-heal diversity
    #: flag); empty on domain-oblivious runs, and only a non-empty dict
    #: joins :meth:`signature` — the same opt-in discipline as ``dht``.
    domains: dict[str, int] = field(default_factory=dict)
    virtual_seconds: float = 0.0
    events_processed: int = 0
    #: Per-kind tracked-send counts (``RouterStats.sends``); the
    #: denominator for the report renderers' degraded-percentage
    #: column.  Not part of :meth:`signature` — the per-kind retry/
    #: timeout/degraded counters above already pin the same stream.
    sends: dict[str, int] = field(default_factory=dict)
    #: Per-kind delivery-latency percentiles (virtual time) from the
    #: run's trace; quantifies degradation beyond the counters.  Not
    #: part of :meth:`signature` — latency values are floats derived
    #: from the same deterministic stream the counters pin.
    latency_percentiles: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    #: The run's tracer (``repro chaos --trace`` exports it).
    tracer: Tracer | None = field(default=None, repr=False)

    @property
    def integrity_restored(self) -> bool:
        """Did every cluster end the run holding the full ledger?"""
        return bool(self.cluster_integrity) and all(
            self.cluster_integrity.values()
        )

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed).

        Covers every counter the fault and reliability layers produced;
        the chaos tests assert two same-seed runs match exactly.
        """
        signature = {
            "fault_stats": dict(self.fault_stats),
            "retries": dict(self.retries),
            "timeouts": dict(self.timeouts),
            "degraded": dict(self.degraded),
            "blocks_produced": self.blocks_produced,
            "finalized_blocks": self.finalized_blocks,
            "crashed": list(self.crashed),
            "stalled": list(self.stalled),
            "refetched_bodies": self.refetched_bodies,
            "queries_completed": self.queries_completed,
            "queries_degraded": self.queries_degraded,
            "virtual_seconds": self.virtual_seconds,
            "events_processed": self.events_processed,
        }
        if self.dht:
            signature["dht"] = dict(self.dht)
        if self.domains:
            signature["domains"] = dict(self.domains)
        return signature


#: Backoff pacing chaos runs install on the query tracker.
CHAOS_QUERY_POLICY = RetryPolicy(
    base_timeout=2.0, backoff=1.5, max_timeout=12.0, rounds=3
)


def run_chaos(
    config: ChaosConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
    tracer: Tracer | None = None,
) -> ChaosOutcome:
    """Run one seeded chaos scenario end to end (see module docs).

    Every run carries a tracer (a caller-supplied one, or an internal
    default-capacity one): the delivery-latency percentiles in the
    outcome come from its deliver spans.  Tracing is observation-only —
    it draws no randomness and schedules nothing, so the determinism
    signature is unchanged by it (the chaos suite pins this).
    """
    config = config or ChaosConfig()
    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    from repro.sim.backend import backend_scope, parse_backend

    with backend_scope(parse_backend(config.backend, config.workers)):
        deployment = ICIDeployment(config.n_nodes, config=ici)
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    plan = FaultPlan(
        config=FaultConfig(
            seed=config.seed,
            drop_rate=config.drop_rate,
            duplicate_rate=config.duplicate_rate,
            delay_rate=config.delay_rate,
            delay_seconds=config.delay_seconds,
        )
    )
    injector = plan.install(deployment.network)
    deployment.query.set_retry_policy(CHAOS_QUERY_POLICY)
    if config.dht:
        # Enabled before production so provider records publish
        # organically as blocks finalize (the enable-time backfill only
        # covers genesis here).
        deployment.enable_dht()
    if config.domains:
        # Enabled before production so every non-genesis placement is
        # computed by the spread-aware policy.
        deployment.enable_domain_awareness(zones=config.zones)
        injector.bind_domains(
            lambda zone: deployment.domains.members_of_zone(
                zone, deployment.nodes.keys()
            )
        )
    if tracer is None:
        tracer = Tracer()
    install_tracing(deployment, tracer)
    outcome = ChaosOutcome(config=config, tracer=tracer)
    rng = random.Random(config.seed ^ 0xC4A05)

    # Phase 1: first half of the stream under message-level faults only.
    first_half = max(1, config.n_blocks // 2)
    with tracer.span("produce:clean"):
        report = runner.produce_blocks(
            first_half, txs_per_block=config.txs_per_block
        )

    # Phase 2: mid-run outages.  Victims come only from clusters that can
    # spare a member (mirrors the churn driver's minimum), and leave the
    # proposer rotation while down — a dead proposer's block would exist
    # only in the oracle ledger, unrecoverable by any replica.
    zone_killed = -1
    if config.domains:
        # Correlated outage: one whole zone goes down at once instead
        # of independently-sampled victims — the blast radius the
        # spread-aware placement exists to survive.
        zone_killed = rng.randrange(config.zones)
        victims = list(injector.crash_domain(zone_killed))
        outcome.crashed = victims
        for victim in victims:
            runner.schedule.remove(victim)
    else:
        victims = _pick_victims(
            deployment, rng, config.crash_count + config.stall_count
        )
        outcome.crashed = victims[: config.crash_count]
        outcome.stalled = victims[config.crash_count :]
        for victim in outcome.crashed:
            injector.crash(victim)
            runner.schedule.remove(victim)
        for victim in outcome.stalled:
            injector.stall(victim)
            runner.schedule.remove(victim)
    if config.partition:
        outcome.partitioned = _cut_minority(deployment, injector, victims)
        for victim in outcome.partitioned:
            runner.schedule.remove(victim)

    # Phase 3: the degraded half.
    with tracer.span("produce:degraded"):
        report2 = runner.produce_blocks(
            config.n_blocks - first_half,
            txs_per_block=config.txs_per_block,
        )
    outcome.blocks_produced = (
        report.blocks_produced + report2.blocks_produced
    )

    # Phase 4: heal and reconcile.
    with tracer.span("heal:reconcile"):
        injector.heal()
        for victim in (
            outcome.crashed + outcome.stalled + outcome.partitioned
        ):
            runner.schedule.add(victim)
        outcome.refetched_bodies = reconcile(deployment)
        if config.dht:
            # Overlay heal: tracked pings evict contacts that died in
            # the storm, then a forced republish rebuilds provider
            # records so post-storm lookups see fresh holder sets.
            deployment.dht.refresh_all()
            deployment.run()
            deployment.dht.republish_all()
            deployment.run()

    # Phase 5: a join and a query batch, still under lossy links.
    with tracer.span("join:queries"):
        if config.join_after:
            join = deployment.join_new_node()
            deployment.run()
            outcome.bootstrap_complete = join.complete
            outcome.bootstrap_bodies_unavailable = len(
                join.bodies_unavailable
            )
            if join.complete:
                runner.schedule.add(join.node_id)
        block_hashes = report.block_hashes + report2.block_hashes
        node_ids = sorted(deployment.nodes)
        for _ in range(config.queries):
            requester = rng.choice(node_ids)
            block_hash = rng.choice(block_hashes)
            record = deployment.retrieve_block(requester, block_hash)
            deployment.run()
            outcome.queries_attempted += 1
            if record.completed_at is not None:
                outcome.queries_completed += 1
            if record.degraded:
                outcome.queries_degraded += 1

    # Phase 6: audit.
    for view in deployment.clusters.views():
        outcome.cluster_integrity[view.cluster_id] = (
            deployment.cluster_holds_full_ledger(view.cluster_id)
        )
    outcome.finalized_blocks = deployment.total_finalized_blocks()
    outcome.fault_stats = injector.stats.as_dict()
    stats = deployment.metrics.router_stats
    outcome.retries = dict(stats.retries)
    outcome.timeouts = dict(stats.timeouts)
    outcome.degraded = dict(stats.degraded)
    outcome.sends = dict(stats.sends)
    if config.dht:
        _audit_dht(deployment, outcome, rng, block_hashes)
    if config.domains:
        _audit_domains(deployment, outcome, zone_killed, victims)
    outcome.virtual_seconds = deployment.network.now
    outcome.events_processed = deployment.network.clock.processed
    outcome.latency_percentiles = summarize(tracer).latency_percentiles()
    return outcome


def _audit_dht(
    deployment: ICIDeployment, outcome, rng: random.Random, block_hashes
) -> None:
    """Overlay audit: table-liveness census plus a full lookup batch.

    Runs one iterative FIND_VALUE per produced block from a random live
    requester and counts hits — under the acceptance chaos weather
    (10% drop + a crash) every lookup must still succeed, which is what
    the CLI exit gate and the E20 chaos leg pin.  The census and the
    engine's own counters land on ``outcome.dht`` (signature opt-in).
    """
    from repro.dht.idspace import block_key
    from repro.sim.faults import live_members

    dht = deployment.dht
    live = live_members(deployment.network, sorted(deployment.nodes))
    if not live:
        outcome.dht = {**dht.stats.as_dict(), **dht.audit_tables()}
        return
    lookups_ok = 0
    for block_hash in block_hashes:
        lookup = dht.lookup_value(rng.choice(live), block_key(block_hash))
        deployment.run()
        if lookup.value:
            lookups_ok += 1
    outcome.dht = {
        **dht.stats.as_dict(),
        **dht.audit_tables(),
        "audit_lookups": len(block_hashes),
        "audit_lookups_ok": lookups_ok,
    }


def _audit_domains(
    deployment: ICIDeployment,
    outcome,
    zone_killed: int,
    victims: list[int],
) -> None:
    """Failure-domain audit: zone census plus the post-heal diversity
    check (see :func:`domain_diversity_met`).

    Lands on ``outcome.domains`` (signature opt-in, integer-valued so
    the fingerprint stays json-stable).  ``spread_deficit`` counts the
    placements that could not reach full zone spread — the audited
    fallback, surfaced here so a correlated blast radius is visible
    instead of silent.
    """
    from repro.sim.faults import live_members

    domains = deployment.domains
    live = live_members(deployment.network, sorted(deployment.nodes))
    outcome.domains = {
        "zones": domains.zones,
        "zone_killed": zone_killed,
        "outage_victims": len(victims),
        "live_zones": len(domains.zones_of(live)),
        "spread_deficit": getattr(
            deployment.placement, "domain_spread_deficit", 0
        ),
        "diversity_repairs": deployment.repair.diversity_repairs,
        "diversity_met": int(domain_diversity_met(deployment)),
    }


def domain_diversity_met(deployment: ICIDeployment) -> bool:
    """Does every cluster spread every block across its live zones?

    The failure-domain counterpart of :func:`replica_floor_met`: per
    cluster, every non-genesis active block's live holders must span
    ``min(floor, live-zone count)`` distinct zones, where ``floor`` is
    the block's replica floor (planner-aware on adaptive runs).
    Archived blocks check their live **chunk** holders against
    ``min(k, live-zone count)`` instead — chunk placement rides the
    same spread-aware policy.  Genesis is exempt: it is a hardcoded
    constant every node regenerates locally, so zone spread buys it
    nothing.  Domain-oblivious deployments trivially pass.
    """
    from repro.sim.faults import live_members

    domains = getattr(deployment, "domains", None)
    if domains is None:
        return True
    planner = getattr(deployment, "replication_planner", None)
    tier = getattr(deployment, "archival", None)
    base = deployment.config.replication
    headers = list(deployment.ledger.store.iter_active_headers())
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        live_zone_count = len(domains.zones_of(live))
        for header in headers:
            if header.is_genesis:
                continue
            block_hash = header.block_hash
            if tier is not None and tier.is_archived(
                view.cluster_id, block_hash
            ):
                chunk_holders = tier.live_chunk_holders(
                    view.cluster_id, block_hash
                )
                need = min(tier.config.data_chunks, live_zone_count)
                if len(domains.zones_of(chunk_holders)) < need:
                    return False
                continue
            target = (
                base
                if planner is None
                else planner.target_for(block_hash)
            )
            floor = min(max(target, 1), len(live))
            holders = [
                member
                for member in live
                if deployment.nodes[member].store.has_body(block_hash)
            ]
            if len(domains.zones_of(holders)) < min(
                floor, live_zone_count
            ):
                return False
    return True


def reconcile(
    deployment: ICIDeployment, refetch_bodies: bool = True
) -> int:
    """Repair every replica after a heal; returns bodies refetched.

    Three passes, each drained to quiescence:

    1. **Header catch-up** — nodes that missed gossiped headers (their
       links were cut) index the canonical headers in height order, which
       also reopens any verification round they never saw.
    2. **Body refetch** — every assigned holder missing its body pulls it
       through the ordinary query path; under faults the query engine
       re-adopts the body into the holder's assignment.  Endurance runs
       pass ``refetch_bodies=False`` to leave this to the anti-entropy
       sweep (the thing under test) instead of the query path.
    3. **Finality re-kick** — members still stuck re-enter the
       verification engine's probe chain, which replays certificates or
       re-broadcasts attestations until the round closes.
    """
    headers = list(deployment.ledger.store.iter_active_headers())
    for node_id in sorted(deployment.nodes):
        node = deployment.nodes[node_id]
        for header in headers:
            if not node.store.has_header(header.block_hash):
                deployment.dissemination.note_header(node, header)
    deployment.run()

    refetched = 0
    if refetch_bodies:
        for view in deployment.clusters.views():
            for header in headers:
                if header.is_genesis:
                    continue
                holders = deployment.holders_in_cluster(
                    header, view.cluster_id
                )
                for holder in holders:
                    node = deployment.nodes[holder]
                    if node.store.has_body(header.block_hash):
                        continue
                    deployment.retrieve_block(holder, header.block_hash)
                    refetched += 1
        deployment.run()

    verification = deployment.verification
    for node_id in sorted(deployment.nodes):
        node = deployment.nodes[node_id]
        for header in headers:
            if header.is_genesis:
                continue
            if not node.is_finalized(header.block_hash):
                verification.ensure_round(node, header)
    deployment.run()
    return refetched


@dataclass(frozen=True)
class EnduranceConfig:
    """One seeded endurance scenario: churn × faults × anti-entropy.

    Extends the chaos shape with a sustained :class:`ChurnSchedule`
    (drawn from the same seed) applied *while* the fault weather is
    active, an auto-expiring partition window, and the anti-entropy
    engine sweeping at ``repair_cadence`` throughout.
    """

    seed: int = 0
    n_nodes: int = 24
    n_clusters: int = 3
    replication: int = 2
    n_blocks: int = 12
    txs_per_block: int = 2
    drop_rate: float = 0.2
    duplicate_rate: float = 0.05
    delay_rate: float = 0.05
    delay_seconds: float = 1.0
    join_rate: float = 0.15
    leave_rate: float = 0.1
    crash_rate: float = 0.1
    crash_count: int = 1
    partition: bool = True
    partition_blocks: int = 3
    repair_cadence: float = 5.0
    settle_seconds: float = 10.0
    queries: int = 8
    max_heal_rounds: int = 40
    #: Heat-aware adaptive replication (:mod:`repro.storage.heat`).
    #: When on, a Zipf-skewed read stream runs through the storm so heat
    #: is non-uniform, the anti-entropy sweep sheds as well as repairs,
    #: and the audit checks *per-tier* replica floors.  Off by default:
    #: the fixed-r path must stay byte-identical (golden pins).
    adaptive: bool = False
    reads_per_block: int = 4
    zipf_exponent: float = 1.1
    #: Optional heat-model override (``None`` = HeatConfig defaults).
    heat: "object | None" = None
    #: Coded archival tier (:mod:`repro.storage.coded`).  Implies the
    #: adaptive path (the tier consumes the planner's cold signal): cold
    #: blocks transition to k-of-n Reed–Solomon chunks, queries decode
    #: them on demand, and the audit additionally holds the **coded
    #: floor** (≥ k live chunks per archived block, never co-located).
    #: Off by default: adaptive-without-archival runs must stay
    #: byte-identical (golden pins).
    archival: bool = False
    #: Optional code-shape override (``None`` = ArchivalConfig defaults).
    archival_code: "object | None" = None
    #: Kademlia-style DHT overlay (:mod:`repro.dht`): joins bootstrap
    #: by self-lookup, queries resolve holders via FIND_VALUE, repair
    #: digests route to XOR-nearest peers, and the audit adds a
    #: table-liveness census plus a full lookup batch.  Off by default:
    #: non-DHT runs must stay byte-identical (golden pins).
    dht: bool = False
    #: Failure-domain awareness (see :class:`ChaosConfig.domains`): the
    #: outage a third of the way in becomes a full **zone outage**
    #: (replacing the independently-sampled victims), placement spreads
    #: replicas across zones, the anti-entropy sweep restores zone
    #: diversity as well as copy count, and the audit adds the
    #: post-heal domain-diversity check.  Off by default (golden pins).
    domains: bool = False
    #: Zones in the failure-domain map (domain runs only).
    zones: int = 3
    #: Simulation backend (see :class:`ChaosConfig.backend`).
    backend: str = "serial"
    workers: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ConfigurationError("endurance runs need at least 2 blocks")
        if self.domains and self.zones < 2:
            raise ConfigurationError("domain runs need at least 2 zones")
        if self.repair_cadence <= 0 or self.settle_seconds <= 0:
            raise ConfigurationError("cadence/settle must be > 0")
        if self.crash_count < 0 or self.queries < 0:
            raise ConfigurationError("counts must be >= 0")
        if self.max_heal_rounds < 1:
            raise ConfigurationError("max_heal_rounds must be >= 1")
        if self.reads_per_block < 0:
            raise ConfigurationError("reads_per_block must be >= 0")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be > 0")


@dataclass
class EnduranceOutcome:
    """What one endurance run did and whether self-healing converged."""

    config: EnduranceConfig
    blocks_produced: int = 0
    joins: int = 0
    leaves: int = 0
    churn_crashes: int = 0
    skipped_events: int = 0
    outage_crashed: list[int] = field(default_factory=list)
    partitioned: list[int] = field(default_factory=list)
    fault_stats: dict[str, int] = field(default_factory=dict)
    retries: dict[str, int] = field(default_factory=dict)
    timeouts: dict[str, int] = field(default_factory=dict)
    degraded: dict[str, int] = field(default_factory=dict)
    #: The anti-entropy engine's counters (``RepairStats.as_dict()``).
    repair: dict[str, int] = field(default_factory=dict)
    #: Blocks departures handed off to the sweep after exhausted retries.
    deferred_blocks: int = 0
    #: Virtual seconds from first deficit detection to restored copy.
    time_to_repair: dict[str, float] = field(default_factory=dict)
    heal_rounds: int = 0
    queries_attempted: int = 0
    queries_completed: int = 0
    queries_degraded: int = 0
    cluster_integrity: dict[int, bool] = field(default_factory=dict)
    replica_floor_met: bool = False
    #: Adaptive-replication counters (``AdaptiveStats.as_dict()`` plus
    #: tier counts and storm reads); empty on fixed-r runs, and only a
    #: non-empty dict joins :meth:`signature` — so enabling the adaptive
    #: path cannot move the fixed-r golden pins.
    adaptive: dict[str, int] = field(default_factory=dict)
    #: Archival-tier counters (``ArchivalStats.as_dict()``); empty
    #: unless the coded tier ran, and only a non-empty dict joins
    #: :meth:`signature` — same opt-in discipline as ``adaptive``.
    archival: dict[str, int] = field(default_factory=dict)
    #: DHT overlay counters + audit (see :class:`ChaosOutcome.dht`);
    #: empty unless the overlay ran, same opt-in discipline.
    dht: dict[str, int] = field(default_factory=dict)
    #: Failure-domain census + audit (see :class:`ChaosOutcome.
    #: domains`); empty on oblivious runs, same opt-in discipline.
    domains: dict[str, int] = field(default_factory=dict)
    #: Network-wide ledger bytes at audit time (reports; not signed).
    storage_total_bytes: int = 0
    #: Per-kind tracked-send counts (see :class:`ChaosOutcome.sends`);
    #: reports only, not signed.
    sends: dict[str, int] = field(default_factory=dict)
    virtual_seconds: float = 0.0
    events_processed: int = 0
    #: Not part of :meth:`signature` (floats derived from the same
    #: deterministic stream the counters pin) — see ChaosOutcome.
    latency_percentiles: dict[str, dict[str, float]] = field(
        default_factory=dict
    )
    tracer: Tracer | None = field(default=None, repr=False)
    #: The healed deployment, for independent post-run auditing (the
    #: property suite re-derives coverage rather than trusting the
    #: audit flags above).  Not part of the signature.
    deployment: "ICIDeployment | None" = field(default=None, repr=False)

    @property
    def integrity_restored(self) -> bool:
        """Full ledger per cluster *and* the replication floor met."""
        return (
            bool(self.cluster_integrity)
            and all(self.cluster_integrity.values())
            and self.replica_floor_met
        )

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed)."""
        signature = {
            "blocks_produced": self.blocks_produced,
            "joins": self.joins,
            "leaves": self.leaves,
            "churn_crashes": self.churn_crashes,
            "skipped_events": self.skipped_events,
            "outage_crashed": list(self.outage_crashed),
            "partitioned": list(self.partitioned),
            "fault_stats": dict(self.fault_stats),
            "retries": dict(self.retries),
            "timeouts": dict(self.timeouts),
            "degraded": dict(self.degraded),
            "repair": dict(self.repair),
            "deferred_blocks": self.deferred_blocks,
            "time_to_repair": dict(self.time_to_repair),
            "heal_rounds": self.heal_rounds,
            "queries_completed": self.queries_completed,
            "queries_degraded": self.queries_degraded,
            "cluster_integrity": dict(self.cluster_integrity),
            "replica_floor_met": self.replica_floor_met,
            "virtual_seconds": self.virtual_seconds,
            "events_processed": self.events_processed,
        }
        if self.adaptive:
            signature["adaptive"] = dict(self.adaptive)
        if self.archival:
            signature["archival"] = dict(self.archival)
        if self.dht:
            signature["dht"] = dict(self.dht)
        if self.domains:
            signature["domains"] = dict(self.domains)
        return signature


def run_endurance(
    config: EnduranceConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
    tracer: Tracer | None = None,
) -> EnduranceOutcome:
    """Sustained churn under fault weather with anti-entropy sweeping.

    Shape of a run:

    1. **Storm** — produce the block stream with the fault weather on and
       the anti-entropy engine sweeping; the seeded churn schedule fires
       between blocks (joins bootstrap, leaves repair-then-exit, crashes
       trigger survivor re-replication), an outage crashes
       ``crash_count`` extra members a third of the way in, and an
       auto-expiring minority partition opens at the halfway mark.
    2. **Heal** — faults off, header catch-up + finality re-kick
       (``reconcile`` *without* the query-path body refetch: restoring
       bodies is the sweep's job here), then bounded sweep rounds until
       the repair counters go quiet.
    3. **Probe** — a query batch under the still-lossy link rates.
    4. **Audit** — per-cluster full-ledger integrity plus the stronger
       replica floor: every active block holds ``min(r, live)`` live
       replicas in every cluster.
    """
    from repro.obs.summary import percentile
    from repro.sim.churn import (
        ChurnConfig,
        ChurnDriver,
        ChurnOutcome,
        make_schedule,
    )

    config = config or EnduranceConfig()
    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    from repro.sim.backend import backend_scope, parse_backend

    with backend_scope(parse_backend(config.backend, config.workers)):
        deployment = ICIDeployment(config.n_nodes, config=ici)
    planner = None
    tier = None
    reads = None
    storm_reads = 0
    if config.adaptive or config.archival:
        from repro.sim.workload import ReadWorkloadConfig, ZipfReadWorkload

        planner = deployment.enable_adaptive_replication(config.heat)
        reads = ZipfReadWorkload(
            ReadWorkloadConfig(
                seed=config.seed ^ 0x2EAD,
                exponent=config.zipf_exponent,
            )
        )
    if config.archival:
        tier = deployment.enable_archival_tier(config.archival_code)
    if config.dht:
        deployment.enable_dht()
    if config.domains:
        deployment.enable_domain_awareness(zones=config.zones)
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    plan = FaultPlan(
        config=FaultConfig(
            seed=config.seed,
            drop_rate=config.drop_rate,
            duplicate_rate=config.duplicate_rate,
            delay_rate=config.delay_rate,
            delay_seconds=config.delay_seconds,
        )
    )
    injector = plan.install(deployment.network)
    deployment.query.set_retry_policy(CHAOS_QUERY_POLICY)
    if config.domains:
        injector.bind_domains(
            lambda zone: deployment.domains.members_of_zone(
                zone, deployment.nodes.keys()
            )
        )
    if tracer is None:
        tracer = Tracer()
    install_tracing(deployment, tracer)
    outcome = EnduranceOutcome(config=config, tracer=tracer)
    rng = random.Random(config.seed ^ 0xE17D)

    churn_config = ChurnConfig(
        join_rate=config.join_rate,
        leave_rate=config.leave_rate,
        crash_rate=config.crash_rate,
        seed=config.seed,
    )
    by_block: dict[int, list] = {}
    for event in make_schedule(churn_config, config.n_blocks):
        by_block.setdefault(event.after_block, []).append(event)
    driver = ChurnDriver(
        deployment,
        runner,
        churn_config,
        settle_seconds=config.settle_seconds,
    )
    churn = ChurnOutcome()

    repair = deployment.repair
    repair.start(cadence=config.repair_cadence)
    outage_block = max(1, config.n_blocks // 3)
    partition_block = max(2, config.n_blocks // 2)
    block_hashes: list = []
    zone_killed = -1

    # Phase 1: the storm.
    with tracer.span("endurance:storm"):
        for block_index in range(1, config.n_blocks + 1):
            report = runner.produce_blocks(
                1,
                txs_per_block=config.txs_per_block,
                drain_between_blocks=False,
                drain_at_end=False,
            )
            block_hashes.extend(report.block_hashes)
            churn.blocks_produced += 1
            if block_index == outage_block and config.crash_count:
                if config.domains:
                    # Correlated outage: a full zone instead of the
                    # independently-sampled victims.
                    zone_killed = rng.randrange(config.zones)
                    outcome.outage_crashed = list(
                        injector.crash_domain(zone_killed)
                    )
                else:
                    outcome.outage_crashed = _pick_victims(
                        deployment, rng, config.crash_count
                    )
                    for victim in outcome.outage_crashed:
                        injector.crash(victim)
                for victim in outcome.outage_crashed:
                    runner.schedule.remove(victim)
            if block_index == partition_block and config.partition:
                outcome.partitioned = _cut_minority(
                    deployment,
                    injector,
                    outcome.outage_crashed,
                    duration=config.partition_blocks * runner.block_interval,
                )
                for victim in outcome.partitioned:
                    runner.schedule.remove(victim)
            for event in by_block.get(block_index, []):
                driver._apply(event, churn)
            if reads is not None and block_hashes:
                # The Zipf read stream heats the tip while history cools;
                # replies land whenever the weather lets them through.
                node_ids = sorted(deployment.nodes)
                for requester, block_hash in reads.reads(
                    block_hashes, node_ids, config.reads_per_block
                ):
                    node = deployment.nodes[requester]
                    if not node.store.has_header(block_hash):
                        continue  # gossip hasn't reached it yet
                    deployment.retrieve_block(requester, block_hash)
                    storm_reads += 1

    outcome.blocks_produced = churn.blocks_produced
    outcome.joins = churn.joins
    outcome.leaves = churn.leaves
    outcome.churn_crashes = churn.crashes
    outcome.skipped_events = churn.skipped_events

    # Phase 2: heal, catch headers up, and let the sweep converge.
    with tracer.span("endurance:heal"):
        injector.heal()
        for victim in outcome.outage_crashed + outcome.partitioned:
            if victim in deployment.nodes:
                runner.schedule.add(victim)
        # reconcile() drains to quiescence internally — the sweep must be
        # parked while it runs, then resumed for the convergence rounds.
        repair.stop()
        reconcile(deployment, refetch_bodies=False)
        repair.start(cadence=config.repair_cadence)
        last = (-1, -1, -1, -1)
        quiet = 0
        for _ in range(config.max_heal_rounds):
            deployment.network.clock.run_for(config.repair_cadence)
            outcome.heal_rounds += 1
            snapshot = (
                repair.stats.under_replicated,
                repair.stats.blocks_re_replicated,
                # Adaptive runs also wait for shedding to go quiet.
                planner.stats.replicas_shed if planner is not None else -1,
                # Archival runs also wait for the coded tier to go quiet
                # (archives, chunk re-homes, and thaws all settled); the
                # constant -1 without a tier keeps the quietness
                # equality — and every non-archival signature — exactly
                # as before.
                (
                    tier.stats.blocks_archived
                    + tier.stats.chunks_repaired
                    + tier.stats.blocks_thawed
                    if tier is not None
                    else -1
                ),
            )
            if snapshot == last and repair.idle:
                quiet += 1
                if quiet >= 2:
                    break
            else:
                quiet = 0
            last = snapshot
        repair.stop()
        deployment.run()
        if config.dht:
            # Overlay heal: the sweep hook kept records fresh through
            # the convergence rounds; the explicit ping pass evicts
            # contacts that died (or left) in the storm, and the forced
            # republish covers clusters whose membership churned.
            deployment.dht.refresh_all()
            deployment.run()
            deployment.dht.republish_all()
            deployment.run()

    # Phase 3: a query batch, still under lossy links.
    with tracer.span("endurance:queries"):
        node_ids = sorted(deployment.nodes)
        for _ in range(config.queries):
            if reads is not None:
                requester, block_hash = reads.next_read(
                    block_hashes, node_ids
                )
            else:
                requester = rng.choice(node_ids)
                block_hash = rng.choice(block_hashes)
            record = deployment.retrieve_block(requester, block_hash)
            deployment.run()
            outcome.queries_attempted += 1
            if record.completed_at is not None:
                outcome.queries_completed += 1
            if record.degraded:
                outcome.queries_degraded += 1

    # Phase 4: audit.
    for view in deployment.clusters.views():
        if tier is not None:
            # Archived blocks legitimately hold zero full replicas; a
            # cluster is whole when every body is held *or* decodable
            # from ≥ k live chunks.
            outcome.cluster_integrity[view.cluster_id] = (
                archival_cluster_integrity(
                    deployment, tier, view.cluster_id
                )
            )
        else:
            outcome.cluster_integrity[view.cluster_id] = (
                deployment.cluster_holds_full_ledger(view.cluster_id)
            )
    if tier is not None:
        outcome.replica_floor_met = archival_floor_met(
            deployment, planner, tier
        )
        outcome.adaptive = dict(planner.as_dict())
        outcome.adaptive["storm_reads"] = storm_reads
        outcome.archival = dict(tier.as_dict())
        outcome.archival["archived_blocks"] = tier.archived_blocks
        outcome.archival["chunk_bytes"] = tier.total_chunk_bytes
    elif planner is not None:
        outcome.replica_floor_met = adaptive_floor_met(deployment, planner)
        outcome.adaptive = dict(planner.as_dict())
        outcome.adaptive["storm_reads"] = storm_reads
    else:
        outcome.replica_floor_met = replica_floor_met(deployment)
    outcome.storage_total_bytes = deployment.storage_report().total_bytes
    if tier is not None:
        # Coded chunks live beside the replicas the report counts.
        outcome.storage_total_bytes += tier.total_chunk_bytes
    outcome.fault_stats = injector.stats.as_dict()
    stats = deployment.metrics.router_stats
    outcome.retries = dict(stats.retries)
    outcome.timeouts = dict(stats.timeouts)
    outcome.degraded = dict(stats.degraded)
    outcome.sends = dict(stats.sends)
    outcome.repair = repair.stats.as_dict()
    outcome.deferred_blocks = sum(
        len(report.deferred_blocks)
        for report in deployment.metrics.departures
    )
    if repair.repair_times:
        times = sorted(repair.repair_times)
        outcome.time_to_repair = {
            "p50": percentile(times, 0.50),
            "p95": percentile(times, 0.95),
        }
    if config.dht:
        _audit_dht(deployment, outcome, rng, block_hashes)
    if config.domains:
        _audit_domains(
            deployment, outcome, zone_killed, outcome.outage_crashed
        )
    outcome.virtual_seconds = deployment.network.now
    outcome.events_processed = deployment.network.clock.processed
    outcome.latency_percentiles = summarize(tracer).latency_percentiles()
    outcome.deployment = deployment
    return outcome


def replica_floor_met(deployment: ICIDeployment) -> bool:
    """Does every cluster hold ``min(r, live)`` live replicas of
    every active block?

    Stronger than :meth:`cluster_holds_full_ledger` (any one copy): this
    is the invariant the anti-entropy sweep converges toward.
    """
    from repro.sim.faults import live_members

    replication = deployment.config.replication
    headers = list(deployment.ledger.store.iter_active_headers())
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        floor = min(replication, len(live))
        if floor == 0:
            continue
        for header in headers:
            holders = sum(
                1
                for member in live
                if deployment.nodes[member].store.has_body(
                    header.block_hash
                )
            )
            if holders < floor:
                return False
    return True


def adaptive_floor_met(deployment: ICIDeployment, planner) -> bool:
    """Tier-aware replica floor: ``min(target, live)`` copies per block.

    The adaptive counterpart of :func:`replica_floor_met`: each block's
    floor follows its heat tier (hot above ``r``, cold down to 1 —
    never zero, so every cluster still contributes a cross-cluster
    copy).  Genesis keeps the base floor.
    """
    from repro.sim.faults import live_members

    base = deployment.config.replication
    headers = list(deployment.ledger.store.iter_active_headers())
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        for header in headers:
            target = (
                base
                if header.is_genesis
                else planner.target_for(header.block_hash)
            )
            floor = min(max(target, 1), len(live))
            holders = sum(
                1
                for member in live
                if deployment.nodes[member].store.has_body(
                    header.block_hash
                )
            )
            if holders < floor:
                return False
    return True


def archival_cluster_integrity(
    deployment: ICIDeployment, tier, cluster_id: int
) -> bool:
    """Archival-aware integrity: every body held *or* reconstructable.

    The coded tier's counterpart of
    :meth:`~repro.core.icistrategy.ICIDeployment.cluster_holds_full_
    ledger`: an archived block contributes through ≥ ``k`` live chunks
    instead of a full replica.
    """
    members = deployment.clusters.members_of(cluster_id)
    for header in deployment.ledger.store.iter_active_headers():
        block_hash = header.block_hash
        if any(
            deployment.nodes[m].store.has_body(block_hash)
            for m in members
        ):
            continue
        if tier.can_reconstruct(cluster_id, block_hash):
            continue
        return False
    return True


def archival_floor_met(
    deployment: ICIDeployment, planner, tier
) -> bool:
    """Tier-aware floor with the coded invariant for archived blocks.

    Archived blocks must hold the **coded floor** — at least ``k`` live
    chunks on distinct members; everything else keeps the adaptive
    ``min(target, live)`` replica floor of :func:`adaptive_floor_met`.
    """
    from repro.sim.faults import live_members

    base = deployment.config.replication
    headers = list(deployment.ledger.store.iter_active_headers())
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        for header in headers:
            block_hash = header.block_hash
            if not header.is_genesis and tier.is_archived(
                view.cluster_id, block_hash
            ):
                if not tier.coded_floor_ok(view.cluster_id, block_hash):
                    return False
                continue
            target = (
                base
                if header.is_genesis
                else planner.target_for(block_hash)
            )
            floor = min(max(target, 1), len(live))
            holders = sum(
                1
                for member in live
                if deployment.nodes[member].store.has_body(block_hash)
            )
            if holders < floor:
                return False
    return True


def _pick_victims(
    deployment: ICIDeployment, rng: random.Random, count: int
) -> list[int]:
    """Deterministically sample outage victims from spare-capacity clusters.

    Candidates come from the fault layer's ``live_members`` view, so an
    outage can never target a node that is already crashed or stalled
    (injector.crash on a dead node would double-count it, and a churn
    composition would otherwise raise).  On a clean network every member
    is live, so the candidate list — and the RNG draw — is unchanged.
    """
    from repro.sim.faults import live_members

    if count == 0:
        return []
    minimum = max(deployment.config.replication + 1, 2)
    network = deployment.network
    candidates: list[int] = []
    for view in deployment.clusters.views():
        live = live_members(network, view.members)
        if len(live) > minimum:
            candidates.extend(live)
    count = min(count, len(candidates))
    return rng.sample(sorted(candidates), count) if count else []


def _cut_minority(
    deployment: ICIDeployment,
    injector,
    exclude: list[int],
    duration: float | None = None,
) -> list[int]:
    """Partition a below-quorum minority of the largest cluster.

    The cut stays under the Byzantine threshold (⌊(m−1)/3⌋) so the
    majority side keeps finalizing; the isolated members catch up at
    heal + reconcile time.  With ``duration`` the window self-expires
    after that many virtual seconds (endurance runs); otherwise it lasts
    until an explicit ``heal()``.
    """
    views = sorted(
        deployment.clusters.views(), key=lambda v: (-v.size, v.cluster_id)
    )
    view = views[0]
    eligible = [m for m in view.members if m not in exclude]
    cut = max((len(view.members) - 1) // 3, 1)
    minority = sorted(eligible)[:cut]
    if not minority:
        return []
    others = [
        node_id
        for node_id in deployment.nodes
        if node_id not in minority
    ]
    now = deployment.network.now
    injector.partition(
        PartitionWindow(
            side_a=frozenset(minority),
            side_b=frozenset(others),
            start=now,
            end=float("inf") if duration is None else now + duration,
        )
    )
    return minority
