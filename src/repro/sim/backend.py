"""Pluggable simulation backends: serial single-heap vs sharded lanes.

A :class:`SimulationBackend` decides what clock a fresh
:class:`~repro.net.network.Network` runs on.  :class:`SerialBackend`
is the default and produces the original single-heap
:class:`~repro.net.simclock.SimClock` — byte-identical behaviour, so
every golden pin and bench baseline holds untouched.
:class:`ParallelBackend` produces a
:class:`~repro.net.shard.ShardedClock` whose per-cluster event lanes
drain on worker threads under conservative lookahead synchronization
(see :mod:`repro.net.shard` for the protocol and determinism argument).

Backends reach deployments the same way tracers do (compare
:func:`repro.obs.tracer.active_tracer`): an *active backend* module
global, scoped with :func:`backend_scope`, consulted by
``Network.__init__`` when no explicit clock is passed.  That indirection
matters because the bench workloads construct their deployments
internally — there is no seam to hand them a clock directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.net.shard import ShardedClock
from repro.net.simclock import SimClock

#: CLI-facing backend names.
BACKEND_NAMES = ("serial", "parallel")


@runtime_checkable
class SimulationBackend(Protocol):
    """Anything that can supply clocks for new networks."""

    name: str

    def make_clock(self) -> SimClock:
        """A fresh clock for one network/deployment."""
        ...


class SerialBackend:
    """Today's single-heap drain; the default, byte-identical."""

    name = "serial"

    def make_clock(self) -> SimClock:
        """See :meth:`SimulationBackend.make_clock`."""
        return SimClock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialBackend()"


class ParallelBackend:
    """Cluster-sharded lanes on ``workers`` threads.

    Same-seed runs produce simulated metrics identical to
    :class:`SerialBackend`; only wall-clock behaviour differs.  With
    ``workers=1`` the lane/mailbox protocol still runs (useful for
    debugging the sharded schedule) but every window drains inline.
    """

    name = "parallel"

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ConfigurationError(f"need at least one worker ({workers=})")
        self.workers = workers

    def make_clock(self) -> SimClock:
        """See :meth:`SimulationBackend.make_clock`."""
        return ShardedClock(workers=self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParallelBackend(workers={self.workers})"


def parse_backend(
    name: str | None, workers: int = 2
) -> SimulationBackend | None:
    """Resolve a CLI ``--backend`` choice; ``None``/``"serial"`` maps to
    ``None`` so callers can skip scoping entirely on the default path."""
    if name is None or name == "serial":
        return None
    if name == "parallel":
        return ParallelBackend(workers=workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {BACKEND_NAMES}"
    )


# --------------------------------------------------------------- context
_ACTIVE: SimulationBackend | None = None


def active_backend() -> SimulationBackend | None:
    """The backend new networks should draw clocks from, or ``None``."""
    return _ACTIVE


def activate(backend: SimulationBackend) -> None:
    """Make ``backend`` the active backend for new networks.

    Raises:
        ConfigurationError: when a different backend is already active.
    """
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not backend:
        raise ConfigurationError("another backend is already active")
    _ACTIVE = backend


def deactivate() -> None:
    """Clear the active backend."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def backend_scope(
    backend: SimulationBackend | None,
) -> Iterator[SimulationBackend | None]:
    """Scope ``backend`` as the active backend for the ``with`` body.

    ``None`` is a no-op scope (the serial default), so call sites can
    uniformly wrap deployment construction without branching.
    """
    if backend is None:
        yield None
        return
    activate(backend)
    try:
        yield backend
    finally:
        deactivate()
