"""Deterministic fault injection: the simulator's adversarial weather.

The protocol claims (each cluster retains full-network integrity while
members hold only a slice of the ledger) are only credible if the wire
protocols survive lost messages, slow links, and crashed peers.  This
module provides that adversary as a **seeded, reproducible plan**:

* :class:`FaultConfig` — per-message fault rates (drop / duplicate /
  delay-spike), validated.
* :class:`PartitionWindow` — a per-link partition: messages crossing the
  cut during ``[start, end)`` virtual seconds are severed.
* :class:`OutageEvent` — a node crash / stall / recovery at a virtual
  time, scheduled on the :class:`~repro.net.simclock.SimClock` when the
  plan is installed.
* :class:`FaultPlan` — the full schedule; :meth:`FaultPlan.generate`
  derives one deterministically from a seed (the golden-pin target).
* :class:`FaultInjector` — the runtime attached to one
  :class:`~repro.net.network.Network` via :meth:`FaultPlan.install`;
  ``Network.send``/``send_many`` consult it per message.

Determinism contract: fault decisions are drawn from one seeded stream in
send order, and the simulator's send order is itself deterministic, so a
(seed, config) pair replays the identical fault sequence on any machine.
When **no** injector is installed the network takes its original code
path untouched — baseline simulated metrics are byte-identical (the
bench harness enforces this against ``benchmarks/baseline.json``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.tracer import FAULTS_TRACK, active_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class FaultConfig:
    """Per-message fault probabilities (one uniform draw per send).

    The three rates partition one ``[0, 1)`` draw, so at most one
    message-level fault applies per send: drop wins over duplicate wins
    over delay.  ``delay_seconds`` is the spike *added* to the normal
    propagation + transmission delay.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.drop_rate + self.duplicate_rate + self.delay_rate > 1.0:
            raise ConfigurationError(
                "drop + duplicate + delay rates must not exceed 1"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be >= 0")


@dataclass(frozen=True)
class PartitionWindow:
    """A link cut between two node groups over a virtual-time window.

    Messages with the sender on one side and the recipient on the other
    are dropped while ``start <= now < end``.  Traffic within a side is
    unaffected.
    """

    side_a: frozenset[int]
    side_b: frozenset[int]
    start: float = 0.0
    end: float = float("inf")

    def __post_init__(self) -> None:
        if self.side_a & self.side_b:
            raise ConfigurationError("partition sides must be disjoint")
        if self.end < self.start:
            raise ConfigurationError("partition window must not be inverted")

    def severs(self, sender: int, recipient: int, now: float) -> bool:
        """Does this window cut the (sender, recipient) link right now?"""
        if not self.start <= now < self.end:
            return False
        return (sender in self.side_a and recipient in self.side_b) or (
            sender in self.side_b and recipient in self.side_a
        )


#: Outage kinds an :class:`OutageEvent` can apply.
CRASH = "crash"
STALL = "stall"
RECOVER = "recover"


@dataclass(frozen=True)
class OutageEvent:
    """One scheduled node-liveness change at a virtual time."""

    at: float
    node_id: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, STALL, RECOVER):
            raise ConfigurationError(f"unknown outage kind {self.kind!r}")
        if self.at < 0:
            raise ConfigurationError("outage time must be >= 0")


@dataclass
class FaultStats:
    """What the injector actually did to one run (deterministic per seed)."""

    intercepted: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    partition_dropped: int = 0
    stall_dropped: int = 0
    crashes: int = 0
    stalls: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and determinism signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_dropped(self) -> int:
        """Messages lost to any fault (rate, partition, or stall)."""
        return self.dropped + self.partition_dropped + self.stall_dropped


class FaultPlan:
    """A complete, seeded fault schedule for one simulation run."""

    def __init__(
        self,
        config: FaultConfig | None = None,
        partitions: Sequence[PartitionWindow] = (),
        outages: Sequence[OutageEvent] = (),
    ) -> None:
        self.config = config or FaultConfig()
        self.partitions = tuple(partitions)
        self.outages = tuple(sorted(outages, key=lambda e: (e.at, e.node_id)))

    @classmethod
    def generate(
        cls,
        seed: int,
        node_ids: Iterable[int],
        *,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 1.0,
        crash_count: int = 0,
        stall_count: int = 0,
        outage_window: tuple[float, float] = (0.0, 60.0),
        outage_duration: float = 10.0,
    ) -> "FaultPlan":
        """Derive a full plan deterministically from ``seed``.

        Crash/stall victims are sampled without replacement from
        ``node_ids``; each outage starts uniformly inside
        ``outage_window`` and recovers ``outage_duration`` later.  Equal
        inputs yield an identical schedule on every machine — the
        fixed-seed golden pins in ``tests/test_faults.py`` rely on it.
        """
        ids = sorted(node_ids)
        total = crash_count + stall_count
        if total > len(ids):
            raise ConfigurationError(
                f"{total} outages need at least that many nodes "
                f"(got {len(ids)})"
            )
        if outage_duration < 0:
            raise ConfigurationError("outage_duration must be >= 0")
        start, end = outage_window
        if end < start or start < 0:
            raise ConfigurationError("outage_window must be ordered and >= 0")
        rng = random.Random(seed ^ 0xFA017)
        victims = rng.sample(ids, total) if total else []
        outages: list[OutageEvent] = []
        for index, victim in enumerate(victims):
            kind = CRASH if index < crash_count else STALL
            at = start + rng.random() * (end - start)
            outages.append(OutageEvent(at=at, node_id=victim, kind=kind))
            outages.append(
                OutageEvent(
                    at=at + outage_duration, node_id=victim, kind=RECOVER
                )
            )
        config = FaultConfig(
            seed=seed,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            delay_rate=delay_rate,
            delay_seconds=delay_seconds,
        )
        return cls(config=config, outages=outages)

    def install(self, network: "Network") -> "FaultInjector":
        """Attach an injector for this plan to ``network``.

        Scheduled outages land on the network's clock immediately; the
        injector starts intercepting on the next ``send``.
        """
        injector = FaultInjector(self, network)
        network.attach_faults(injector)
        return injector


class FaultInjector:
    """Runtime fault state for one network; created by ``FaultPlan.install``.

    The injector holds the seeded decision stream, the stall set, and the
    live partition list; :class:`~repro.net.network.Network` consults
    :meth:`intercept` once per message handed to ``send``.
    """

    def __init__(self, plan: FaultPlan, network: "Network") -> None:
        self.plan = plan
        self.network = network
        self.stats = FaultStats()
        self._rng = random.Random(plan.config.seed)
        self._stalled: set[int] = set()
        self._partitions: list[PartitionWindow] = list(plan.partitions)
        self._crashed: set[int] = set()
        # Injectors built inside an active tracing scope self-attach;
        # install_tracing() also attaches to pre-existing injectors.
        self._tracer: "Tracer | None" = active_tracer()
        for event in plan.outages:
            at = max(event.at, network.clock.now)
            network.clock.schedule_at(at, self._apply_outage, event)

    # ------------------------------------------------------- instrumentation
    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Mirror fault decisions into a tracer (``None`` detaches)."""
        self._tracer = tracer

    def _trace(self, name: str, args: dict | None = None) -> None:
        self._tracer.instant(
            name,
            FAULTS_TRACK,
            ts=self.network.clock.now,
            category="fault",
            args=args,
        )

    # ------------------------------------------------------------ liveness
    def is_stalled(self, node_id: int) -> bool:
        """Is the node currently stalled (reachable but unresponsive)?"""
        return node_id in self._stalled

    def is_live(self, node_id: int) -> bool:
        """The fault layer's liveness view: online and not stalled."""
        return self.network.is_online(node_id) and node_id not in self._stalled

    def crash(self, node_id: int) -> None:
        """Crash a node now (messages to/from it are lost until recovery)."""
        self.network.set_online(node_id, False)
        self._crashed.add(node_id)
        self.stats.crashes += 1
        if self._tracer is not None:
            self._trace("crash", {"node": node_id})

    def stall(self, node_id: int) -> None:
        """Stall a node now: it stays registered but all its traffic drops."""
        self._stalled.add(node_id)
        self.stats.stalls += 1
        if self._tracer is not None:
            self._trace("stall", {"node": node_id})

    def recover(self, node_id: int) -> None:
        """Bring a crashed or stalled node back."""
        if node_id in self._crashed:
            self.network.set_online(node_id, True)
            self._crashed.discard(node_id)
        self._stalled.discard(node_id)
        self.stats.recoveries += 1
        if self._tracer is not None:
            self._trace("recover", {"node": node_id})

    def partition(self, window: PartitionWindow) -> None:
        """Add a partition window at runtime (tests and chaos drivers)."""
        self._partitions.append(window)
        if self._tracer is not None:
            self._trace(
                "partition",
                {
                    "side_a": sorted(window.side_a),
                    "side_b_size": len(window.side_b),
                    "until": window.end,
                },
            )

    def heal(self) -> None:
        """End every fault source: recover nodes, clear stalls, rejoin cuts.

        Message-level fault *rates* keep applying — healing restores
        connectivity, not perfect weather.
        """
        now = self.network.now
        for node_id in sorted(self._crashed | self._stalled):
            self.recover(node_id)
        self._partitions = [
            window for window in self._partitions if window.end <= now
        ]

    def _apply_outage(self, event: OutageEvent) -> None:
        if event.node_id not in self.network.node_ids:
            return  # departed before its outage fired
        if event.kind == CRASH:
            self.crash(event.node_id)
        elif event.kind == STALL:
            self.stall(event.node_id)
        else:
            self.recover(event.node_id)

    # ------------------------------------------------------------ messages
    def intercept(self, message: "Message", now: float) -> tuple[int, float]:
        """Decide one message's fate: ``(copies, extra_delay)``.

        ``copies`` is how many deliveries to schedule (0 = dropped,
        2 = duplicated); ``extra_delay`` is added to each copy's normal
        delay.  Exactly one RNG draw is consumed per rate-eligible
        message, keeping the decision stream reproducible.
        """
        self.stats.intercepted += 1
        sender, recipient = message.sender, message.recipient
        if sender in self._stalled or recipient in self._stalled:
            self.stats.stall_dropped += 1
            self._trace_fault("stall_drop", message, now)
            return 0, 0.0
        for window in self._partitions:
            if window.severs(sender, recipient, now):
                self.stats.partition_dropped += 1
                self._trace_fault("partition_drop", message, now)
                return 0, 0.0
        config = self.plan.config
        if config.drop_rate or config.duplicate_rate or config.delay_rate:
            draw = self._rng.random()
            if draw < config.drop_rate:
                self.stats.dropped += 1
                self._trace_fault("drop", message, now)
                return 0, 0.0
            if draw < config.drop_rate + config.duplicate_rate:
                self.stats.duplicated += 1
                self._trace_fault("duplicate", message, now)
                return 2, 0.0
            if (
                draw
                < config.drop_rate + config.duplicate_rate + config.delay_rate
            ):
                self.stats.delayed += 1
                self._trace_fault("delay", message, now)
                return 1, config.delay_seconds
        return 1, 0.0

    def _trace_fault(self, name: str, message: "Message", now: float) -> None:
        if self._tracer is None:
            return
        self._tracer.instant(
            name,
            FAULTS_TRACK,
            ts=now,
            category="fault",
            args={
                "kind": message.kind.value,
                "from": message.sender,
                "to": message.recipient,
            },
        )


def live_members(network: "Network", members: Iterable[int]) -> list[int]:
    """Filter ``members`` through the fault layer's liveness view.

    Order-preserving; with no injector installed this is exactly the
    online filter, so fault-free callers see identical candidate lists.
    """
    faults = network.faults
    if faults is None:
        return [m for m in members if network.is_online(m)]
    return [m for m in members if faults.is_live(m)]
