"""Deterministic fault injection: the simulator's adversarial weather.

The protocol claims (each cluster retains full-network integrity while
members hold only a slice of the ledger) are only credible if the wire
protocols survive lost messages, slow links, and crashed peers.  This
module provides that adversary as a **seeded, reproducible plan**:

* :class:`FaultConfig` — per-message fault rates (drop / duplicate /
  delay-spike), validated.
* :class:`PartitionWindow` — a per-link partition: messages crossing the
  cut during ``[start, end)`` virtual seconds are severed.
* :class:`OutageEvent` — a node crash / stall / recovery at a virtual
  time, scheduled on the :class:`~repro.net.simclock.SimClock` when the
  plan is installed.  Schedules are validated: orphan recoveries and
  overlapping outages for one node raise
  :class:`~repro.errors.FaultConfigError` instead of producing silent
  nonsense weather.
* :class:`DomainOutageEvent` — a **correlated** outage: every member of
  one failure domain (:mod:`repro.net.domains`) crashes or stalls at
  once, recovering together ``duration`` later.
  :func:`domain_partition` builds the network-cut analogue (the zone
  stays up but its uplink is severed).
* :class:`FaultPlan` — the full schedule; :meth:`FaultPlan.generate`
  derives one deterministically from a seed (the golden-pin target).
* :class:`FaultInjector` — the runtime attached to one
  :class:`~repro.net.network.Network` via :meth:`FaultPlan.install`;
  ``Network.send``/``send_many`` consult it per message.

Determinism contract: fault decisions are drawn from one seeded stream in
send order, and the simulator's send order is itself deterministic, so a
(seed, config) pair replays the identical fault sequence on any machine.
When **no** injector is installed the network takes its original code
path untouched — baseline simulated metrics are byte-identical (the
bench harness enforces this against ``benchmarks/baseline.json``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, FaultConfigError
from repro.obs.tracer import FAULTS_TRACK, active_tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class FaultConfig:
    """Per-message fault probabilities (one uniform draw per send).

    The three rates partition one ``[0, 1)`` draw, so at most one
    message-level fault applies per send: drop wins over duplicate wins
    over delay.  ``delay_seconds`` is the spike *added* to the normal
    propagation + transmission delay.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.drop_rate + self.duplicate_rate + self.delay_rate > 1.0:
            raise ConfigurationError(
                "drop + duplicate + delay rates must not exceed 1"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be >= 0")


@dataclass(frozen=True)
class PartitionWindow:
    """A link cut between two node groups over a virtual-time window.

    Messages with the sender on one side and the recipient on the other
    are dropped while ``start <= now < end``.  Traffic within a side is
    unaffected.
    """

    side_a: frozenset[int]
    side_b: frozenset[int]
    start: float = 0.0
    end: float = float("inf")

    def __post_init__(self) -> None:
        if self.side_a & self.side_b:
            raise ConfigurationError("partition sides must be disjoint")
        if self.end < self.start:
            raise ConfigurationError("partition window must not be inverted")

    def severs(self, sender: int, recipient: int, now: float) -> bool:
        """Does this window cut the (sender, recipient) link right now?"""
        if not self.start <= now < self.end:
            return False
        return (sender in self.side_a and recipient in self.side_b) or (
            sender in self.side_b and recipient in self.side_a
        )


#: Outage kinds an :class:`OutageEvent` can apply.
CRASH = "crash"
STALL = "stall"
RECOVER = "recover"


@dataclass(frozen=True)
class OutageEvent:
    """One scheduled node-liveness change at a virtual time."""

    at: float
    node_id: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, STALL, RECOVER):
            raise ConfigurationError(f"unknown outage kind {self.kind!r}")
        if self.at < 0:
            raise ConfigurationError("outage time must be >= 0")


@dataclass(frozen=True)
class DomainOutageEvent:
    """One scheduled **correlated** outage: a whole zone fails at once.

    At ``at`` virtual seconds every current member of ``zone`` is
    crashed (or stalled); ``duration`` later the same members recover.
    Resolution from zone to member ids happens **at fire time** through
    the resolver bound with :meth:`FaultInjector.bind_domains`, so churn
    between scheduling and firing is honoured — the blast radius is
    whatever the zone contains when the failure happens, exactly like a
    real rack losing power.

    Per-node effects land on the ordinary crash/stall/recover counters
    (a domain outage *is* N node outages, correlated); the injector
    additionally records each firing on
    :attr:`FaultInjector.domain_outages` for the opt-in chaos/endurance
    ``domains`` audit, keeping :class:`FaultStats` — and every
    golden-pinned signature built from it — exactly as before.
    """

    at: float
    zone: int
    kind: str = CRASH
    duration: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, STALL):
            raise FaultConfigError(
                f"domain outages crash or stall, not {self.kind!r}"
            )
        if self.at < 0:
            raise FaultConfigError("domain outage time must be >= 0")
        if self.duration < 0:
            raise FaultConfigError("domain outage duration must be >= 0")
        if self.zone < 0:
            raise FaultConfigError("zone must be >= 0")


@dataclass
class FaultStats:
    """What the injector actually did to one run (deterministic per seed)."""

    intercepted: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    partition_dropped: int = 0
    stall_dropped: int = 0
    crashes: int = 0
    stalls: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and determinism signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total_dropped(self) -> int:
        """Messages lost to any fault (rate, partition, or stall)."""
        return self.dropped + self.partition_dropped + self.stall_dropped


class FaultPlan:
    """A complete, seeded fault schedule for one simulation run."""

    def __init__(
        self,
        config: FaultConfig | None = None,
        partitions: Sequence[PartitionWindow] = (),
        outages: Sequence[OutageEvent] = (),
        domain_outages: Sequence[DomainOutageEvent] = (),
    ) -> None:
        self.config = config or FaultConfig()
        self.partitions = tuple(partitions)
        self.outages = tuple(sorted(outages, key=lambda e: (e.at, e.node_id)))
        self.domain_outages = tuple(
            sorted(domain_outages, key=lambda e: (e.at, e.zone))
        )
        _validate_outages(self.outages)

    @classmethod
    def generate(
        cls,
        seed: int,
        node_ids: Iterable[int],
        *,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 1.0,
        crash_count: int = 0,
        stall_count: int = 0,
        outage_window: tuple[float, float] = (0.0, 60.0),
        outage_duration: float = 10.0,
        domain_outage_count: int = 0,
        zone_count: int = 0,
        domain_outage_kind: str = CRASH,
    ) -> "FaultPlan":
        """Derive a full plan deterministically from ``seed``.

        Crash/stall victims are sampled without replacement from
        ``node_ids``; each outage starts uniformly inside
        ``outage_window`` and recovers ``outage_duration`` later.  Equal
        inputs yield an identical schedule on every machine — the
        fixed-seed golden pins in ``tests/test_faults.py`` rely on it.

        With ``domain_outage_count > 0`` (requires ``zone_count``),
        that many **whole zones** are additionally sampled without
        replacement and scheduled as :class:`DomainOutageEvent`\\ s over
        the same window.  The domain draws happen strictly *after* the
        per-node draws, so every pre-existing ``(seed, kwargs)``
        schedule — including the pinned golden one — is unchanged when
        the count is zero.
        """
        ids = sorted(node_ids)
        total = crash_count + stall_count
        if total > len(ids):
            raise ConfigurationError(
                f"{total} outages need at least that many nodes "
                f"(got {len(ids)})"
            )
        if outage_duration < 0:
            raise ConfigurationError("outage_duration must be >= 0")
        start, end = outage_window
        if end < start or start < 0:
            raise ConfigurationError("outage_window must be ordered and >= 0")
        rng = random.Random(seed ^ 0xFA017)
        victims = rng.sample(ids, total) if total else []
        outages: list[OutageEvent] = []
        for index, victim in enumerate(victims):
            kind = CRASH if index < crash_count else STALL
            at = start + rng.random() * (end - start)
            outages.append(OutageEvent(at=at, node_id=victim, kind=kind))
            outages.append(
                OutageEvent(
                    at=at + outage_duration, node_id=victim, kind=RECOVER
                )
            )
        domain_outages: list[DomainOutageEvent] = []
        if domain_outage_count:
            if zone_count < domain_outage_count:
                raise FaultConfigError(
                    f"{domain_outage_count} domain outages need at least "
                    f"that many zones (got {zone_count})"
                )
            zones = rng.sample(range(zone_count), domain_outage_count)
            for zone in zones:
                at = start + rng.random() * (end - start)
                domain_outages.append(
                    DomainOutageEvent(
                        at=at,
                        zone=zone,
                        kind=domain_outage_kind,
                        duration=outage_duration,
                    )
                )
        config = FaultConfig(
            seed=seed,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            delay_rate=delay_rate,
            delay_seconds=delay_seconds,
        )
        return cls(
            config=config, outages=outages, domain_outages=domain_outages
        )

    @property
    def has_domain_outages(self) -> bool:
        """Does this plan schedule any whole-zone failures?"""
        return bool(self.domain_outages)

    def install(self, network: "Network") -> "FaultInjector":
        """Attach an injector for this plan to ``network``.

        Scheduled outages land on the network's clock immediately; the
        injector starts intercepting on the next ``send``.
        """
        injector = FaultInjector(self, network)
        network.attach_faults(injector)
        return injector


def _validate_outages(outages: Sequence[OutageEvent]) -> None:
    """Reject schedules that cannot describe real weather.

    Scanning the (already time-sorted) schedule per node: a ``RECOVER``
    with no preceding crash/stall is an orphan, and a second crash/stall
    before the prior recovery is an overlap — both previously produced
    silent nonsense (double-counted crashes, recoveries that revived
    nothing) instead of an error.
    """
    down: dict[int, OutageEvent] = {}
    for event in outages:
        if event.kind == RECOVER:
            if down.pop(event.node_id, None) is None:
                raise FaultConfigError(
                    f"node {event.node_id} recovers at t={event.at:g} "
                    "without a preceding crash or stall"
                )
            continue
        prior = down.get(event.node_id)
        if prior is not None:
            raise FaultConfigError(
                f"node {event.node_id} {event.kind}s at t={event.at:g} "
                f"while already down ({prior.kind} at t={prior.at:g} "
                "not yet recovered)"
            )
        down[event.node_id] = event


class FaultInjector:
    """Runtime fault state for one network; created by ``FaultPlan.install``.

    The injector holds the seeded decision stream, the stall set, and the
    live partition list; :class:`~repro.net.network.Network` consults
    :meth:`intercept` once per message handed to ``send``.
    """

    def __init__(self, plan: FaultPlan, network: "Network") -> None:
        self.plan = plan
        self.network = network
        self.stats = FaultStats()
        self._rng = random.Random(plan.config.seed)
        self._stalled: set[int] = set()
        self._partitions: list[PartitionWindow] = list(plan.partitions)
        self._crashed: set[int] = set()
        # zone -> current member ids; bound by the chaos/endurance driver
        # (the network itself knows nothing about failure domains).
        self._domain_resolver: Callable[[int], Sequence[int]] | None = None
        #: Every domain outage that fired: ``(at, zone, kind, victims)``.
        #: Deliberately *not* part of :class:`FaultStats` — the per-node
        #: crash/stall/recover counters absorb the member-level effects,
        #: so golden-pinned signatures are unchanged; this record feeds
        #: the opt-in ``domains`` audit only.
        self.domain_outages: list[tuple[float, int, str, tuple[int, ...]]] = []
        # Injectors built inside an active tracing scope self-attach;
        # install_tracing() also attaches to pre-existing injectors.
        self._tracer: "Tracer | None" = active_tracer()
        for event in plan.outages:
            at = max(event.at, network.clock.now)
            network.clock.schedule_at(at, self._apply_outage, event)
        for domain_event in plan.domain_outages:
            at = max(domain_event.at, network.clock.now)
            network.clock.schedule_at(
                at, self._apply_domain_outage, domain_event
            )

    # ------------------------------------------------------- instrumentation
    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Mirror fault decisions into a tracer (``None`` detaches)."""
        self._tracer = tracer

    def _trace(self, name: str, args: dict | None = None) -> None:
        self._tracer.instant(
            name,
            FAULTS_TRACK,
            ts=self.network.clock.now,
            category="fault",
            args=args,
        )

    # ------------------------------------------------------------ liveness
    def is_stalled(self, node_id: int) -> bool:
        """Is the node currently stalled (reachable but unresponsive)?"""
        return node_id in self._stalled

    def is_live(self, node_id: int) -> bool:
        """The fault layer's liveness view: online and not stalled."""
        return self.network.is_online(node_id) and node_id not in self._stalled

    def crash(self, node_id: int) -> None:
        """Crash a node now (messages to/from it are lost until recovery)."""
        self.network.set_online(node_id, False)
        self._crashed.add(node_id)
        self.stats.crashes += 1
        if self._tracer is not None:
            self._trace("crash", {"node": node_id})

    def stall(self, node_id: int) -> None:
        """Stall a node now: it stays registered but all its traffic drops."""
        self._stalled.add(node_id)
        self.stats.stalls += 1
        if self._tracer is not None:
            self._trace("stall", {"node": node_id})

    def recover(self, node_id: int) -> None:
        """Bring a crashed or stalled node back."""
        if node_id in self._crashed:
            self.network.set_online(node_id, True)
            self._crashed.discard(node_id)
        self._stalled.discard(node_id)
        self.stats.recoveries += 1
        if self._tracer is not None:
            self._trace("recover", {"node": node_id})

    def partition(self, window: PartitionWindow) -> None:
        """Add a partition window at runtime (tests and chaos drivers)."""
        self._partitions.append(window)
        if self._tracer is not None:
            self._trace(
                "partition",
                {
                    "side_a": sorted(window.side_a),
                    "side_b_size": len(window.side_b),
                    "until": window.end,
                },
            )

    def heal(self) -> None:
        """End every fault source: recover nodes, clear stalls, rejoin cuts.

        Message-level fault *rates* keep applying — healing restores
        connectivity, not perfect weather.
        """
        now = self.network.now
        for node_id in sorted(self._crashed | self._stalled):
            self.recover(node_id)
        self._partitions = [
            window for window in self._partitions if window.end <= now
        ]

    def _apply_outage(self, event: OutageEvent) -> None:
        if event.node_id not in self.network.node_ids:
            return  # departed before its outage fired
        if event.kind == CRASH:
            self.crash(event.node_id)
        elif event.kind == STALL:
            self.stall(event.node_id)
        else:
            self.recover(event.node_id)

    # ------------------------------------------------------ failure domains
    def bind_domains(
        self, resolver: Callable[[int], Sequence[int]]
    ) -> None:
        """Supply the zone → current-members resolver domain outages need.

        Typically ``deployment.domains.members_of_zone`` (or a closure
        over it); called once by the chaos/endurance driver after the
        plan installs.
        """
        self._domain_resolver = resolver

    def crash_domain(self, zone: int, kind: str = CRASH) -> tuple[int, ...]:
        """Fail every live member of one zone at once; returns the victims.

        ``kind`` selects crash vs stall.  Victims are resolved *now*
        (post-churn membership), filtered to currently-live nodes so a
        node already down is never double-counted, and recorded on
        :attr:`domain_outages`.  Recovery is the caller's (or the
        scheduled event's) responsibility via :meth:`recover_domain`.
        """
        if self._domain_resolver is None:
            raise FaultConfigError(
                "domain outage fired with no domain resolver bound "
                "(call FaultInjector.bind_domains first)"
            )
        victims = tuple(
            node_id
            for node_id in sorted(self._domain_resolver(zone))
            if node_id in self.network.node_ids and self.is_live(node_id)
        )
        for node_id in victims:
            if kind == CRASH:
                self.crash(node_id)
            else:
                self.stall(node_id)
        self.domain_outages.append(
            (self.network.clock.now, zone, kind, victims)
        )
        if self._tracer is not None:
            self._trace(
                "domain_outage",
                {"zone": zone, "kind": kind, "victims": list(victims)},
            )
        return victims

    def recover_domain(self, victims: Sequence[int]) -> None:
        """Bring one domain outage's victims back (departed ones skipped)."""
        for node_id in sorted(victims):
            if node_id in self.network.node_ids and (
                node_id in self._crashed or node_id in self._stalled
            ):
                self.recover(node_id)

    def _apply_domain_outage(self, event: DomainOutageEvent) -> None:
        victims = self.crash_domain(event.zone, kind=event.kind)
        if event.duration != float("inf"):
            self.network.clock.schedule(
                event.duration, self.recover_domain, victims
            )

    # ------------------------------------------------------------ messages
    def intercept(self, message: "Message", now: float) -> tuple[int, float]:
        """Decide one message's fate: ``(copies, extra_delay)``.

        ``copies`` is how many deliveries to schedule (0 = dropped,
        2 = duplicated); ``extra_delay`` is added to each copy's normal
        delay.  Exactly one RNG draw is consumed per rate-eligible
        message, keeping the decision stream reproducible.
        """
        self.stats.intercepted += 1
        sender, recipient = message.sender, message.recipient
        if sender in self._stalled or recipient in self._stalled:
            self.stats.stall_dropped += 1
            self._trace_fault("stall_drop", message, now)
            return 0, 0.0
        for window in self._partitions:
            if window.severs(sender, recipient, now):
                self.stats.partition_dropped += 1
                self._trace_fault("partition_drop", message, now)
                return 0, 0.0
        config = self.plan.config
        if config.drop_rate or config.duplicate_rate or config.delay_rate:
            draw = self._rng.random()
            if draw < config.drop_rate:
                self.stats.dropped += 1
                self._trace_fault("drop", message, now)
                return 0, 0.0
            if draw < config.drop_rate + config.duplicate_rate:
                self.stats.duplicated += 1
                self._trace_fault("duplicate", message, now)
                return 2, 0.0
            if (
                draw
                < config.drop_rate + config.duplicate_rate + config.delay_rate
            ):
                self.stats.delayed += 1
                self._trace_fault("delay", message, now)
                return 1, config.delay_seconds
        return 1, 0.0

    def _trace_fault(self, name: str, message: "Message", now: float) -> None:
        if self._tracer is None:
            return
        self._tracer.instant(
            name,
            FAULTS_TRACK,
            ts=now,
            category="fault",
            args={
                "kind": message.kind.value,
                "from": message.sender,
                "to": message.recipient,
            },
        )


def domain_partition(
    node_ids: Iterable[int],
    zone_of: Callable[[int], int],
    zone: int,
    start: float = 0.0,
    end: float = float("inf"),
) -> PartitionWindow:
    """A domain-cut partition: one zone severed from everything else.

    Models a top-of-rack or zone-uplink failure where the domain's
    members stay *up* (intra-zone traffic flows) but every link crossing
    the domain boundary is cut for ``[start, end)``.  Raises
    :class:`~repro.errors.FaultConfigError` when either side would be
    empty — a cut that severs nothing is a configuration bug, not
    weather.
    """
    ids = sorted(set(node_ids))
    inside = frozenset(n for n in ids if zone_of(n) == zone)
    outside = frozenset(n for n in ids if zone_of(n) != zone)
    if not inside or not outside:
        raise FaultConfigError(
            f"domain cut of zone {zone} needs members on both sides "
            f"({len(inside)} inside, {len(outside)} outside)"
        )
    return PartitionWindow(
        side_a=inside, side_b=outside, start=start, end=end
    )


def live_members(network: "Network", members: Iterable[int]) -> list[int]:
    """Filter ``members`` through the fault layer's liveness view.

    Order-preserving; with no injector installed this is exactly the
    online filter, so fault-free callers see identical candidate lists.
    """
    faults = network.faults
    if faults is None:
        return [m for m in members if network.is_online(m)]
    return [m for m in members if faults.is_live(m)]
