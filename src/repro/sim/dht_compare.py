"""Broadcast vs DHT holder lookup across network sizes (E20).

The DHT overlay's acceptance experiment (:mod:`repro.dht`): for each
network size, drive one seeded deployment with the overlay enabled
through an identical block stream, then resolve the *same* seeded
(requester, block) sequence two ways —

* **iterative FIND_VALUE** (:meth:`~repro.dht.engine.DHTEngine.lookup_value`):
  α-parallel probes walking XOR-closer neighbourhoods, terminating when
  the ``k`` nearest known contacts have all answered;
* **flood** (:meth:`~repro.dht.engine.DHTEngine.flood_resolve`): the
  pre-DHT baseline, one request to every live peer — linear in network
  size by construction

— and compare messages per lookup and hop counts.  The acceptance claim
is the Kademlia one: lookup cost stays ~``O(log N)`` while the flood
grows ~``O(N)``, so the flood/DHT cost ratio must widen monotonically
with ``N``.  Each size also admits one joiner and records the
self-lookup's message cost against the modelled legacy full-table
exchange (one membership entry per existing node).

A final chaos leg re-runs the largest size through
:func:`repro.sim.chaos.run_chaos` with ``dht=True`` under the
acceptance weather (10% drop + a crash) and pins that every audit
lookup still succeeds.

Everything is seeded; the outcome's :meth:`signature` is a determinism
fingerprint the test suite pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.sim.chaos import ChaosConfig, run_chaos
from repro.sim.runner import ScenarioRunner


@dataclass(frozen=True)
class DhtCompareConfig:
    """One seeded broadcast-vs-DHT lookup comparison."""

    seed: int = 42
    #: Deployment sizes for the scaling sweep (ascending).
    network_sizes: tuple[int, ...] = (12, 24, 48)
    #: Nodes per cluster at every size (clusters = size // cluster_size).
    cluster_size: int = 6
    replication: int = 2
    n_blocks: int = 6
    txs_per_block: int = 2
    #: Seeded (requester, block) resolutions per size — each measured
    #: once as an iterative lookup and once as a flood.
    lookups: int = 12
    #: The chaos leg's weather (the acceptance criterion's 10% drop).
    chaos_drop_rate: float = 0.10
    chaos_crash_count: int = 1
    backend: str = "serial"
    workers: int = 2

    def __post_init__(self) -> None:
        if len(self.network_sizes) < 2:
            raise ConfigurationError(
                "the scaling sweep needs at least 2 network sizes"
            )
        if list(self.network_sizes) != sorted(set(self.network_sizes)):
            raise ConfigurationError(
                "network_sizes must be strictly ascending"
            )
        if self.cluster_size < 2:
            raise ConfigurationError("cluster_size must be >= 2")
        for size in self.network_sizes:
            if size < 2 * self.cluster_size:
                raise ConfigurationError(
                    "every size needs at least 2 clusters"
                )
        if self.n_blocks < 2:
            raise ConfigurationError("compare runs need at least 2 blocks")
        if self.lookups < 1:
            raise ConfigurationError("lookups must be >= 1")
        if not 0.0 <= self.chaos_drop_rate < 1.0:
            raise ConfigurationError("chaos_drop_rate must be in [0, 1)")
        if self.chaos_crash_count < 0:
            raise ConfigurationError("chaos_crash_count must be >= 0")


@dataclass
class DhtCompareOutcome:
    """Per-size lookup bills, join costs, and the chaos-leg audit."""

    config: DhtCompareConfig
    #: One row per network size — all-integer counters:
    #: ``n_nodes, lookups, dht_messages, dht_hops, dht_hits,
    #: flood_messages, flood_hits, join_messages, legacy_join_entries``.
    sizes: list[dict[str, int]] = field(default_factory=list)
    #: The chaos leg's audit extract (``ChaosOutcome.dht`` subset).
    chaos: dict[str, int] = field(default_factory=dict)
    chaos_integrity: bool = False
    #: The driven deployments (smallest/largest), for the bench
    #: harness's simulated metrics (not part of the signature).
    deployments: dict[int, ICIDeployment] = field(
        default_factory=dict, repr=False
    )

    @property
    def lookups_ok(self) -> bool:
        """Every lookup — iterative and flood, every size — resolved."""
        return bool(self.sizes) and all(
            row["dht_hits"] == row["lookups"]
            and row["flood_hits"] == row["lookups"]
            for row in self.sizes
        )

    @property
    def chaos_lookups_ok(self) -> bool:
        """The chaos leg's audit batch resolved every block."""
        return (
            self.chaos.get("audit_lookups", 0) > 0
            and self.chaos.get("audit_lookups_ok")
            == self.chaos.get("audit_lookups")
        )

    @property
    def sublinear(self) -> bool:
        """The Kademlia scaling claim, checked on the measured curves.

        Flood cost is linear in ``N`` by construction, so it proxies the
        broadcast baseline exactly; the DHT curve must grow strictly
        slower — the flood/DHT per-lookup cost ratio widens at every
        size step — and stay cheaper at every measured size.
        """
        if len(self.sizes) < 2:
            return False
        ratios = []
        for row in self.sizes:
            if row["dht_messages"] == 0:
                return False
            if row["dht_messages"] >= row["flood_messages"]:
                return False
            ratios.append(row["flood_messages"] / row["dht_messages"])
        return all(a < b for a, b in zip(ratios, ratios[1:]))

    def messages_per_lookup(self, row: dict[str, int], key: str) -> float:
        """Average per-lookup cost for one size row (reporting)."""
        return row[key] / row["lookups"] if row["lookups"] else 0.0

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed)."""
        return {
            "sizes": [dict(row) for row in self.sizes],
            "chaos": dict(self.chaos),
            "chaos_integrity": self.chaos_integrity,
            "sublinear": self.sublinear,
            "lookups_ok": self.lookups_ok,
        }


def _measure_size(
    config: DhtCompareConfig,
    n_nodes: int,
    limits: ValidationLimits,
) -> tuple[dict[str, int], ICIDeployment]:
    """Drive one size: produce, lookup both ways, admit one joiner."""
    from repro.dht.idspace import block_key
    from repro.sim.backend import backend_scope, parse_backend

    ici = ICIConfig(
        n_clusters=n_nodes // config.cluster_size,
        replication=config.replication,
        limits=limits,
    )
    with backend_scope(parse_backend(config.backend, config.workers)):
        deployment = ICIDeployment(n_nodes, config=ici)
    dht = deployment.enable_dht()
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    report = runner.produce_blocks(
        config.n_blocks, txs_per_block=config.txs_per_block
    )
    deployment.run()

    # Both arms replay the same seeded (requester, block) sequence.
    rng = random.Random(config.seed ^ 0xD47 ^ n_nodes)
    node_ids = sorted(deployment.nodes)
    pairs = [
        (rng.choice(node_ids), rng.choice(report.block_hashes))
        for _ in range(config.lookups)
    ]

    row = {
        "n_nodes": n_nodes,
        "lookups": config.lookups,
        "dht_messages": 0,
        "dht_hops": 0,
        "dht_hits": 0,
        "flood_messages": 0,
        "flood_hits": 0,
        "join_messages": 0,
        # The legacy join's membership download: one table entry per
        # existing node (what the full-table exchange would ship).
        "legacy_join_entries": n_nodes,
    }
    for requester, block_hash in pairs:
        lookup = dht.lookup_value(requester, block_key(block_hash))
        deployment.run()
        row["dht_messages"] += lookup.messages
        row["dht_hops"] += lookup.hops
        if lookup.value:
            row["dht_hits"] += 1
    for requester, block_hash in pairs:
        flood = dht.flood_resolve(requester, block_hash)
        deployment.run()
        row["flood_messages"] += flood.messages
        if flood.holders:
            row["flood_hits"] += 1

    # Join cost: the self-lookup's probes are the only lookup traffic
    # in flight, so the counter delta attributes cleanly.
    before = dht.stats.lookup_messages
    join = deployment.join_new_node()
    deployment.run()
    row["join_messages"] = dht.stats.lookup_messages - before
    assert join.complete, "clean-network join must complete"
    return row, deployment


def run_dht_compare(
    config: DhtCompareConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
) -> DhtCompareOutcome:
    """Run the scaling sweep and the chaos leg (see module docs)."""
    config = config or DhtCompareConfig()
    outcome = DhtCompareOutcome(config=config)
    for n_nodes in config.network_sizes:
        row, deployment = _measure_size(config, n_nodes, limits)
        outcome.sizes.append(row)
        if n_nodes in (config.network_sizes[0], config.network_sizes[-1]):
            outcome.deployments[n_nodes] = deployment

    largest = config.network_sizes[-1]
    chaos = run_chaos(
        ChaosConfig(
            seed=config.seed,
            n_nodes=largest,
            n_clusters=largest // config.cluster_size,
            replication=config.replication,
            n_blocks=config.n_blocks,
            txs_per_block=config.txs_per_block,
            drop_rate=config.chaos_drop_rate,
            crash_count=config.chaos_crash_count,
            dht=True,
            backend=config.backend,
            workers=config.workers,
        ),
        limits=limits,
    )
    outcome.chaos = {
        key: chaos.dht[key]
        for key in (
            "audit_lookups",
            "audit_lookups_ok",
            "stale_contacts",
            "empty_tables",
            "contacts_evicted",
            "value_hits",
            "value_misses",
        )
        if key in chaos.dht
    }
    outcome.chaos_integrity = chaos.integrity_restored
    return outcome
