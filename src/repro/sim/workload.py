"""Synthetic transaction and read workloads.

Generates realistic UTXO traffic: a population of wallets pays each other
random amounts, transaction sizes are padded to a configurable target
(Bitcoin's mean ≈ 500 bytes), and every transaction is properly signed so
full validation paths run for real.

The generator only ever spends *confirmed* outputs (callers feed blocks
back via :meth:`TransactionWorkload.on_block_confirmed`), so the stream it
produces is always valid against the canonical chain.

:class:`ZipfReadWorkload` is the read-side counterpart: a seeded stream
of block retrievals whose popularity follows a Zipf law over *recency
rank* — the newest block is rank 1 and hottest, deep history is the
long cold tail.  That skew is what makes access heat non-uniform, which
is the whole point of adaptive replication (:mod:`repro.storage.heat`):
under a flat read distribution there is nothing to tier.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Sequence

from repro.chain.block import Block
from repro.chain.transaction import (
    OutPoint,
    Transaction,
    make_signed_transfer,
)
from repro.crypto.keys import KeyPair, KeyRing
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape knobs.

    Attributes:
        n_wallets: distinct key pairs paying each other.
        target_tx_bytes: transactions are padded up to roughly this size
            (0 disables padding).
        fee_per_transfer: base units each transfer leaves unclaimed for
            the block proposer (0 = feeless).
        seed: RNG seed; equal seeds yield identical streams.
    """

    n_wallets: int = 20
    target_tx_bytes: int = 500
    fee_per_transfer: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_wallets < 2:
            raise ConfigurationError("need at least two wallets")
        if self.target_tx_bytes < 0:
            raise ConfigurationError("target_tx_bytes must be >= 0")
        if self.fee_per_transfer < 0:
            raise ConfigurationError("fee_per_transfer must be >= 0")


class TransactionWorkload:
    """Stateful generator of signed wallet-to-wallet transfers.

    The wallet population is seeded from the deterministic key ring, so
    ``KeyPair.from_seed(0)`` — the default genesis faucet — is wallet #0:
    constructing the workload against a default-genesis deployment "just
    works".
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self.wallets: list[KeyPair] = [
            KeyPair.from_seed(index) for index in range(self.config.n_wallets)
        ]
        self._ring = KeyRing()
        self._spendable: dict[bytes, list[tuple[OutPoint, int]]] = {
            wallet.address: [] for wallet in self.wallets
        }
        self._pending_spends: set[OutPoint] = set()

    # ------------------------------------------------------------- funding
    def on_block_confirmed(self, block: Block) -> None:
        """Credit outputs of a confirmed block to the owning wallets."""
        known = {wallet.address for wallet in self.wallets}
        for tx in block.transactions:
            for outpoint in tx.outpoints_spent():
                self._pending_spends.discard(outpoint)
                for pool in self._spendable.values():
                    pool[:] = [
                        pair for pair in pool if pair[0] != outpoint
                    ]
            for index, output in enumerate(tx.outputs):
                if output.address in known:
                    self._spendable[output.address].append(
                        (OutPoint(txid=tx.txid, index=index), output.value)
                    )

    def spendable_value(self, wallet: KeyPair) -> int:
        """Confirmed, not-yet-committed value a wallet can spend now."""
        return sum(
            value
            for outpoint, value in self._spendable[wallet.address]
            if outpoint not in self._pending_spends
        )

    # ---------------------------------------------------------- generation
    def next_transfer(self) -> Transaction | None:
        """One random wallet-to-wallet payment, or ``None`` if nobody can pay.

        The chosen sender spends its confirmed outputs; the transfer is
        marked pending so the same outputs are not double-offered before
        confirmation.
        """
        candidates = [
            wallet
            for wallet in self.wallets
            if self.spendable_value(wallet) > 1
        ]
        if not candidates:
            return None
        sender = self._rng.choice(candidates)
        recipient = self._rng.choice(
            [w for w in self.wallets if w is not sender]
        )
        available = [
            pair
            for pair in self._spendable[sender.address]
            if pair[0] not in self._pending_spends
        ]
        total = sum(value for _, value in available)
        fee = self.config.fee_per_transfer
        if total <= fee + 1:
            return None
        amount = self._rng.randint(1, max((total - fee) // 2, 1))
        payload = self._padding_for(amount)
        tx = make_signed_transfer(
            sender=sender,
            spendable=available,
            recipient_address=recipient.address,
            amount=amount,
            fee=fee,
            payload=payload,
        )
        for outpoint in tx.outpoints_spent():
            self._pending_spends.add(outpoint)
        return tx

    def reset_from_chain(self, blocks) -> None:
        """Rebuild wallet state from scratch off a (new) active chain.

        Called after a chain reorganization: confirmations on the stale
        branch no longer exist, so spendable outputs are recomputed by
        replaying the surviving chain in order.
        """
        for pool in self._spendable.values():
            pool.clear()
        self._pending_spends.clear()
        for block in blocks:
            self.on_block_confirmed(block)

    def release_pending(self, txs: list[Transaction]) -> None:
        """Un-reserve transfers that did not make it into a block.

        Relay-driven runs submit transfers to mempools; whatever the
        proposer leaves out must become spendable again.
        """
        for tx in txs:
            for outpoint in tx.outpoints_spent():
                self._pending_spends.discard(outpoint)

    def batch(self, count: int) -> list[Transaction]:
        """Up to ``count`` transfers (stops early when funds run dry)."""
        transactions: list[Transaction] = []
        for _ in range(count):
            tx = self.next_transfer()
            if tx is None:
                break
            transactions.append(tx)
        return transactions

    def _padding_for(self, amount: int) -> bytes:
        if self.config.target_tx_bytes == 0:
            return b""
        # Base 1-in/2-out transfer is ~250 bytes; pad the rest.
        base_estimate = 250
        pad = max(self.config.target_tx_bytes - base_estimate, 0)
        return bytes([amount % 251]) * pad


@dataclass(frozen=True)
class ReadWorkloadConfig:
    """Shape of a Zipf-skewed block-read stream.

    Attributes:
        seed: RNG seed; equal seeds yield identical read sequences.
        exponent: the Zipf ``s``: P(rank k) ∝ 1/k^s.  1.0–1.2 matches
            measured blockchain explorer/API traffic (recent blocks
            dominate, deep history is rarely touched).
    """

    seed: int = 0
    exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigurationError("zipf exponent must be > 0")


class ZipfReadWorkload:
    """Seeded stream of (requester, block hash) reads, Zipf over recency.

    Rank 1 is the **newest** block: popularity tracks recency, so as the
    chain grows the heat moves with the tip and old blocks cool — the
    access pattern adaptive replication is designed to exploit.  All
    draws come from one private ``random.Random(seed)``, so the sequence
    is a pure function of (seed, population sizes at each call).
    """

    def __init__(self, config: ReadWorkloadConfig | None = None) -> None:
        self.config = config or ReadWorkloadConfig()
        self._rng = random.Random(self.config.seed)
        # Cumulative Zipf weights, extended lazily as populations grow;
        # _cumulative[k-1] = sum over ranks 1..k of 1/rank^s.
        self._cumulative: list[float] = []

    def _extend_weights(self, n: int) -> None:
        s = self.config.exponent
        total = self._cumulative[-1] if self._cumulative else 0.0
        for rank in range(len(self._cumulative) + 1, n + 1):
            total += 1.0 / rank**s
            self._cumulative.append(total)

    def next_block(self, block_hashes: Sequence) -> object:
        """Draw one block, Zipf-weighted toward the end of the list."""
        n = len(block_hashes)
        if n == 0:
            raise ConfigurationError("cannot draw reads from zero blocks")
        self._extend_weights(n)
        point = self._rng.random() * self._cumulative[n - 1]
        rank = bisect.bisect_right(self._cumulative, point, 0, n) + 1
        # Rank 1 = newest: index from the end of the (height-ordered) list.
        return block_hashes[n - min(rank, n)]

    def next_read(
        self, block_hashes: Sequence, node_ids: Sequence[int]
    ) -> tuple[int, object]:
        """One (requester, block hash) pair; requesters are uniform."""
        requester = node_ids[self._rng.randrange(len(node_ids))]
        return requester, self.next_block(block_hashes)

    def reads(
        self,
        block_hashes: Sequence,
        node_ids: Sequence[int],
        count: int,
    ) -> list[tuple[int, object]]:
        """``count`` sequential reads against the current population."""
        return [
            self.next_read(block_hashes, node_ids)
            for _ in itertools.repeat(None, count)
        ]
