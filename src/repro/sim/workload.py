"""Synthetic transaction workloads.

Generates realistic UTXO traffic: a population of wallets pays each other
random amounts, transaction sizes are padded to a configurable target
(Bitcoin's mean ≈ 500 bytes), and every transaction is properly signed so
full validation paths run for real.

The generator only ever spends *confirmed* outputs (callers feed blocks
back via :meth:`TransactionWorkload.on_block_confirmed`), so the stream it
produces is always valid against the canonical chain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.transaction import (
    OutPoint,
    Transaction,
    make_signed_transfer,
)
from repro.crypto.keys import KeyPair, KeyRing
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape knobs.

    Attributes:
        n_wallets: distinct key pairs paying each other.
        target_tx_bytes: transactions are padded up to roughly this size
            (0 disables padding).
        fee_per_transfer: base units each transfer leaves unclaimed for
            the block proposer (0 = feeless).
        seed: RNG seed; equal seeds yield identical streams.
    """

    n_wallets: int = 20
    target_tx_bytes: int = 500
    fee_per_transfer: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_wallets < 2:
            raise ConfigurationError("need at least two wallets")
        if self.target_tx_bytes < 0:
            raise ConfigurationError("target_tx_bytes must be >= 0")
        if self.fee_per_transfer < 0:
            raise ConfigurationError("fee_per_transfer must be >= 0")


class TransactionWorkload:
    """Stateful generator of signed wallet-to-wallet transfers.

    The wallet population is seeded from the deterministic key ring, so
    ``KeyPair.from_seed(0)`` — the default genesis faucet — is wallet #0:
    constructing the workload against a default-genesis deployment "just
    works".
    """

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)
        self.wallets: list[KeyPair] = [
            KeyPair.from_seed(index) for index in range(self.config.n_wallets)
        ]
        self._ring = KeyRing()
        self._spendable: dict[bytes, list[tuple[OutPoint, int]]] = {
            wallet.address: [] for wallet in self.wallets
        }
        self._pending_spends: set[OutPoint] = set()

    # ------------------------------------------------------------- funding
    def on_block_confirmed(self, block: Block) -> None:
        """Credit outputs of a confirmed block to the owning wallets."""
        known = {wallet.address for wallet in self.wallets}
        for tx in block.transactions:
            for outpoint in tx.outpoints_spent():
                self._pending_spends.discard(outpoint)
                for pool in self._spendable.values():
                    pool[:] = [
                        pair for pair in pool if pair[0] != outpoint
                    ]
            for index, output in enumerate(tx.outputs):
                if output.address in known:
                    self._spendable[output.address].append(
                        (OutPoint(txid=tx.txid, index=index), output.value)
                    )

    def spendable_value(self, wallet: KeyPair) -> int:
        """Confirmed, not-yet-committed value a wallet can spend now."""
        return sum(
            value
            for outpoint, value in self._spendable[wallet.address]
            if outpoint not in self._pending_spends
        )

    # ---------------------------------------------------------- generation
    def next_transfer(self) -> Transaction | None:
        """One random wallet-to-wallet payment, or ``None`` if nobody can pay.

        The chosen sender spends its confirmed outputs; the transfer is
        marked pending so the same outputs are not double-offered before
        confirmation.
        """
        candidates = [
            wallet
            for wallet in self.wallets
            if self.spendable_value(wallet) > 1
        ]
        if not candidates:
            return None
        sender = self._rng.choice(candidates)
        recipient = self._rng.choice(
            [w for w in self.wallets if w is not sender]
        )
        available = [
            pair
            for pair in self._spendable[sender.address]
            if pair[0] not in self._pending_spends
        ]
        total = sum(value for _, value in available)
        fee = self.config.fee_per_transfer
        if total <= fee + 1:
            return None
        amount = self._rng.randint(1, max((total - fee) // 2, 1))
        payload = self._padding_for(amount)
        tx = make_signed_transfer(
            sender=sender,
            spendable=available,
            recipient_address=recipient.address,
            amount=amount,
            fee=fee,
            payload=payload,
        )
        for outpoint in tx.outpoints_spent():
            self._pending_spends.add(outpoint)
        return tx

    def reset_from_chain(self, blocks) -> None:
        """Rebuild wallet state from scratch off a (new) active chain.

        Called after a chain reorganization: confirmations on the stale
        branch no longer exist, so spendable outputs are recomputed by
        replaying the surviving chain in order.
        """
        for pool in self._spendable.values():
            pool.clear()
        self._pending_spends.clear()
        for block in blocks:
            self.on_block_confirmed(block)

    def release_pending(self, txs: list[Transaction]) -> None:
        """Un-reserve transfers that did not make it into a block.

        Relay-driven runs submit transfers to mempools; whatever the
        proposer leaves out must become spendable again.
        """
        for tx in txs:
            for outpoint in tx.outpoints_spent():
                self._pending_spends.discard(outpoint)

    def batch(self, count: int) -> list[Transaction]:
        """Up to ``count`` transfers (stops early when funds run dry)."""
        transactions: list[Transaction] = []
        for _ in range(count):
            tx = self.next_transfer()
            if tx is None:
                break
            transactions.append(tx)
        return transactions

    def _padding_for(self, amount: int) -> bytes:
        if self.config.target_tx_bytes == 0:
            return b""
        # Base 1-in/2-out transfer is ~250 bytes; pad the rest.
        base_estimate = 250
        pad = max(self.config.target_tx_bytes - base_estimate, 0)
        return bytes([amount % 251]) * pad
