"""Domain-aware vs domain-oblivious placement under a zone outage (E21).

The failure-domain subsystem's acceptance experiment
(:mod:`repro.net.domains`): two seeded deployments replay an identical
clean block stream, then lose **one whole zone at once** — the same
physical victim set in both arms, resolved through a shared
:class:`~repro.net.domains.FailureDomainMap` so the outage is identical
regardless of which arm is placement-aware:

* **aware** — :meth:`~repro.core.icistrategy.ICIDeployment.
  enable_domain_awareness` swaps in
  :class:`~repro.storage.placement.DomainSpreadPlacement`, so every
  block's ``r`` replicas span distinct zones and a zone outage can
  remove at most one copy per cluster;
* **oblivious** — the default rendezvous placement, which stacks both
  replicas of a ``C(z, r)``-predictable fraction of blocks inside the
  killed zone.

Each arm measures, in order: **blocks lost** (cluster/block pairs with
zero live in-cluster copies, the census taken the instant the zone
dies), a seeded **read batch under the outage** (live requesters, the
chaos retry policy, cross-cluster failover allowed — the aware arm must
complete every read), then a heal followed by bounded anti-entropy
sweeps measuring **time to restored zone diversity**.  Crashed members
keep their disks (the fault layer's crash model), so the oblivious arm
recovers *coverage* at heal time — but its stacked blocks stay
single-zone forever: with no domain map there is no mechanism to
re-spread them, and the diversity clock runs out at the sweep cap.

Everything derives from one seed; :meth:`DomainCompareOutcome.signature`
is the determinism fingerprint the test suite pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.net.domains import FailureDomainMap
from repro.sim.chaos import CHAOS_QUERY_POLICY
from repro.sim.faults import FaultConfig, FaultPlan
from repro.sim.runner import ScenarioRunner

#: The two measured arms, in run (and report) order.
ARMS = ("aware", "oblivious")


@dataclass(frozen=True)
class DomainCompareConfig:
    """One seeded aware-vs-oblivious zone-outage comparison."""

    seed: int = 42
    n_nodes: int = 32
    n_clusters: int = 4
    replication: int = 2
    #: Failure domains; the outage kills every member of one of them.
    zones: int = 2
    n_blocks: int = 12
    txs_per_block: int = 2
    #: Seeded reads issued while the zone is down (live requesters).
    reads: int = 16
    repair_cadence: float = 5.0
    #: Post-heal sweep budget for the diversity clock; an arm that has
    #: not restored zone spread by then records ``-1`` (never).
    max_heal_rounds: int = 6

    def __post_init__(self) -> None:
        if self.n_clusters < 2:
            raise ConfigurationError("compare runs need >= 2 clusters")
        if self.n_nodes < 2 * self.n_clusters:
            raise ConfigurationError("every cluster needs >= 2 members")
        if self.zones < 2:
            raise ConfigurationError("domain runs need at least 2 zones")
        if self.replication < 2:
            raise ConfigurationError(
                "spread needs a replication factor >= 2"
            )
        if self.n_blocks < 2:
            raise ConfigurationError("compare runs need at least 2 blocks")
        if self.reads < 1:
            raise ConfigurationError("reads must be >= 1")
        if self.repair_cadence <= 0:
            raise ConfigurationError("repair_cadence must be > 0")
        if self.max_heal_rounds < 1:
            raise ConfigurationError("max_heal_rounds must be >= 1")


@dataclass
class DomainCompareOutcome:
    """Both arms' loss/read/diversity bills under the identical outage."""

    config: DomainCompareConfig
    #: The killed zone (one seeded draw, shared by both arms).
    zone_killed: int = -1
    #: Victims of the outage (identical across arms by construction).
    victims: list[int] = field(default_factory=list)
    #: One all-integer row per arm (keys: :data:`ARMS`): ``blocks_lost,
    #: reads_attempted, reads_completed, reads_failed, reads_degraded,
    #: repairs_scheduled, blocks_re_replicated, repairs_degraded,
    #: diversity_repairs, spread_deficit, rounds_to_diversity``.
    arms: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The driven deployments per arm, for the bench harness's
    #: simulated metrics (not part of the signature).
    deployments: dict[str, ICIDeployment] = field(
        default_factory=dict, repr=False
    )

    @property
    def aware_lossless(self) -> bool:
        """The headline claim: spread placement rides out a zone loss.

        Zero cluster/block pairs without a live in-cluster copy, and
        every read issued during the outage completed.
        """
        row = self.arms.get("aware")
        return (
            row is not None
            and row["blocks_lost"] == 0
            and row["reads_failed"] == 0
        )

    @property
    def oblivious_exposed(self) -> bool:
        """The control: stacked placements measurably lose coverage."""
        row = self.arms.get("oblivious")
        return row is not None and row["blocks_lost"] > 0

    @property
    def diversity_restored(self) -> bool:
        """The aware arm ended every block zone-diverse within budget."""
        row = self.arms.get("aware")
        return row is not None and row["rounds_to_diversity"] >= 0

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed)."""
        return {
            "zone_killed": self.zone_killed,
            "victims": list(self.victims),
            "arms": {name: dict(row) for name, row in self.arms.items()},
            "aware_lossless": self.aware_lossless,
            "oblivious_exposed": self.oblivious_exposed,
            "diversity_restored": self.diversity_restored,
        }


def _coverage_lost(deployment: ICIDeployment) -> int:
    """Cluster/block pairs with zero live in-cluster copies right now."""
    from repro.sim.faults import live_members

    lost = 0
    headers = [
        header
        for header in deployment.ledger.store.iter_active_headers()
        if not header.is_genesis
    ]
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        for header in headers:
            if not any(
                deployment.nodes[member].store.has_body(header.block_hash)
                for member in live
            ):
                lost += 1
    return lost


def _diversity_with(
    deployment: ICIDeployment, domains: FailureDomainMap
) -> bool:
    """Zone-diversity audit against an *explicit* map (fixed-``r``).

    The oblivious arm has no map of its own, so both arms are judged
    against the shared victim-resolution map — the physical topology —
    exactly like :func:`repro.sim.chaos.domain_diversity_met` judges a
    domain-aware deployment against its installed map.
    """
    from repro.sim.faults import live_members

    replication = deployment.config.replication
    headers = list(deployment.ledger.store.iter_active_headers())
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        live_zone_count = len(domains.zones_of(live))
        floor = min(replication, len(live))
        need = min(floor, live_zone_count)
        for header in headers:
            if header.is_genesis:
                continue
            holders = [
                member
                for member in live
                if deployment.nodes[member].store.has_body(
                    header.block_hash
                )
            ]
            if len(domains.zones_of(holders)) < need:
                return False
    return True


def _run_arm(
    config: DomainCompareConfig,
    aware: bool,
    limits: ValidationLimits,
) -> tuple[dict[str, int], int, list[int], ICIDeployment]:
    """Drive one arm: produce clean, kill a zone, read, heal, sweep."""
    from repro.sim.faults import live_members

    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    deployment = ICIDeployment(config.n_nodes, config=ici)
    if aware:
        deployment.enable_domain_awareness(zones=config.zones)
    # The victim-resolution map: a standalone instance with the same
    # striping, so both arms crash the identical physical node set (the
    # aware arm's installed map derives the same labels — one pure
    # function of the node id).
    topology = FailureDomainMap(zones=config.zones)
    topology.sync(deployment.nodes.keys())
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    # Clean weather: the injector exists for its outage machinery (and
    # for the query engine's failover tail), but drops nothing.
    injector = FaultPlan(config=FaultConfig(seed=config.seed)).install(
        deployment.network
    )
    injector.bind_domains(topology.members_of_zone)
    deployment.query.set_retry_policy(CHAOS_QUERY_POLICY)

    report = runner.produce_blocks(
        config.n_blocks, txs_per_block=config.txs_per_block
    )
    deployment.run()

    # The outage: one seeded zone draw, then the whole zone at once.
    rng = random.Random(config.seed ^ 0xD0A1)
    zone_killed = rng.randrange(config.zones)
    victims = list(injector.crash_domain(zone_killed))

    row = {
        "blocks_lost": _coverage_lost(deployment),
        "reads_attempted": 0,
        "reads_completed": 0,
        "reads_failed": 0,
        "reads_degraded": 0,
        "repairs_scheduled": 0,
        "blocks_re_replicated": 0,
        "repairs_degraded": 0,
        "diversity_repairs": 0,
        "spread_deficit": 0,
        "rounds_to_diversity": -1,
    }

    # Reads while the zone is down: live requesters, seeded pairs.
    live = live_members(deployment.network, sorted(deployment.nodes))
    for _ in range(config.reads):
        requester = rng.choice(live)
        block_hash = rng.choice(report.block_hashes)
        record = deployment.retrieve_block(requester, block_hash)
        deployment.run()
        row["reads_attempted"] += 1
        if record.completed_at is not None:
            row["reads_completed"] += 1
        else:
            row["reads_failed"] += 1
        if record.degraded:
            row["reads_degraded"] += 1

    # Heal, then bounded sweeps until zone diversity is back.  Crashed
    # members kept their disks, so coverage returns with them; what the
    # sweeps must restore is *spread*, which only the aware arm can.
    injector.heal()
    repair = deployment.repair
    repair.start(cadence=config.repair_cadence)
    for sweep_round in range(config.max_heal_rounds + 1):
        if _diversity_with(deployment, topology):
            row["rounds_to_diversity"] = sweep_round
            break
        deployment.network.clock.run_for(config.repair_cadence)
    repair.stop()
    deployment.run()

    row["repairs_scheduled"] = repair.stats.repairs_scheduled
    row["blocks_re_replicated"] = repair.stats.blocks_re_replicated
    row["repairs_degraded"] = repair.stats.repairs_degraded
    row["diversity_repairs"] = repair.diversity_repairs
    row["spread_deficit"] = getattr(
        deployment.placement, "domain_spread_deficit", 0
    )
    return row, zone_killed, victims, deployment


def run_domain_compare(
    config: DomainCompareConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
) -> DomainCompareOutcome:
    """Run both arms under the identical zone outage (see module docs)."""
    config = config or DomainCompareConfig()
    outcome = DomainCompareOutcome(config=config)
    for name in ARMS:
        row, zone_killed, victims, deployment = _run_arm(
            config, aware=(name == "aware"), limits=limits
        )
        outcome.arms[name] = row
        outcome.deployments[name] = deployment
        if outcome.zone_killed < 0:
            outcome.zone_killed = zone_killed
            outcome.victims = victims
        else:
            # The comparison is only fair if the outage was identical.
            assert zone_killed == outcome.zone_killed
            assert victims == outcome.victims
    return outcome
