"""Simulation harness: workloads, scenarios, churn, the experiment runner."""

from repro.sim.churn import (
    ChurnConfig,
    ChurnDriver,
    ChurnEvent,
    ChurnKind,
    ChurnOutcome,
    make_schedule,
)
from repro.sim.runner import RunReport, ScenarioRunner
from repro.sim.scenario import (
    BENCH_LIMITS,
    Scenario,
    build_deployment,
    build_network,
)
from repro.sim.workload import TransactionWorkload, WorkloadConfig

__all__ = [
    "ChurnConfig",
    "ChurnDriver",
    "ChurnEvent",
    "ChurnKind",
    "ChurnOutcome",
    "make_schedule",
    "RunReport",
    "ScenarioRunner",
    "BENCH_LIMITS",
    "Scenario",
    "build_deployment",
    "build_network",
    "TransactionWorkload",
    "WorkloadConfig",
]
