"""Adaptive-vs-fixed replication comparison under a Zipf read workload.

The acceptance experiment for heat-aware adaptive replication
(:mod:`repro.storage.heat`): drive two same-seed deployments — one at
fixed ``r``, one with the heat tracker + replication planner — through
an identical block stream and an identical Zipf-skewed read stream, let
the anti-entropy sweep converge placements between read batches, and
compare:

* **total ledger bytes** (the paper's headline metric): the adaptive
  deployment must store meaningfully less, because the cold tail (the
  bulk of a Zipf-read chain) drops to one in-cluster copy while only
  the thin hot head gains extras;
* **p95 query latency** (the feedback signal the ROADMAP names): it
  must not regress, because the extra hot replicas turn the most
  popular reads into local hits while cold reads still land on their
  placement-first keeper — the same first hop the fixed plan uses.

Between rounds the adaptive run is audited: every cluster must hold
every block (cross-cluster coverage) and no block may sit below its
**shed floor** — ``min(target, r, live)``, never under one copy.  A
deficit *toward* a hot target is convergence work; a hole *below* the
shed floor could only come from a bad shed, so breaches are counted
and pinned at zero.

Everything is seeded, so the whole outcome — byte totals, tier counts,
shed counters, latency ranks — is a determinism signature the test
suite and the CI smoke step pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.errors import ConfigurationError
from repro.obs.summary import percentile
from repro.obs.tracer import Tracer
from repro.sim.runner import ScenarioRunner
from repro.sim.workload import ReadWorkloadConfig, ZipfReadWorkload


@dataclass(frozen=True)
class AdaptiveCompareConfig:
    """One seeded adaptive-vs-fixed comparison."""

    seed: int = 42
    n_nodes: int = 18
    n_clusters: int = 3
    replication: int = 2
    n_blocks: int = 16
    txs_per_block: int = 4
    #: Total reads, split evenly across the convergence rounds.
    reads: int = 150
    zipf_exponent: float = 1.1
    #: Read-batch + sweep-window rounds after production.
    rounds: int = 6
    repair_cadence: float = 5.0
    #: Optional heat-model override (``None`` = HeatConfig defaults).
    heat: "object | None" = None
    backend: str = "serial"
    workers: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 2:
            raise ConfigurationError("compare runs need at least 2 blocks")
        if self.reads < 1 or self.rounds < 1:
            raise ConfigurationError("reads/rounds must be >= 1")
        if self.repair_cadence <= 0:
            raise ConfigurationError("repair_cadence must be > 0")
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be > 0")


@dataclass
class AdaptiveCompareOutcome:
    """Both runs' storage bills, latency tails, and shed-safety audit."""

    config: AdaptiveCompareConfig
    fixed_bytes: int = 0
    adaptive_bytes: int = 0
    fixed_queries_completed: int = 0
    adaptive_queries_completed: int = 0
    fixed_p95_latency: float = 0.0
    adaptive_p95_latency: float = 0.0
    tier_counts: dict[str, int] = field(default_factory=dict)
    tier_body_bytes: dict[str, int] = field(default_factory=dict)
    adaptive_stats: dict[str, int] = field(default_factory=dict)
    #: Per-round audits that found a cluster missing a block entirely.
    coverage_breaches: int = 0
    #: Per-round audits that found a block below its shed floor.
    floor_breaches: int = 0
    audit_rounds: int = 0
    #: The driven deployments, for the bench harness's simulated
    #: metrics (not part of the signature).
    fixed_deployment: ICIDeployment | None = field(
        default=None, repr=False
    )
    adaptive_deployment: ICIDeployment | None = field(
        default=None, repr=False
    )
    tracer: Tracer | None = field(default=None, repr=False)

    @property
    def savings_fraction(self) -> float:
        """Ledger bytes saved by the adaptive run, as a fraction."""
        if self.fixed_bytes == 0:
            return 0.0
        return 1.0 - self.adaptive_bytes / self.fixed_bytes

    @property
    def latency_ok(self) -> bool:
        """Adaptive p95 query latency equal or better than fixed-r."""
        return self.adaptive_p95_latency <= self.fixed_p95_latency

    @property
    def converged_safely(self) -> bool:
        """No coverage hole or sub-floor block in any audit round."""
        return (
            self.audit_rounds > 0
            and self.coverage_breaches == 0
            and self.floor_breaches == 0
            and self.adaptive_stats.get("floor_violations", 0) == 0
        )

    def signature(self) -> dict:
        """The determinism fingerprint: equal for equal (config, seed)."""
        return {
            "fixed_bytes": self.fixed_bytes,
            "adaptive_bytes": self.adaptive_bytes,
            "fixed_queries_completed": self.fixed_queries_completed,
            "adaptive_queries_completed": self.adaptive_queries_completed,
            "fixed_p95_latency": self.fixed_p95_latency,
            "adaptive_p95_latency": self.adaptive_p95_latency,
            "tier_counts": dict(self.tier_counts),
            "tier_body_bytes": dict(self.tier_body_bytes),
            "adaptive_stats": dict(self.adaptive_stats),
            "coverage_breaches": self.coverage_breaches,
            "floor_breaches": self.floor_breaches,
            "audit_rounds": self.audit_rounds,
            "savings_bp": int(self.savings_fraction * 10_000),
        }


def shed_floor_met(deployment: ICIDeployment, planner) -> bool:
    """Is every block at or above ``min(target, r, live)`` everywhere?

    The invariant a *shed* can break (capped at the base ``r``, so a
    not-yet-filled hot target — a deficit, the repair side's job — is
    not a breach).  Used round-by-round during convergence; the final
    audit also runs the stricter
    :func:`repro.sim.chaos.adaptive_floor_met`.
    """
    from repro.sim.faults import live_members

    base = deployment.config.replication
    for view in deployment.clusters.views():
        live = live_members(deployment.network, sorted(view.members))
        if not live:
            continue
        for header in deployment.ledger.store.iter_active_headers():
            if header.is_genesis:
                continue
            target = planner.target_for(header.block_hash)
            floor = min(max(target, 1), base, len(live))
            holders = sum(
                1
                for member in live
                if deployment.nodes[member].store.has_body(
                    header.block_hash
                )
            )
            if holders < floor:
                return False
    return True


def _drive(
    config: AdaptiveCompareConfig,
    limits: ValidationLimits,
    adaptive: bool,
    outcome: AdaptiveCompareOutcome,
) -> ICIDeployment:
    """One side of the comparison: produce, read in rounds, sweep."""
    from repro.sim.backend import backend_scope, parse_backend
    from repro.sim.chaos import adaptive_floor_met

    ici = ICIConfig(
        n_clusters=config.n_clusters,
        replication=config.replication,
        limits=limits,
    )
    with backend_scope(parse_backend(config.backend, config.workers)):
        deployment = ICIDeployment(config.n_nodes, config=ici)
    planner = (
        deployment.enable_adaptive_replication(config.heat)
        if adaptive
        else None
    )
    runner = ScenarioRunner(deployment, limits=limits, seed=config.seed)
    report = runner.produce_blocks(
        config.n_blocks, txs_per_block=config.txs_per_block
    )
    block_hashes = report.block_hashes
    # Both sides replay the *same* read sequence: the workload is a pure
    # function of its seed and the (identical) population sizes.
    reads = ZipfReadWorkload(
        ReadWorkloadConfig(
            seed=config.seed ^ 0x2EAD, exponent=config.zipf_exponent
        )
    )
    node_ids = sorted(deployment.nodes)
    repair = deployment.repair
    per_round, remainder = divmod(config.reads, config.rounds)
    for round_index in range(config.rounds):
        batch = per_round + (1 if round_index < remainder else 0)
        for requester, block_hash in reads.reads(
            block_hashes, node_ids, batch
        ):
            deployment.retrieve_block(requester, block_hash)
        deployment.run()
        repair.start(cadence=config.repair_cadence)
        deployment.network.clock.run_for(config.repair_cadence * 2)
        repair.stop()
        deployment.run()
        if planner is not None:
            outcome.audit_rounds += 1
            if not all(
                deployment.cluster_holds_full_ledger(view.cluster_id)
                for view in deployment.clusters.views()
            ):
                outcome.coverage_breaches += 1
            if not shed_floor_met(deployment, planner):
                outcome.floor_breaches += 1

    completed = [
        record.completed_at - record.started_at
        for record in deployment.metrics.queries
        if record.completed_at is not None
    ]
    p95 = percentile(sorted(completed), 0.95) if completed else 0.0
    total_bytes = deployment.storage_report().total_bytes
    if planner is None:
        outcome.fixed_bytes = total_bytes
        outcome.fixed_queries_completed = len(completed)
        outcome.fixed_p95_latency = p95
    else:
        outcome.adaptive_bytes = total_bytes
        outcome.adaptive_queries_completed = len(completed)
        outcome.adaptive_p95_latency = p95
        outcome.tier_counts = planner.tier_counts()
        outcome.tier_body_bytes = planner.tier_body_bytes()
        outcome.adaptive_stats = dict(planner.as_dict())
        if not adaptive_floor_met(deployment, planner):
            # Final state must also satisfy the tier-aware floor (hot
            # targets filled, cold floors held).
            outcome.floor_breaches += 1
    return deployment


def run_adaptive_compare(
    config: AdaptiveCompareConfig | None = None,
    limits: ValidationLimits = DEFAULT_LIMITS,
    tracer: Tracer | None = None,
) -> AdaptiveCompareOutcome:
    """Run the fixed-r and adaptive deployments and compare (module docs).

    With a ``tracer``, both deployments attach to it (separate track
    labels), so one trace carries the fixed and adaptive timelines side
    by side — including the adaptive run's ``heat_reclassified``
    instants and per-tier ledger-byte counters.
    """
    from repro.obs.hooks import install_tracing

    config = config or AdaptiveCompareConfig()
    outcome = AdaptiveCompareOutcome(config=config, tracer=tracer)
    for adaptive in (False, True):
        deployment = _drive(config, limits, adaptive, outcome)
        if tracer is not None:
            install_tracing(
                deployment,
                tracer,
                label="adaptive" if adaptive else "fixed",
            )
        if adaptive:
            outcome.adaptive_deployment = deployment
        else:
            outcome.fixed_deployment = deployment
    return outcome
