"""The experiment runner: drives blocks through any deployment.

The runner plays the role the authors' testbed driver plays: it seals
valid blocks from a synthetic workload at a configurable cadence, injects
each at a schedule-chosen proposer, and lets the deployment's own
protocols do the rest.  All experiment benches sit on top of this one
loop, so strategies are compared under byte-identical block streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block
from repro.chain.mempool import Mempool
from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.consensus.proposer import BlockProposer, ProposerSchedule
from repro.core.interface import StorageDeployment
from repro.crypto.hashing import Hash32
from repro.errors import SimulationError
from repro.sim.workload import TransactionWorkload, WorkloadConfig


@dataclass
class RunReport:
    """What one production run did."""

    blocks_produced: int = 0
    transactions_produced: int = 0
    total_body_bytes: int = 0
    block_hashes: list[Hash32] = field(default_factory=list)
    blocks: list[Block] = field(default_factory=list)

    @property
    def ledger_bytes(self) -> int:
        """Ledger growth this run caused: headers + bodies."""
        return self.total_body_bytes + 84 * self.blocks_produced


class ScenarioRunner:
    """Seals blocks from a workload and feeds them to a deployment."""

    def __init__(
        self,
        deployment: StorageDeployment,
        workload: TransactionWorkload | None = None,
        limits: ValidationLimits = DEFAULT_LIMITS,
        block_interval: float = 10.0,
        seed: int = 0,
    ) -> None:
        self.deployment = deployment
        self.workload = workload or TransactionWorkload(WorkloadConfig())
        self.limits = limits
        self.block_interval = block_interval
        self.schedule = ProposerSchedule(
            sorted(deployment.nodes), seed=seed
        )
        genesis = self._find_genesis()
        self._tip_hash = genesis.block_hash
        self._tip_height = 0
        self.workload.on_block_confirmed(genesis)

    @classmethod
    def for_scenario(
        cls,
        scenario,
        backend: str | None = None,
        workers: int = 2,
        **kwargs,
    ) -> "ScenarioRunner":
        """Build a scenario's deployment under a simulation backend.

        ``backend`` is a CLI-style name (``"serial"``/``"parallel"``/
        ``None``); the deployment is constructed inside the matching
        :func:`~repro.sim.backend.backend_scope`, so ``"parallel"``
        yields a cluster-sharded clock.  Remaining kwargs go to
        ``__init__``.
        """
        from repro.sim.backend import backend_scope, parse_backend
        from repro.sim.scenario import build_deployment

        with backend_scope(parse_backend(backend, workers)):
            deployment = build_deployment(scenario)
        return cls(deployment, **kwargs)

    @property
    def pending_events(self) -> int:
        """Events still queued on the deployment's clock (O(1))."""
        return self.deployment.network.clock.pending

    def _find_genesis(self) -> Block:
        ledger = getattr(self.deployment, "ledger", None)
        if ledger is not None:
            return ledger.store.body(ledger.active_hash_at(0))
        genesis = getattr(self.deployment, "genesis", None)
        if genesis is None:
            raise SimulationError(
                "deployment exposes neither .ledger nor .genesis"
            )
        return genesis

    # ------------------------------------------------------------- driving
    def produce_blocks(
        self,
        n_blocks: int,
        txs_per_block: int = 20,
        drain_between_blocks: bool = True,
        drain_at_end: bool = True,
    ) -> RunReport:
        """Seal and disseminate ``n_blocks`` consecutive blocks.

        Args:
            n_blocks: how many blocks to produce.
            txs_per_block: workload transfers offered per block (actual
                count can be lower early on, while coins fan out).
            drain_between_blocks: when ``True`` (default) the simulator
                runs to quiescence after each block — every cluster
                finalizes before the next block is sealed.  When ``False``
                blocks are spaced ``block_interval`` apart and may pipeline.
            drain_at_end: when ``True`` (default) the simulator runs to
                quiescence after the last block.  Endurance runs pass
                ``False`` because a periodic engine (the anti-entropy
                sweep) keeps the event queue perpetually non-empty.
        """
        report = RunReport()
        for _ in range(n_blocks):
            block = self._seal_next(txs_per_block)
            proposer = self._live_proposer(block.height)
            self.deployment.disseminate(block, proposer)
            report.blocks_produced += 1
            report.transactions_produced += len(block.transactions) - 1
            report.total_body_bytes += block.body_size_bytes
            report.block_hashes.append(block.block_hash)
            report.blocks.append(block)
            self.workload.on_block_confirmed(block)
            if drain_between_blocks:
                self.deployment.run()
            else:
                self.deployment.run_for(self.block_interval)
        if drain_at_end:
            self.deployment.run()
        return report

    def produce_blocks_via_relay(
        self, n_blocks: int, txs_per_block: int = 20
    ) -> RunReport:
        """Realistic pipeline: relay transactions first, then propose.

        Each round submits the workload's transfers at random nodes, lets
        tx gossip spread them to every mempool, and has the scheduled
        proposer seal the block **from its own mempool** — exactly how a
        real network fills blocks.  Requires a deployment exposing
        ``submit_transaction``/``mempool_of`` (the ICI deployment does).
        """
        import random

        submit = getattr(self.deployment, "submit_transaction", None)
        mempool_of = getattr(self.deployment, "mempool_of", None)
        if submit is None or mempool_of is None:
            raise SimulationError(
                "deployment does not support transaction relay"
            )
        rng = random.Random(0x51)
        report = RunReport()
        for _ in range(n_blocks):
            # Re-read the population each round: churn may have run.
            node_ids = sorted(self.deployment.nodes)
            offered = self.workload.batch(txs_per_block)
            for tx in offered:
                submit(tx, rng.choice(node_ids))
            self.deployment.run()  # relay to quiescence

            height = self._tip_height + 1
            proposer_id = self._live_proposer(height)
            proposer_node = self.deployment.nodes[proposer_id]
            builder = BlockProposer(
                miner_address=proposer_node.address,  # type: ignore[attr-defined]
                limits=self.limits,
            )
            block = builder.propose(
                height=height,
                prev_hash=self._tip_hash,
                mempool=mempool_of(proposer_id),
                timestamp=height * self.block_interval,
                utxos=self._parent_utxos(),
            )
            self._tip_hash = block.block_hash
            self._tip_height = height
            self.deployment.disseminate(block, proposer_id)
            self.deployment.run()

            included = set(tx.txid for tx in block.transactions)
            self.workload.release_pending(
                [tx for tx in offered if tx.txid not in included]
            )
            self.workload.on_block_confirmed(block)
            report.blocks_produced += 1
            report.transactions_produced += len(block.transactions) - 1
            report.total_body_bytes += block.body_size_bytes
            report.block_hashes.append(block.block_hash)
            report.blocks.append(block)
        return report

    def produce_fork(
        self, fork_from_height: int, length: int
    ) -> list[Block]:
        """Disseminate a competing branch rooted at a past block.

        Builds ``length`` coinbase-only blocks on top of the canonical
        block at ``fork_from_height`` (empty bodies keep the branch valid
        without forked wallet state) and injects each through the normal
        dissemination path.  When the branch outgrows the canonical
        chain, fork-aware deployments reorganize onto it.

        Returns the branch blocks, tip last.
        """
        from repro.chain.transaction import make_coinbase
        from repro.chain.block import build_block
        from repro.crypto.keys import KeyPair

        ledger = getattr(self.deployment, "ledger", None)
        if ledger is None:
            raise SimulationError("deployment exposes no canonical ledger")
        prev_hash = ledger.active_hash_at(fork_from_height)
        prev_header = ledger.store.header(prev_hash)
        branch: list[Block] = []
        for offset in range(1, length + 1):
            height = fork_from_height + offset
            miner = KeyPair.from_seed(7_000_000 + height)
            block = build_block(
                height=height,
                prev_hash=prev_hash,
                transactions=[
                    make_coinbase(
                        self.limits.block_reward, miner.address, height
                    )
                ],
                timestamp=prev_header.timestamp + 0.5 * offset,
                nonce=height + 1_000_000,  # distinct from mainline nonce
            )
            proposer = self._live_proposer(height)
            self.deployment.disseminate(block, proposer)
            self.deployment.run()
            branch.append(block)
            prev_hash = block.block_hash
            prev_header = block.header
        new_tip = ledger.tip
        if new_tip is not None and new_tip.block_hash == prev_hash:
            # The deployment reorged onto the fork: future sealing must
            # extend it, and the workload's confirmations on the stale
            # branch are void — replay the surviving chain.
            self._tip_hash = prev_hash
            self._tip_height = new_tip.height
            self.workload.reset_from_chain(
                ledger.store.body(header.block_hash)
                for header in ledger.store.iter_active_headers()
                if ledger.store.has_body(header.block_hash)
            )
        return branch

    def _seal_next(self, txs_per_block: int) -> Block:
        height = self._tip_height + 1
        proposer_id = self._live_proposer(height)
        proposer_node = self.deployment.nodes[proposer_id]
        builder = BlockProposer(
            miner_address=proposer_node.address,  # type: ignore[attr-defined]
            limits=self.limits,
        )
        transactions = self.workload.batch(txs_per_block)
        # Nominal timestamps (height × interval) keep the block stream
        # byte-identical across strategies regardless of simulated delays.
        block = builder.propose(
            height=height,
            prev_hash=self._tip_hash,
            mempool=Mempool(limits=self.limits),
            timestamp=height * self.block_interval,
            extra_transactions=transactions,
            utxos=self._parent_utxos(),
        )
        self._tip_hash = block.block_hash
        self._tip_height = height
        return block

    def _live_proposer(self, height: int) -> int:
        """The scheduled proposer, skipping nodes that have departed.

        Departed members are dropped from the rotation on sight, so the
        schedule self-heals without callers wiring churn into it.
        """
        while True:
            proposer = self.schedule.proposer_at(height)
            if proposer in self.deployment.nodes:
                return proposer
            self.schedule.remove(proposer)

    def _parent_utxos(self):
        """The parent chain state, for coinbase fee claiming (or None)."""
        ledger = getattr(self.deployment, "ledger", None)
        return ledger.utxos if ledger is not None else None

    @property
    def chain_height(self) -> int:
        """Height of the last sealed block."""
        return self._tip_height
