"""Scenario descriptions: one place to build comparable deployments.

A :class:`Scenario` captures everything an experiment varies — strategy,
population, cluster layout, latency model — and :func:`build_deployment`
turns it into a live deployment.  Benches construct scenarios instead of
deployments so strategies are always built on identically-configured
substrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.full_replication import FullReplicationDeployment
from repro.baselines.rapidchain import RapidChainDeployment
from repro.chain.validation import ValidationLimits
from repro.clustering.coordinates import place_regions, place_uniform
from repro.core.config import ICIConfig
from repro.core.icistrategy import ICIDeployment
from repro.core.interface import StorageDeployment
from repro.errors import ConfigurationError
from repro.net.latency import (
    ConstantLatency,
    CoordinateLatency,
    UniformLatency,
)
from repro.net.network import Network

#: Small limits suited to simulation benches: ~50 KB blocks keep event
#: counts manageable while preserving every size *ratio* the paper cares
#: about (all strategies are compared under the same limits).
BENCH_LIMITS = ValidationLimits(
    max_block_body_bytes=50_000,
    max_tx_bytes=10_000,
)


@dataclass(frozen=True)
class Scenario:
    """One experiment's deployment recipe.

    Attributes:
        strategy: ``"ici"``, ``"full"``, or ``"rapidchain"``.
        n_nodes: population size.
        n_groups: clusters (ICI) or committees (RapidChain); ignored by
            full replication.
        replication: ICI in-cluster replication factor.
        latency: ``"constant"``, ``"uniform"``, or ``"regions"`` (2-D
            coordinates with geographic blobs).
        placement / clustering / aggregate_votes / verify_collaboratively:
            forwarded into :class:`~repro.core.config.ICIConfig`.
    """

    strategy: str = "ici"
    n_nodes: int = 40
    n_groups: int = 4
    replication: int = 1
    latency: str = "uniform"
    placement: str = "hash"
    clustering: str = "random"
    aggregate_votes: bool = True
    verify_collaboratively: bool = True
    limits: ValidationLimits = field(default_factory=lambda: BENCH_LIMITS)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("ici", "full", "rapidchain"):
            raise ConfigurationError(f"unknown strategy {self.strategy!r}")
        if self.latency not in ("constant", "uniform", "regions"):
            raise ConfigurationError(f"unknown latency {self.latency!r}")
        if self.n_nodes < 1:
            raise ConfigurationError("n_nodes must be positive")


def build_network(scenario: Scenario) -> tuple[Network, list | None]:
    """The fabric for a scenario; returns ``(network, coordinates)``.

    The clock is left to :class:`Network`'s default, which consults the
    active :mod:`simulation backend <repro.sim.backend>` — so scenarios
    built inside a ``backend_scope`` run sharded.
    """
    coordinates = None
    if scenario.latency == "constant":
        latency = ConstantLatency(0.05)
    elif scenario.latency == "uniform":
        latency = UniformLatency(0.02, 0.2, seed=scenario.seed)
    else:
        coordinates = place_regions(
            scenario.n_nodes,
            n_regions=max(scenario.n_groups, 2),
            seed=scenario.seed,
        )
        latency = CoordinateLatency(coordinates)
    return Network(latency=latency), coordinates


def build_deployment(scenario: Scenario) -> StorageDeployment:
    """Instantiate the scenario's strategy on a fresh network."""
    network, coordinates = build_network(scenario)
    if scenario.strategy == "full":
        return FullReplicationDeployment(
            scenario.n_nodes,
            network=network,
            limits=scenario.limits,
            seed=scenario.seed,
        )
    if scenario.strategy == "rapidchain":
        return RapidChainDeployment(
            scenario.n_nodes,
            n_committees=scenario.n_groups,
            network=network,
            limits=scenario.limits,
            seed=scenario.seed,
        )
    config = ICIConfig(
        n_clusters=scenario.n_groups,
        replication=scenario.replication,
        placement=scenario.placement,
        clustering=(
            scenario.clustering
            if coordinates is not None or scenario.clustering == "random"
            else "random"
        ),
        aggregate_votes=scenario.aggregate_votes,
        verify_collaboratively=scenario.verify_collaboratively,
        limits=scenario.limits,
        seed=scenario.seed,
    )
    return ICIDeployment(
        scenario.n_nodes,
        config=config,
        network=network,
        coordinates=coordinates,
    )


def uniform_coordinates(scenario: Scenario) -> list:
    """Convenience: uniform node placement matching a scenario's size."""
    return place_uniform(scenario.n_nodes, seed=scenario.seed)
