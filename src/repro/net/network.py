"""The simulated network: node registry, delivery, failures.

:class:`Network` binds the virtual clock, a latency model, a topology, and a
traffic ledger.  Endpoints (anything implementing :class:`Endpoint`)
register under integer node ids; ``send`` schedules delivery after
propagation + transmission delay.  Nodes can be taken offline (crash) and
brought back, which the availability experiments (E7) and churn workloads
drive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol

from repro.errors import UnknownNodeError
from repro.net.latency import DEFAULT_BANDWIDTH_BPS, ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.net.shard import ShardedClock
from repro.net.simclock import SimClock
from repro.net.topology import Topology
from repro.net.traffic import TrafficLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultInjector


class Endpoint(Protocol):
    """Anything that can receive simulated messages."""

    def handle_message(self, message: Message) -> None:
        """Process a delivered message (called at delivery time)."""


class Network:
    """The message fabric every node in a scenario is attached to.

    Delivery semantics:
      * messages to offline recipients are silently dropped (crash model);
      * messages *from* offline senders are also dropped — a crashed node's
        already-scheduled sends do not happen;
      * self-sends are delivered with zero delay (still via the scheduler so
        handler re-entrancy is avoided).
    """

    def __init__(
        self,
        clock: SimClock | None = None,
        latency: LatencyModel | None = None,
        topology: Topology | None = None,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ) -> None:
        if clock is None:
            # The active backend (if any) decides the clock flavour —
            # that is how `--backend parallel` reaches workloads that
            # construct their own deployments.
            from repro.sim.backend import active_backend

            backend = active_backend()
            clock = backend.make_clock() if backend is not None else SimClock()
        self.clock = clock
        self.latency = latency or ConstantLatency()
        self.bandwidth_bps = bandwidth_bps
        self.traffic = TrafficLedger()
        self._endpoints: dict[int, Endpoint] = {}
        self._online: dict[int, bool] = {}
        self._topology: dict[int, tuple[int, ...]] = (
            dict(topology) if topology else {}
        )
        self._dropped_messages = 0
        self._faults: "FaultInjector" | None = None
        self._shard_router: "ShardedClock" | None = (
            clock if isinstance(clock, ShardedClock) else None
        )
        if self._shard_router is not None:
            self._shard_router.bind_network(self)

    # ------------------------------------------------------------- registry
    def register(self, node_id: int, endpoint: Endpoint) -> None:
        """Attach an endpoint under ``node_id`` (initially online)."""
        self._endpoints[node_id] = endpoint
        self._online[node_id] = True
        self._topology.setdefault(node_id, ())
        if self._shard_router is not None:
            self._shard_router.note_membership_change()

    def unregister(self, node_id: int) -> None:
        """Detach a node entirely (permanent departure)."""
        self._endpoints.pop(node_id, None)
        self._online.pop(node_id, None)
        # Stale peer entries must not survive churn/departure cycles.
        self._topology.pop(node_id, None)
        if self._shard_router is not None:
            self._shard_router.note_membership_change()
            self._shard_router.shard_map.remove(node_id)

    def set_topology(self, topology: Topology) -> None:
        """Replace the peer graph (e.g., after re-clustering)."""
        self._topology = dict(topology)

    def peers_of(self, node_id: int) -> tuple[int, ...]:
        """The node's peer list in the current topology."""
        try:
            return self._topology[node_id]
        except KeyError:
            raise UnknownNodeError(f"node {node_id} not in topology") from None

    @property
    def node_ids(self) -> list[int]:
        """All registered node ids, sorted."""
        return sorted(self._endpoints)

    @property
    def dropped_messages(self) -> int:
        """Messages lost to offline senders/recipients."""
        return self._dropped_messages

    # -------------------------------------------------------------- faults
    @property
    def faults(self) -> "FaultInjector" | None:
        """The attached fault injector, or ``None`` for a clean network."""
        return self._faults

    def attach_faults(self, injector: "FaultInjector" | None) -> None:
        """Install (or, with ``None``, remove) a fault injector.

        With no injector attached the delivery path is exactly the
        original code — the fault branch in :meth:`send` never runs, so
        fault-free simulated metrics stay byte-identical.

        On a sharded clock, attaching an injector collapses the lanes
        into the serial-exact coupled schedule: fault decisions come
        from one seeded RNG stream consumed in send order, which lane
        reordering would change.
        """
        self._faults = injector
        if injector is not None and self._shard_router is not None:
            self._shard_router.set_coupled()

    # ------------------------------------------------------------- liveness
    def is_online(self, node_id: int) -> bool:
        """Is the node currently reachable?"""
        return self._online.get(node_id, False)

    def set_online(self, node_id: int, online: bool) -> None:
        """Crash (``False``) or recover (``True``) a node.

        Raises:
            UnknownNodeError: for unregistered ids.
        """
        if node_id not in self._endpoints:
            raise UnknownNodeError(f"node {node_id} is not registered")
        self._online[node_id] = online

    def online_count(self) -> int:
        """How many registered nodes are online."""
        return sum(1 for online in self._online.values() if online)

    # ------------------------------------------------------------- delivery
    def send(self, message: Message) -> None:
        """Schedule delivery of ``message`` (drops if sender is offline now)."""
        if not self._online.get(message.sender, False):
            self._dropped_messages += 1
            return
        delay = self.latency.total_delay(
            message.sender,
            message.recipient,
            message.size_bytes,
            self.bandwidth_bps,
        )
        if self._faults is not None:
            copies, extra_delay = self._faults.intercept(message, self.clock.now)
            if copies == 0:
                self._dropped_messages += 1
                return
            for _ in range(copies):
                self.clock.schedule(delay + extra_delay, self._deliver, message)
            return
        if self._shard_router is not None:
            self._shard_router.schedule_message(delay, self._deliver, message)
            return
        self.clock.schedule(delay, self._deliver, message)

    def send_many(self, messages: Iterable[Message]) -> None:
        """Schedule a batch of messages in order.

        Semantically identical to calling :meth:`send` per message (same
        scheduling order, hence identical event sequence numbers), but the
        per-message lookups are hoisted out of the loop — the fan-out paths
        (gossip announce, cluster broadcast) are the simulator's hottest
        send sites.

        With a fault injector attached the batch falls back to per-message
        :meth:`send` so every message gets its own fault decision.
        """
        if self._faults is not None:
            for message in messages:
                self.send(message)
            return
        online = self._online
        total_delay = self.latency.total_delay
        deliver = self._deliver
        bandwidth = self.bandwidth_bps
        router = self._shard_router
        if router is not None:
            schedule_message = router.schedule_message
            for message in messages:
                if not online.get(message.sender, False):
                    self._dropped_messages += 1
                    continue
                schedule_message(
                    total_delay(
                        message.sender,
                        message.recipient,
                        message.size_bytes,
                        bandwidth,
                    ),
                    deliver,
                    message,
                )
            return
        schedule = self.clock.schedule
        for message in messages:
            if not online.get(message.sender, False):
                self._dropped_messages += 1
                continue
            schedule(
                total_delay(
                    message.sender,
                    message.recipient,
                    message.size_bytes,
                    bandwidth,
                ),
                deliver,
                message,
            )

    def _deliver(self, message: Message) -> None:
        endpoint = self._endpoints.get(message.recipient)
        if endpoint is None or not self._online.get(message.recipient, False):
            self._dropped_messages += 1
            return
        self.traffic.record(message)
        endpoint.handle_message(message)

    # ------------------------------------------------------------ execution
    def run(self) -> None:
        """Drain every pending event (delegates to the clock)."""
        self.clock.run()

    def run_for(self, seconds: float) -> None:
        """Advance virtual time by ``seconds``."""
        self.clock.run_for(seconds)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now
