"""Latency and bandwidth models for simulated links.

A :class:`LatencyModel` answers "how long does the first byte take from A to
B"; bandwidth (bytes/second) then stretches large payloads.  Models are
deterministic functions of the node pair (plus a seeded RNG where jitter is
wanted), so simulations replay identically.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

#: Default link bandwidth: 20 Mbit/s ≈ 2.5 MB/s (consumer-grade peer).
DEFAULT_BANDWIDTH_BPS = 2_500_000.0


class LatencyModel(ABC):
    """Base class: one-way propagation delay between two node ids."""

    @abstractmethod
    def delay(self, sender: int, recipient: int) -> float:
        """One-way propagation delay in seconds (excludes transmission)."""

    def transmission_time(self, size_bytes: int, bandwidth_bps: float) -> float:
        """Seconds to push ``size_bytes`` through a ``bandwidth_bps`` link."""
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        return size_bytes / bandwidth_bps

    def total_delay(
        self,
        sender: int,
        recipient: int,
        size_bytes: int,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ) -> float:
        """Propagation + transmission delay for a message."""
        return self.delay(sender, recipient) + self.transmission_time(
            size_bytes, bandwidth_bps
        )


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every pair sees the same fixed delay (unit-test friendly)."""

    seconds: float = 0.05

    def delay(self, sender: int, recipient: int) -> float:
        """See :meth:`LatencyModel.delay`."""
        if sender == recipient:
            return 0.0
        return self.seconds


class UniformLatency(LatencyModel):
    """Per-pair delay drawn once from ``[low, high)``, then frozen.

    The draw is seeded from the (unordered) pair, so A→B and B→A see the
    same delay and replays are identical without storing a matrix.
    """

    def __init__(self, low: float = 0.02, high: float = 0.2, seed: int = 0) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError("need 0 <= low <= high")
        self._low = low
        self._high = high
        self._seed = seed

    def delay(self, sender: int, recipient: int) -> float:
        """See :meth:`LatencyModel.delay`."""
        if sender == recipient:
            return 0.0
        a, b = min(sender, recipient), max(sender, recipient)
        rng = random.Random((self._seed << 40) ^ (a << 20) ^ b)
        return rng.uniform(self._low, self._high)


class CoordinateLatency(LatencyModel):
    """Delay proportional to Euclidean distance in a 2-D coordinate space.

    Nodes are placed on a plane (e.g., by
    :func:`repro.clustering.coordinates.place_nodes`); delay is
    ``base + distance * seconds_per_unit``.  This is the model under which
    latency-aware clustering actually helps, so the E10 ablation uses it.
    """

    def __init__(
        self,
        coordinates: Sequence[tuple[float, float]],
        seconds_per_unit: float = 0.001,
        base_seconds: float = 0.005,
    ) -> None:
        if seconds_per_unit < 0 or base_seconds < 0:
            raise ConfigurationError("latency factors must be non-negative")
        self._coordinates = list(coordinates)
        self._seconds_per_unit = seconds_per_unit
        self._base_seconds = base_seconds

    def coordinate_of(self, node_id: int) -> tuple[float, float]:
        """The plane position of ``node_id``."""
        try:
            return self._coordinates[node_id]
        except IndexError:
            raise ConfigurationError(
                f"no coordinate for node {node_id}"
            ) from None

    def delay(self, sender: int, recipient: int) -> float:
        """See :meth:`LatencyModel.delay`."""
        if sender == recipient:
            return 0.0
        sx, sy = self.coordinate_of(sender)
        rx, ry = self.coordinate_of(recipient)
        distance = math.hypot(sx - rx, sy - ry)
        return self._base_seconds + distance * self._seconds_per_unit
