"""Traffic accounting: who sent how many bytes of what.

The network calls into a :class:`TrafficLedger` on every delivery; metrics
and the communication-overhead experiments (E4) read aggregate views back
out.  Counters can be snapshotted and diffed so a single simulation can
measure several phases independently.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.net.message import Message, MessageKind


@dataclass
class TrafficSnapshot:
    """An immutable copy of the counters at a point in time."""

    total_messages: int
    total_bytes: int
    bytes_by_kind: dict[MessageKind, int]
    bytes_sent_by_node: dict[int, int]
    bytes_received_by_node: dict[int, int]

    def delta(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        """Counters accumulated since ``earlier``."""
        return TrafficSnapshot(
            total_messages=self.total_messages - earlier.total_messages,
            total_bytes=self.total_bytes - earlier.total_bytes,
            bytes_by_kind={
                kind: count - earlier.bytes_by_kind.get(kind, 0)
                for kind, count in self.bytes_by_kind.items()
                if count - earlier.bytes_by_kind.get(kind, 0)
            },
            bytes_sent_by_node={
                node: count - earlier.bytes_sent_by_node.get(node, 0)
                for node, count in self.bytes_sent_by_node.items()
                if count - earlier.bytes_sent_by_node.get(node, 0)
            },
            bytes_received_by_node={
                node: count - earlier.bytes_received_by_node.get(node, 0)
                for node, count in self.bytes_received_by_node.items()
                if count - earlier.bytes_received_by_node.get(node, 0)
            },
        )


@dataclass
class TrafficLedger:
    """Mutable traffic counters updated on every message delivery."""

    total_messages: int = 0
    total_bytes: int = 0
    bytes_by_kind: defaultdict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_kind: defaultdict[MessageKind, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_sent_by_node: defaultdict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_received_by_node: defaultdict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, message: Message) -> None:
        """Account one delivered message."""
        self.total_messages += 1
        self.total_bytes += message.size_bytes
        self.bytes_by_kind[message.kind] += message.size_bytes
        self.messages_by_kind[message.kind] += 1
        self.bytes_sent_by_node[message.sender] += message.size_bytes
        self.bytes_received_by_node[message.recipient] += message.size_bytes

    def snapshot(self) -> TrafficSnapshot:
        """Freeze the current counters."""
        return TrafficSnapshot(
            total_messages=self.total_messages,
            total_bytes=self.total_bytes,
            bytes_by_kind=dict(self.bytes_by_kind),
            bytes_sent_by_node=dict(self.bytes_sent_by_node),
            bytes_received_by_node=dict(self.bytes_received_by_node),
        )

    def bytes_for_kinds(self, kinds: set[MessageKind]) -> int:
        """Total bytes across a subset of message kinds."""
        return sum(self.bytes_by_kind.get(kind, 0) for kind in kinds)
