"""Cluster-sharded event lanes: ``ShardMap``, mailboxes, ``ShardedClock``.

The single-heap :class:`~repro.net.simclock.SimClock` drains every event
for every node in one global order, which caps the simulator far below
the scale the paper's cluster structure allows.  This module shards the
event queue along the paper's own fault line: almost all ICIStrategy
traffic is intra-cluster, so each cluster gets its own event *lane* (a
private heap with a private ``now``), and the rare cross-cluster events
travel through explicit inter-shard mailboxes flushed at barrier epochs.

Lane model
----------
Shard 0 (:data:`GLOBAL_SHARD`) is the simulator lane: timers scheduled
outside event execution (repair sweeps, request deadlines, outage
flips), plus every endpoint the :class:`ShardMap` does not cover (light
clients, baseline deployments without clusters).  Global-lane events
execute as **barriers** — alone, with every node lane drained strictly
up to their timestamp — so deployment-level events that touch many
nodes' state are ordered exactly as a serial run orders them.

Node lanes advance together through *epoch windows* under conservative
lookahead synchronization.  The lookahead ``L`` is the minimum
cross-shard propagation delay in the latency model: an event executing
at time ``u >= tn`` (the earliest live lane head) can only produce a
cross-shard delivery at ``u + L >= tn + L``, so every event strictly
inside the window ``[tn, min(tn + L, t_global))`` is causally
independent across lanes and may run in any lane interleaving.
Cross-shard deliveries produced during a window land in per-destination
mailboxes and are flushed at the next barrier in deterministic
``(time, source shard, source sequence)`` order.

Determinism
-----------
Simulated metrics (virtual seconds, message/byte counts, events
processed) are order-independent aggregates of the executed event *set*,
and the lane/mailbox protocol preserves that set exactly, so same-seed
runs produce identical simulated metrics regardless of worker
scheduling.  Two situations force full serial coupling (one merged heap
drained in exact ``(time, key)`` order): an attached
:class:`~repro.sim.faults.FaultInjector` (fault decisions are drawn from
one seeded RNG stream in send order, which lane reordering would
change), and a non-positive lookahead.  Coupled mode *is* the serial
schedule — conservative parallel simulation legitimately reduces to
sequential execution under globally-coupled causality.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Any

import math
import threading

from repro.errors import SimulationError
from repro.net.simclock import (
    _ARGS,
    _CALLBACK,
    _TIME,
    EventCallback,
    EventHandle,
    SimClock,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.clustering.membership import ClusterTable
    from repro.net.network import Network

#: The simulator lane: events scheduled outside execution, and every
#: endpoint the shard map does not cover.
GLOBAL_SHARD = 0


class ShardMap:
    """Node-id → shard-id assignment, fed from cluster membership.

    Cluster ``c`` maps to shard ``c + 1`` (shard 0 is reserved for the
    global lane); unmapped ids resolve to :data:`GLOBAL_SHARD`.  The
    ``version`` counter ticks on every rebuild/assignment change so
    callers can cheaply detect re-clustering.
    """

    __slots__ = ("_shard_of", "version")

    def __init__(self) -> None:
        self._shard_of: dict[int, int] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._shard_of)

    def shard_of(self, node_id: int) -> int:
        """The shard owning ``node_id`` (:data:`GLOBAL_SHARD` if unmapped)."""
        return self._shard_of.get(node_id, GLOBAL_SHARD)

    def assign(self, node_id: int, shard: int) -> None:
        """Pin ``node_id`` to ``shard`` (churn-time single-node update)."""
        if shard < 0:
            raise SimulationError(f"shard ids are non-negative ({shard=})")
        self._shard_of[node_id] = shard
        self.version += 1

    def remove(self, node_id: int) -> None:
        """Drop a departed node's assignment (no-op when unmapped)."""
        if self._shard_of.pop(node_id, None) is not None:
            self.version += 1

    def rebuild(self, clusters: "ClusterTable") -> None:
        """Re-derive the full map from a cluster table.

        Cluster ids are dense, so shard ids are too (offset by one for
        the reserved global lane).
        """
        self._shard_of = {
            node_id: view.cluster_id + 1
            for view in clusters.views()
            for node_id in view.members
        }
        self.version += 1

    def shards(self) -> list[int]:
        """Sorted distinct shard ids currently assigned (without 0)."""
        return sorted(set(self._shard_of.values()))


class _Lane:
    """One shard's private event heap and clock state."""

    __slots__ = ("shard", "heap", "now", "processed", "mail_seq")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.heap: list[list] = []
        self.now = 0.0
        self.processed = 0
        self.mail_seq = 0


# One process-wide thread pool shared by every ShardedClock: the
# simulator is single-threaded at the top level, so clocks never drain
# concurrently, and sharing avoids leaking worker threads across the
# many deployments a bench run constructs.  The atexit hook tears the
# pool down before interpreter finalization — a live pool at shutdown
# raises spurious errors from its own management threads.
_POOL = None
_POOL_SIZE = 0
_POOL_GUARD = threading.Lock()


def _shutdown_pool() -> None:
    global _POOL, _POOL_SIZE
    with _POOL_GUARD:
        if _POOL is not None:
            _POOL.terminate()
            _POOL.join()
            _POOL = None
            _POOL_SIZE = 0


def _shared_pool(workers: int):
    global _POOL, _POOL_SIZE
    with _POOL_GUARD:
        if _POOL is None or _POOL_SIZE < workers:
            from multiprocessing.pool import ThreadPool

            if _POOL is not None:
                _POOL.terminate()
            elif _POOL_SIZE == 0:
                import atexit

                atexit.register(_shutdown_pool)
            _POOL = ThreadPool(workers)
            _POOL_SIZE = workers
        return _POOL


class ShardedClock(SimClock):
    """Per-shard event lanes behind the :class:`SimClock` API.

    Drop-in for :class:`SimClock`: ``now``/``pending``/``processed``/
    ``schedule``/``schedule_at``/``run``/``run_until``/``run_for``/
    ``attach_tracer`` all behave identically from the caller's side.
    Internally events route to per-shard lanes and drain in epoch
    windows (see module docstring); with ``workers > 1`` the eligible
    lanes of one window drain on a thread pool, with a shared execution
    lock serializing callbacks so shared aggregates (traffic ledger,
    metrics counters) update exactly.

    Process-based workers are deliberately out of scope here: the
    deployment object graph (nodes, ledger, bound-method callbacks) is
    not picklable, so lanes share the interpreter and the mailbox flush
    is the serialization boundary a future process backend would ship
    batches across.  Under the GIL the thread pool validates the
    lane/mailbox protocol and its determinism rather than buying
    wall-clock speedup for pure-Python callbacks.
    """

    def __init__(self, max_events: int = 50_000_000, workers: int = 1) -> None:
        super().__init__(max_events)
        if workers < 1:
            raise SimulationError(f"need at least one worker ({workers=})")
        self.shard_map = ShardMap()
        self.workers = workers
        self._lanes: dict[int, _Lane] = {GLOBAL_SHARD: _Lane(GLOBAL_SHARD)}
        self._mailboxes: dict[int, list] = {}
        self._coupled = False
        self._couple_pending = False
        self._draining = False
        self._lookahead = math.inf
        self._lookahead_dirty = True
        self._network: "Network | None" = None
        self._exec_lock = threading.Lock()
        self._tls = threading.local()
        self._epoch = 0

    # ------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current virtual time: the executing lane's, else the outer clock."""
        lane = getattr(self._tls, "lane", None)
        if lane is not None:
            return lane.now
        return self._now

    @property
    def processed(self) -> int:
        """Total events executed across the coupled heap and every lane."""
        return self._processed + sum(
            lane.processed for lane in self._lanes.values()
        )

    @property
    def coupled(self) -> bool:
        """Is the clock running one merged heap in exact serial order?"""
        return self._coupled

    @property
    def lookahead(self) -> float:
        """The current conservative window width (cross-shard min delay)."""
        self._ensure_lookahead()
        return self._lookahead

    def lane_times(self) -> dict[int, float]:
        """Each lane's local ``now`` (diagnostics/tests)."""
        return {lane.shard: lane.now for lane in self._lanes.values()}

    # ------------------------------------------------------------- binding
    def bind_network(self, network: "Network") -> None:
        """Attach the network whose latency model bounds the lookahead."""
        self._network = network
        self._lookahead_dirty = True

    def note_membership_change(self) -> None:
        """An endpoint registered/unregistered: lookahead must rescan."""
        self._lookahead_dirty = True

    def remap_shards(self, clusters: "ClusterTable") -> None:
        """Re-derive the shard map from cluster membership.

        Called by deployments on (re-)clustering and churn.  A remap
        while node lanes still hold in-flight events would leave those
        events homed by the *old* map, and migrating them cannot
        reproduce the serial tie order deterministically — so that case
        conservatively collapses the clock into the serial-exact coupled
        schedule.  The common cases (initial clustering, churn applied
        at quiescence) keep their heaps empty and stay sharded.

        A remap *during* a drain (a departure finalizing inside an
        executing callback) rebuilds the map immediately — callbacks
        are serialized by the execution lock, so routing stays
        race-free — and defers the coupling to the next barrier, where
        the epoch loop is single-threaded and lane heaps are quiescent.
        """
        self.shard_map.rebuild(clusters)
        self._lookahead_dirty = True
        if self._coupled:
            return
        if self._draining:
            self._couple_pending = True
            return
        if any(
            lane.shard != GLOBAL_SHARD and self._live_head(lane) is not None
            for lane in self._lanes.values()
        ):
            self.set_coupled()

    def set_coupled(self) -> None:
        """Collapse every lane into one heap drained in exact serial order.

        Engaged automatically when a fault injector attaches (its RNG
        stream is consumed in send order) or the lookahead is
        non-positive.  Keys are globally monotone across lanes, so the
        merged heap replays the exact serial ``(time, key)`` schedule.
        """
        if self._coupled:
            return
        if self._draining:
            raise SimulationError("cannot couple the clock during a drain")
        self._flush_mail()
        merged = self._heap
        for shard in sorted(self._lanes):
            lane = self._lanes[shard]
            merged.extend(lane.heap)
            lane.heap.clear()
            self._now = max(self._now, lane.now)
        heapify(merged)
        self._coupled = True

    # ----------------------------------------------------------- scheduling
    def schedule(
        self, delay: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """See :meth:`SimClock.schedule`; ``now`` is lane-local."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay=})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """Schedule into the executing lane, or the global lane outside
        event execution (coupled mode uses the single serial heap)."""
        if self._coupled:
            return super().schedule_at(time, callback, *args)
        lane = getattr(self._tls, "lane", None)
        if lane is None:
            lane = self._lanes[GLOBAL_SHARD]
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule at {time} before now={self._now}"
                )
        elif time < lane.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={lane.now}"
            )
        return self._push(lane, time, callback, args)

    def schedule_message(
        self, delay: float, callback: EventCallback, message: Any
    ) -> None:
        """Schedule a delivery into the recipient's lane.

        The :class:`~repro.net.network.Network` send path lands here:
        same-lane and outside-drain deliveries push straight into the
        destination heap; cross-lane deliveries produced during a window
        go through the destination mailbox and join the heap at the next
        barrier in deterministic order.
        """
        if self._coupled:
            super().schedule_at(self._now + delay, callback, message)
            return
        dst = self.shard_map.shard_of(message.recipient)
        source = getattr(self._tls, "lane", None)
        if source is None:
            self._push(
                self._lanes[GLOBAL_SHARD] if dst == GLOBAL_SHARD
                else self._lane(dst),
                self._now + delay,
                callback,
                (message,),
            )
        elif source.shard == dst:
            self._push(source, source.now + delay, callback, (message,))
        else:
            # Executing lane -> foreign lane: mailbox (flushed at the
            # next barrier; lookahead guarantees time >= window end).
            source.mail_seq += 1
            self._mailboxes.setdefault(dst, []).append(
                (
                    source.now + delay,
                    source.shard,
                    source.mail_seq,
                    callback,
                    (message,),
                )
            )
            self._live += 1

    def _push(
        self, lane: _Lane, time: float, callback: EventCallback, args: tuple
    ) -> EventHandle:
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [time, seq, callback, args]
        heappush(lane.heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def _lane(self, shard: int) -> _Lane:
        lane = self._lanes.get(shard)
        if lane is None:
            lane = _Lane(shard)
            # New lanes start at the outer clock so they can never be
            # scheduled into the past.
            lane.now = self._now
            self._lanes[shard] = lane
        return lane

    # ------------------------------------------------------------ execution
    def step(self) -> bool:
        """Single-step is inherently serial: couple first, then step."""
        if not self._coupled:
            self.set_coupled()
        return super().step()

    def run(self) -> None:
        """Drain every lane and mailbox completely."""
        if self._coupled:
            super().run()
            return
        self._run_epochs(None)

    def run_until(self, time: float) -> None:
        """Run every event with timestamp ``<= time``; land exactly there."""
        if self._coupled:
            super().run_until(time)
            return
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to {time} from {self._now}"
            )
        self._run_epochs(time)

    # ---------------------------------------------------------- epoch drive
    def _run_epochs(self, until: float | None) -> None:
        if self._draining:
            raise SimulationError("re-entrant run on a sharded clock")
        self._ensure_lookahead()
        if self._coupled:  # non-positive lookahead collapsed us
            if until is None:
                super().run()
            else:
                super().run_until(until)
            return
        self._draining = True
        try:
            while True:
                if self._couple_pending:
                    break
                self._flush_mail()
                glane = self._lanes[GLOBAL_SHARD]
                tg = self._live_head(glane)
                node_lanes = [
                    lane
                    for lane in self._lanes.values()
                    if lane.shard != GLOBAL_SHARD
                ]
                heads = [
                    (head, lane)
                    for lane in node_lanes
                    if (head := self._live_head(lane)) is not None
                ]
                tn = min((head for head, _ in heads), default=None)
                if tg is None and tn is None:
                    break
                tmin = min(t for t in (tg, tn) if t is not None)
                if until is not None and tmin > until:
                    break
                if tg is not None and (tn is None or tg <= tn):
                    # Barrier: every node lane has drained strictly past
                    # tg already (tg <= tn), so the global event runs
                    # alone, exactly where a serial schedule puts it.
                    self._run_one_global(glane)
                    continue
                window_start = tn
                window = tn + self._lookahead
                if tg is not None:
                    window = min(window, tg)
                inclusive = False
                if until is not None and window > until:
                    window = until
                    inclusive = True
                eligible = sorted(
                    (
                        lane
                        for head, lane in heads
                        if head < window or (inclusive and head == window)
                    ),
                    key=lambda lane: lane.shard,
                )
                self._drain_window(eligible, window_start, window, inclusive)
                self._epoch += 1
        finally:
            self._draining = False
        if self._couple_pending:
            # A mid-drain remap requested serial coupling; finish the
            # run on the merged heap (the exact serial schedule).
            self._couple_pending = False
            self.set_coupled()
            if until is None:
                super().run()
            else:
                super().run_until(until)
            return
        if until is not None:
            for lane in self._lanes.values():
                lane.now = max(lane.now, until)
            self._now = max(self._now, until)
        else:
            self._now = max(
                self._now,
                max(lane.now for lane in self._lanes.values()),
            )

    def _drain_window(
        self,
        lanes: list[_Lane],
        window_start: float,
        window: float,
        inclusive: bool,
    ) -> None:
        tracer = self._tracer
        if self.workers > 1 and len(lanes) > 1:
            pool = _shared_pool(self.workers)
            wall_start = perf_counter()
            walls = pool.map(
                lambda lane: self._drain_lane(lane, window, inclusive),
                lanes,
            )
            wall_total = perf_counter() - wall_start
        else:
            walls = []
            wall_start = perf_counter()
            for lane in lanes:
                t0 = perf_counter()
                self._drain_lane(lane, window, inclusive)
                walls.append(perf_counter() - t0)
            wall_total = perf_counter() - wall_start
        if tracer is not None:
            self._record_window(
                tracer, lanes, walls, window_start, window, wall_total
            )

    def _drain_lane(
        self, lane: _Lane, window: float, inclusive: bool
    ) -> float:
        """Drain one lane up to ``window``; returns the wall time spent."""
        wall_start = perf_counter()
        self._tls.lane = lane
        heap = lane.heap
        lock = self._exec_lock
        max_events = self._max_events
        try:
            while heap:
                head = heap[0]
                if head[_CALLBACK] is None:
                    heappop(heap)
                    continue
                time = head[_TIME]
                if time > window or (time == window and not inclusive):
                    break
                entry = heappop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    continue
                entry[_CALLBACK] = None  # late cancel() must see "ran"
                lane.now = time
                lane.processed += 1
                if lane.processed > max_events:
                    raise SimulationError(
                        f"event budget exceeded ({max_events}); "
                        "likely a protocol feedback loop"
                    )
                # One lock around each callback: lanes' heaps are
                # thread-private during a window, but callbacks mutate
                # shared aggregates (traffic ledger, metrics, tracer).
                with lock:
                    self._live -= 1
                    tracer = self._tracer
                    if tracer is None:
                        callback(*entry[_ARGS])
                    else:
                        t0 = perf_counter()
                        callback(*entry[_ARGS])
                        tracer.callback_event(
                            callback, time, perf_counter() - t0
                        )
        finally:
            self._tls.lane = None
        return perf_counter() - wall_start

    def _run_one_global(self, glane: _Lane) -> None:
        self._tls.lane = glane
        heap = glane.heap
        try:
            while heap:
                entry = heappop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    continue
                entry[_CALLBACK] = None  # late cancel() must see "ran"
                self._live -= 1
                glane.now = entry[_TIME]
                glane.processed += 1
                if glane.processed > self._max_events:
                    raise SimulationError(
                        f"event budget exceeded ({self._max_events}); "
                        "likely a protocol feedback loop"
                    )
                tracer = self._tracer
                if tracer is None:
                    callback(*entry[_ARGS])
                else:
                    t0 = perf_counter()
                    callback(*entry[_ARGS])
                    tracer.callback_event(
                        callback, glane.now, perf_counter() - t0
                    )
                return
        finally:
            self._tls.lane = None

    # ------------------------------------------------------------ mailboxes
    def _flush_mail(self) -> None:
        """Deterministically merge mailbox batches into their lanes.

        Runs single-threaded at barriers.  Batches sort by ``(time,
        source shard, source sequence)``; heap keys are assigned in that
        flush order, so same-time ties replay identically regardless of
        how worker threads interleaved during the window.
        """
        if not self._mailboxes:
            return
        for dst in sorted(self._mailboxes):
            batch = self._mailboxes[dst]
            if not batch:
                continue
            batch.sort(key=lambda item: item[:3])
            lane = self._lane(dst)
            for time, _src_shard, _src_seq, callback, args in batch:
                if time < lane.now:
                    raise SimulationError(
                        f"lookahead violation: mail for shard {dst} at "
                        f"{time} behind lane time {lane.now}"
                    )
                seq = self._next_seq
                self._next_seq = seq + 1
                heappush(lane.heap, [time, seq, callback, args])
            batch.clear()

    # ------------------------------------------------------------ lookahead
    def _ensure_lookahead(self) -> None:
        if not self._lookahead_dirty or self._coupled:
            return
        self._lookahead_dirty = False
        network = self._network
        if network is None:
            self._lookahead = math.inf
            return
        shard_of = self.shard_map.shard_of
        ids = network.node_ids
        delay = network.latency.delay
        best = math.inf
        for i, a in enumerate(ids):
            shard_a = shard_of(a)
            for b in ids[i + 1:]:
                if shard_of(b) == shard_a:
                    continue
                d = delay(a, b)
                if d < best:
                    best = d
        self._lookahead = best
        if best <= 0:
            # Zero-lookahead cross-shard links make every window empty;
            # collapse to the serial schedule instead of spinning.
            self.set_coupled()

    # --------------------------------------------------------------- tracing
    def _record_window(
        self,
        tracer,
        lanes: list[_Lane],
        walls: list[float],
        window_start: float,
        window: float,
        wall_total: float,
    ) -> None:
        dur = max(window - window_start, 0.0)
        for lane, wall in zip(lanes, walls):
            tracer.complete(
                f"epoch {self._epoch}",
                shard_track(lane.shard),
                window_start,
                dur,
                category="shard",
                args={"wall_us": round(wall * 1e6, 1)},
            )
            barrier_wait = wall_total - wall
            if barrier_wait > 0:
                tracer.complete(
                    "barrier-wait",
                    shard_track(lane.shard),
                    window,
                    0.0,
                    category="barrier",
                    args={"wall_us": round(barrier_wait * 1e6, 1)},
                )

    @staticmethod
    def _live_head(lane: _Lane) -> float | None:
        heap = lane.heap
        while heap:
            head = heap[0]
            if head[_CALLBACK] is None:
                heappop(heap)
                continue
            return head[_TIME]
        return None


def shard_track(shard: int) -> tuple:
    """The per-shard simulator timeline track for the tracer."""
    from repro.obs.tracer import SIM_GROUP

    return (SIM_GROUP, ("shard", shard))
