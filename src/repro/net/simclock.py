"""Discrete-event simulation core: virtual clock and event queue.

Everything time-dependent in the library runs on this scheduler.  Events are
``[time, sequence, callback, args]`` entries in a binary heap; the sequence
number makes ordering deterministic when times tie, which keeps every
experiment bit-reproducible under a fixed seed.

Entries are plain lists rather than objects so ``heapq`` compares them
entirely in C (``(time, sequence)`` decides before the callback slot is ever
reached).  Cancellation nulls the callback slot in place, which is why the
entry must stay mutable.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable

from repro.errors import SimulationError

EventCallback = Callable[..., None]

# Heap-entry slots: [time, sequence, callback-or-None, args].
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3


class EventHandle:
    """A cancellation handle for a scheduled event."""

    __slots__ = ("_entry", "_clock")

    def __init__(self, entry: list, clock: "SimClock | None" = None) -> None:
        self._entry = entry
        self._clock = clock

    def cancel(self) -> bool:
        """Cancel the event; returns ``False`` when already run/cancelled."""
        if self._entry[_CALLBACK] is None:
            return False
        self._entry[_CALLBACK] = None
        if self._clock is not None:
            self._clock._note_cancel()
        return True

    @property
    def time(self) -> float:
        """The virtual time the event is (was) scheduled for."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        """Was this event cancelled?"""
        return self._entry[_CALLBACK] is None


class SimClock:
    """The virtual clock plus its pending-event heap.

    The clock only moves when :meth:`run` (or :meth:`run_until`) pops
    events; callbacks scheduled *at the current time* run in scheduling
    order.  A hard event-count limit guards against runaway feedback loops
    in buggy protocols.
    """

    def __init__(self, max_events: int = 50_000_000) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._next_seq = 0
        self._max_events = max_events
        self._processed = 0
        self._live = 0
        self._tracer = None

    # -------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        Maintained as a live counter (incremented on push, decremented on
        cancel/pop) so runner drain checks are O(1) instead of an O(heap)
        scan per call.
        """
        return self._live

    def _note_cancel(self) -> None:
        """An :class:`EventHandle` cancelled one of our live entries."""
        self._live -= 1

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    # ----------------------------------------------------------- scheduling
    def schedule(
        self, delay: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at ``now + delay`` virtual seconds.

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay=})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: EventCallback, *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [time, seq, callback, args]
        heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    # ------------------------------------------------------- instrumentation
    def attach_tracer(self, tracer) -> None:
        """Hook callback execution into a :class:`repro.obs.tracer.Tracer`.

        Pass ``None`` to detach.  With no tracer attached the dispatch
        path is the original code behind one ``is None`` check — the
        bench regression gate holds with tracing off.
        """
        self._tracer = tracer

    # ------------------------------------------------------------ execution
    def step(self) -> bool:
        """Pop and run the next event; ``False`` when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            # Null the slot so a late cancel() on the handle reports
            # "already run" instead of decrementing the live counter.
            entry[_CALLBACK] = None
            self._live -= 1
            self._now = entry[_TIME]
            self._processed += 1
            if self._processed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events}); "
                    "likely a protocol feedback loop"
                )
            tracer = self._tracer
            if tracer is None:
                callback(*entry[_ARGS])
            else:
                wall_start = perf_counter()
                callback(*entry[_ARGS])
                tracer.callback_event(
                    callback, self._now, perf_counter() - wall_start
                )
            return True
        return False

    def run(self) -> None:
        """Drain the queue completely."""
        while self.step():
            pass

    def run_until(self, time: float) -> None:
        """Run every event scheduled strictly before or at ``time``.

        The clock is advanced to exactly ``time`` afterwards, even when no
        event lands on it.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to {time} from {self._now}"
            )
        heap = self._heap
        while heap:
            head = heap[0]
            if head[_CALLBACK] is None:
                heappop(heap)
                continue
            if head[_TIME] > time:
                break
            self.step()
        self._now = time

    def run_for(self, duration: float) -> None:
        """Run events for ``duration`` more virtual seconds."""
        self.run_until(self._now + duration)
