"""Discrete-event simulation core: virtual clock and event queue.

Everything time-dependent in the library runs on this scheduler.  Events are
``(time, sequence, callback)`` triples in a binary heap; the sequence number
makes ordering deterministic when times tie, which keeps every experiment
bit-reproducible under a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A cancellation handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> bool:
        """Cancel the event; returns ``False`` when already run/cancelled."""
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    @property
    def time(self) -> float:
        """The virtual time the event is (was) scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Was this event cancelled?"""
        return self._event.cancelled


class SimClock:
    """The virtual clock plus its pending-event heap.

    The clock only moves when :meth:`run` (or :meth:`run_until`) pops
    events; callbacks scheduled *at the current time* run in scheduling
    order.  A hard event-count limit guards against runaway feedback loops
    in buggy protocols.
    """

    def __init__(self, max_events: int = 50_000_000) -> None:
        self._now = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._max_events = max_events
        self._processed = 0

    # -------------------------------------------------------------- queries
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    # ----------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at ``now + delay`` virtual seconds.

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay=})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._sequence), callback=callback
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------ execution
    def step(self) -> bool:
        """Pop and run the next event; ``False`` when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._processed > self._max_events:
                raise SimulationError(
                    f"event budget exceeded ({self._max_events}); "
                    "likely a protocol feedback loop"
                )
            event.callback()
            return True
        return False

    def run(self) -> None:
        """Drain the queue completely."""
        while self.step():
            pass

    def run_until(self, time: float) -> None:
        """Run every event scheduled strictly before or at ``time``.

        The clock is advanced to exactly ``time`` afterwards, even when no
        event lands on it.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards to {time} from {self._now}"
            )
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > time:
                break
            self.step()
        self._now = time

    def run_for(self, duration: float) -> None:
        """Run events for ``duration`` more virtual seconds."""
        self.run_until(self._now + duration)
