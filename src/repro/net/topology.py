"""Peer-graph topologies.

A topology is just ``node_id -> tuple of peer ids``.  Gossip dissemination
walks these edges.  Generators below produce the shapes blockchain networks
are usually modelled with: random regular graphs (Bitcoin-like outbound
peering) and fully connected groups (intra-cluster meshes).
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

Topology = Mapping[int, tuple[int, ...]]


def full_mesh(node_ids: Sequence[int]) -> dict[int, tuple[int, ...]]:
    """Every node peers with every other node (small clusters)."""
    id_set = list(node_ids)
    return {
        node: tuple(peer for peer in id_set if peer != node)
        for node in id_set
    }


def ring(node_ids: Sequence[int]) -> dict[int, tuple[int, ...]]:
    """A bidirectional ring (worst-case diameter, used in tests)."""
    ids = list(node_ids)
    if len(ids) < 2:
        return {node: () for node in ids}
    topology: dict[int, tuple[int, ...]] = {}
    for index, node in enumerate(ids):
        left = ids[(index - 1) % len(ids)]
        right = ids[(index + 1) % len(ids)]
        topology[node] = (left, right) if left != right else (left,)
    return topology


def random_regular(
    node_ids: Sequence[int], degree: int = 8, seed: int = 0
) -> dict[int, tuple[int, ...]]:
    """Bitcoin-style peering: each node opens ``degree`` outbound links.

    Links are symmetrized, so realized degree is between ``degree`` and
    roughly ``2 * degree``.  The graph is then patched to be connected by
    chaining any disconnected components.
    """
    ids = list(node_ids)
    if degree < 1:
        raise ConfigurationError("degree must be >= 1")
    if len(ids) <= degree:
        return full_mesh(ids)
    rng = random.Random(seed)
    adjacency: dict[int, set[int]] = {node: set() for node in ids}
    for node in ids:
        candidates = [peer for peer in ids if peer != node]
        for peer in rng.sample(candidates, degree):
            adjacency[node].add(peer)
            adjacency[peer].add(node)
    _ensure_connected(adjacency, ids, rng)
    return {node: tuple(sorted(peers)) for node, peers in adjacency.items()}


def clustered_topology(
    clusters: Sequence[Sequence[int]],
    inter_cluster_links: int = 2,
    seed: int = 0,
) -> dict[int, tuple[int, ...]]:
    """Full mesh inside each cluster plus sparse inter-cluster bridges.

    This is the overlay ICIStrategy operates: cheap dense communication
    within a cluster, a few representative links between clusters.

    Args:
        clusters: disjoint groups of node ids.
        inter_cluster_links: bridges created between each cluster pair.
    """
    rng = random.Random(seed)
    adjacency: dict[int, set[int]] = {}
    for members in clusters:
        mesh = full_mesh(list(members))
        for node, peers in mesh.items():
            adjacency.setdefault(node, set()).update(peers)
    for i, cluster_a in enumerate(clusters):
        for cluster_b in clusters[i + 1 :]:
            if not cluster_a or not cluster_b:
                continue
            for _ in range(max(inter_cluster_links, 1)):
                a = rng.choice(list(cluster_a))
                b = rng.choice(list(cluster_b))
                adjacency.setdefault(a, set()).add(b)
                adjacency.setdefault(b, set()).add(a)
    return {node: tuple(sorted(peers)) for node, peers in adjacency.items()}


def _ensure_connected(
    adjacency: dict[int, set[int]], ids: list[int], rng: random.Random
) -> None:
    """Patch a graph in place so it has a single connected component."""
    if not ids:
        return
    components = _components(adjacency, ids)
    while len(components) > 1:
        a = rng.choice(sorted(components[0]))
        b = rng.choice(sorted(components[1]))
        adjacency[a].add(b)
        adjacency[b].add(a)
        components = _components(adjacency, ids)


def _components(
    adjacency: dict[int, set[int]], ids: list[int]
) -> list[set[int]]:
    seen: set[int] = set()
    components: list[set[int]] = []
    for start in ids:
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for peer in adjacency[node]:
                if peer not in component:
                    component.add(peer)
                    frontier.append(peer)
        seen.update(component)
        components.append(component)
    return components


def is_connected(topology: Topology) -> bool:
    """True when the peer graph has a single connected component."""
    ids = list(topology)
    if not ids:
        return True
    adjacency = {node: set(peers) for node, peers in topology.items()}
    return len(_components(adjacency, ids)) == 1
