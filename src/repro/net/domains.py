"""Failure domains: hierarchical blast-radius labels for every node.

Real deployments do not lose nodes independently — a switch failure
takes out a rack, a power event takes out a zone.  The paper's
cluster-integrity argument (and every placement policy in this repro)
silently assumed independence; this module supplies the missing
vocabulary so placement, repair, and fault injection can all reason
about **correlated** loss:

* :class:`DomainLabel` — one node's hierarchical ``(zone, rack)``
  position; the zone is the primary blast radius (what a
  :class:`~repro.sim.faults.DomainOutageEvent` kills at once), the rack
  a secondary tier inside it.
* :class:`FailureDomainMap` — the authoritative node → label mapping.
  Labels derive from a **pure function of the node id** (round-robin
  striping across zones, then racks), so a node that joins mid-run gets
  the same label on every machine and in every run regardless of call
  order — the same determinism contract the placement policies keep.
  Explicit :meth:`~FailureDomainMap.assign` overrides model operator
  topologies the striping cannot express.

The map carries a monotonically increasing :attr:`~FailureDomainMap.
version`; anything that memoizes on domain labels (the spread-aware
placement cache) keys on it, so re-assignments and membership syncs
invalidate stale placements without a cache flush protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import ConfigurationError

__all__ = ["DomainLabel", "FailureDomainMap"]


@dataclass(frozen=True, order=True)
class DomainLabel:
    """One node's hierarchical failure-domain position."""

    zone: int
    rack: int = 0

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"z{self.zone}/r{self.rack}"


class FailureDomainMap:
    """Deterministic node → :class:`DomainLabel` assignment.

    Args:
        zones: number of top-level failure domains (>= 1).
        racks_per_zone: racks striped inside each zone (>= 1).

    The default label of node ``i`` is
    ``DomainLabel(i % zones, (i // zones) % racks_per_zone)`` — a pure
    function, so lazily resolved joiners land identically everywhere.
    """

    def __init__(self, zones: int = 2, racks_per_zone: int = 1) -> None:
        if zones < 1:
            raise ConfigurationError("a domain map needs at least 1 zone")
        if racks_per_zone < 1:
            raise ConfigurationError("racks_per_zone must be >= 1")
        self.zones = zones
        self.racks_per_zone = racks_per_zone
        self._overrides: dict[int, DomainLabel] = {}
        self._members: set[int] = set()
        self._version = 0

    # ------------------------------------------------------------- identity
    @property
    def version(self) -> int:
        """Monotonic change counter (placement caches key on it)."""
        return self._version

    def domain_of(self, node_id: int) -> DomainLabel:
        """A node's label: the explicit override, else the derived stripe."""
        label = self._overrides.get(node_id)
        if label is not None:
            return label
        return DomainLabel(
            zone=node_id % self.zones,
            rack=(node_id // self.zones) % self.racks_per_zone,
        )

    def zone_of(self, node_id: int) -> int:
        """Shorthand for ``domain_of(node_id).zone``."""
        return self.domain_of(node_id).zone

    # ------------------------------------------------------------ mutation
    def assign(self, node_id: int, label: DomainLabel) -> None:
        """Pin one node to an explicit label (overrides the stripe)."""
        if not 0 <= label.zone < self.zones:
            raise ConfigurationError(
                f"zone {label.zone} outside [0, {self.zones})"
            )
        if self._overrides.get(node_id) == label:
            return
        self._overrides[node_id] = label
        self._version += 1

    def remove(self, node_id: int) -> None:
        """Forget a departed node (its override and membership)."""
        changed = node_id in self._members
        self._members.discard(node_id)
        if self._overrides.pop(node_id, None) is not None or changed:
            self._version += 1

    def sync(self, node_ids: Iterable[int]) -> None:
        """Track the current population (called on membership changes).

        Joins resolve lazily through the deterministic stripe, so a sync
        only has to reconcile the member set; the version bumps when the
        population actually changed, invalidating spread-placement
        caches exactly when live-domain composition could have moved.
        """
        members = set(node_ids)
        if members == self._members:
            return
        for departed in self._members - members:
            self._overrides.pop(departed, None)
        self._members = members
        self._version += 1

    # ------------------------------------------------------------- queries
    @property
    def members(self) -> frozenset[int]:
        """The synced population (empty until the first :meth:`sync`)."""
        return frozenset(self._members)

    def members_of_zone(
        self, zone: int, node_ids: Iterable[int] | None = None
    ) -> list[int]:
        """Sorted members of one zone (defaults to the synced set)."""
        pool = self._members if node_ids is None else node_ids
        return sorted(n for n in pool if self.domain_of(n).zone == zone)

    def zones_of(self, node_ids: Iterable[int]) -> set[int]:
        """The distinct zones a node set spans."""
        return {self.domain_of(n).zone for n in node_ids}

    def iter_zones(self) -> Iterator[int]:
        """All configured zone ids, ascending."""
        return iter(range(self.zones))

    def live_zones(
        self, is_live: Callable[[int], bool], node_ids: Iterable[int]
    ) -> set[int]:
        """Zones with at least one member passing the liveness predicate."""
        return {
            self.domain_of(n).zone for n in node_ids if is_live(n)
        }
