"""Gossip dissemination over the peer topology.

Implements announce/request/deliver flooding the way Bitcoin relays blocks:
a node that learns a new item announces its id to all peers; a peer missing
the item requests it from the first announcer; received items are
re-announced.  The helper is protocol-agnostic — block relay, transaction
relay, and header relay all instantiate it with different message kinds.

For analytical experiments that don't need per-hop simulation, the module
also provides closed-form traffic estimates (:func:`flood_cost_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from repro.net.message import Message, MessageKind, sized_message
from repro.net.network import Network

#: The item family a protocol instance relays (headers, txs, blocks).
T = TypeVar("T")

#: Bytes of an announcement (item id + height hint).
ANNOUNCE_PAYLOAD_BYTES = 36
#: Bytes of a request (item id).
REQUEST_PAYLOAD_BYTES = 32


@dataclass
class GossipStats:
    """Per-protocol gossip counters."""

    announces_sent: int = 0
    requests_sent: int = 0
    items_sent: int = 0
    duplicate_announces: int = 0


class GossipProtocol(Generic[T]):
    """Flooding relay for one item family (blocks, txs, headers).

    The protocol object is shared by all nodes of a scenario; per-node state
    (what each node has, whom it already announced to) lives in internal
    maps keyed by node id.  Nodes call :meth:`publish` when they originate
    or finish validating an item; the protocol handles announce/request
    traffic and invokes ``on_item(node_id, item)`` when a node receives the
    full item.

    The three message kinds are public so a
    :class:`~repro.protocols.router.MessageRouter` can claim them at
    engine-install time and dispatch gossip traffic like any other kind.
    """

    def __init__(
        self,
        network: Network,
        announce_kind: MessageKind,
        request_kind: MessageKind,
        item_kind: MessageKind,
        item_size: Callable[[T], int],
        on_item: Callable[[int, T], None],
    ) -> None:
        self._network = network
        self.announce_kind = announce_kind
        self.request_kind = request_kind
        self.item_kind = item_kind
        self._item_size = item_size
        self._on_item = on_item
        self._have: dict[int, set[Hashable]] = {}
        self._items: dict[Hashable, T] = {}
        self._requested: dict[int, set[Hashable]] = {}
        self.stats = GossipStats()

    # ------------------------------------------------------------- seeding
    def node_has(self, node_id: int, item_id: Hashable) -> bool:
        """Does this node already have the item?"""
        return item_id in self._have.get(node_id, set())

    def holders_of(self, item_id: Hashable) -> list[int]:
        """Node ids currently holding the item."""
        return sorted(
            node for node, items in self._have.items() if item_id in items
        )

    def publish(self, node_id: int, item_id: Hashable, item: T) -> None:
        """Node ``node_id`` originates (or completes) ``item`` and relays it."""
        self._items[item_id] = item
        if self._mark_have(node_id, item_id):
            self._announce(node_id, item_id)

    # ------------------------------------------------------------ handlers
    def handle(self, message: Message) -> bool:
        """Dispatch a gossip message; returns ``False`` when not ours."""
        if message.kind == self.announce_kind:
            self._on_announce(message)
        elif message.kind == self.request_kind:
            self._on_request(message)
        elif message.kind == self.item_kind:
            self._on_item_received(message)
        else:
            return False
        return True

    def _mark_have(self, node_id: int, item_id: Hashable) -> bool:
        have = self._have.setdefault(node_id, set())
        if item_id in have:
            return False
        have.add(item_id)
        return True

    def _announce(self, node_id: int, item_id: Hashable) -> None:
        peers = self._network.peers_of(node_id)
        if not peers:
            return
        self.stats.announces_sent += len(peers)
        self._network.send_many(
            sized_message(
                self.announce_kind,
                node_id,
                peer,
                item_id,
                ANNOUNCE_PAYLOAD_BYTES,
            )
            for peer in peers
        )

    def _on_announce(self, message: Message) -> None:
        node_id = message.recipient
        item_id = message.payload
        if self.node_has(node_id, item_id):
            self.stats.duplicate_announces += 1
            return
        requested = self._requested.setdefault(node_id, set())
        if item_id in requested:
            return
        requested.add(item_id)
        self.stats.requests_sent += 1
        self._network.send(
            sized_message(
                self.request_kind,
                node_id,
                message.sender,
                item_id,
                REQUEST_PAYLOAD_BYTES,
            )
        )

    def _on_request(self, message: Message) -> None:
        node_id = message.recipient
        item_id = message.payload
        if not self.node_has(node_id, item_id):
            return  # we pruned or never had it; requester will retry elsewhere
        item = self._items[item_id]
        self.stats.items_sent += 1
        self._network.send(
            sized_message(
                self.item_kind,
                node_id,
                message.sender,
                (item_id, item),
                self._item_size(item),
            )
        )

    def _on_item_received(self, message: Message) -> None:
        node_id = message.recipient
        item_id, item = message.payload
        self._requested.setdefault(node_id, set()).discard(item_id)
        if not self._mark_have(node_id, item_id):
            return
        self._items[item_id] = item
        self._on_item(node_id, item)
        self._announce(node_id, item_id)


def flood_cost_bytes(
    n_nodes: int, item_bytes: int, degree: int, envelope: int = 40
) -> int:
    """Closed-form traffic estimate for announce/request/deliver flooding.

    Every node announces to ``degree`` peers; each node requests and
    receives the item exactly once (n-1 transfers).  Used by analytical
    baselines to cross-check the simulator.
    """
    announces = n_nodes * degree * (ANNOUNCE_PAYLOAD_BYTES + envelope)
    requests = (n_nodes - 1) * (REQUEST_PAYLOAD_BYTES + envelope)
    transfers = (n_nodes - 1) * (item_bytes + envelope)
    return announces + requests + transfers
