"""Message types exchanged on the simulated network.

Every message carries an explicit ``size_bytes`` so the simulator can model
transmission delay and the metrics layer can account traffic per message
kind.  Payloads are live Python objects (no real serialization on the wire
— sizes are computed from the ledger objects' deterministic wire encodings).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

#: Fixed per-message envelope overhead (headers, framing), in bytes.
ENVELOPE_OVERHEAD = 40

_message_ids = itertools.count(1)


class MessageKind(Enum):
    """Wire message taxonomy, used for traffic breakdowns."""

    # Members are singletons with identity equality, so the id-based C
    # hash is consistent — and dict lookups keyed by kind (router dispatch,
    # traffic counters) skip ``Enum.__hash__``'s Python-level frame.
    __hash__ = object.__hash__

    # Transaction relay
    TX_ANNOUNCE = "tx_announce"            # inv: txid only
    TX_REQUEST = "tx_request"              # ask a peer for a transaction
    TX_BODY = "tx_body"                    # full transaction

    # Block relay
    BLOCK_ANNOUNCE = "block_announce"      # inv: block hash + height
    BLOCK_HEADER = "block_header"          # 84-byte header
    BLOCK_BODY = "block_body"              # full block (header + txs)
    BLOCK_REQUEST = "block_request"        # ask a peer for a body
    HEADER_REQUEST = "header_request"      # ask a peer for header range

    # Intra-cluster collaborative verification (PBFT-style)
    VERIFY_PREPARE = "verify_prepare"      # holder's validity attestation
    VERIFY_COMMIT = "verify_commit"        # member's commit vote
    VERIFY_RESULT = "verify_result"        # aggregated decision

    # Bootstrap / sync
    SYNC_REQUEST = "sync_request"          # new node asks for chain state
    SYNC_HEADERS = "sync_headers"          # batch of headers
    SYNC_BODIES = "sync_bodies"            # batch of bodies (assigned slots)

    # Cluster membership
    CLUSTER_HELLO = "cluster_hello"        # membership announcement
    CLUSTER_ASSIGN = "cluster_assign"      # placement table update

    # Anti-entropy repair (periodic coverage reconciliation)
    REPAIR_DIGEST_REQUEST = "repair_digest_request"  # ask for coverage
    REPAIR_DIGEST = "repair_digest"        # compact held-body summary
    REPAIR_REQUEST = "repair_request"      # re-replication body pull
    REPAIR_BODIES = "repair_bodies"        # re-replication body (or miss)

    # Kademlia-style DHT overlay (opt-in holder/membership resolution)
    DHT_PING = "dht_ping"                  # liveness probe for a contact
    DHT_PONG = "dht_pong"                  # ping acknowledgement
    DHT_FIND_NODE = "dht_find_node"        # ask for contacts near a key
    DHT_NODES = "dht_nodes"                # k closest known contacts
    DHT_FIND_VALUE = "dht_find_value"      # ask for a provider record
    DHT_VALUE = "dht_value"                # record hit, or closer contacts
    DHT_STORE = "dht_store"                # publish a provider record

    # Generic control (tests, ping-style probes)
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """A simulated wire message.

    Attributes:
        kind: taxonomy bucket for traffic accounting.
        sender: node id of the origin.
        recipient: node id of the destination.
        payload: arbitrary live object interpreted by the handler.
        size_bytes: total bytes on the wire **including** envelope overhead.
        message_id: unique id for tracing/deduplication.
    """

    kind: MessageKind
    sender: int
    recipient: int
    payload: Any
    size_bytes: int
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < ENVELOPE_OVERHEAD:
            object.__setattr__(
                self, "size_bytes", self.size_bytes + ENVELOPE_OVERHEAD
            )


def sized_message(
    kind: MessageKind,
    sender: int,
    recipient: int,
    payload: Any,
    payload_bytes: int,
) -> Message:
    """Build a message whose wire size is ``payload_bytes`` + envelope."""
    return Message(
        kind=kind,
        sender=sender,
        recipient=recipient,
        payload=payload,
        size_bytes=payload_bytes + ENVELOPE_OVERHEAD,
    )
