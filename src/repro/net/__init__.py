"""Network substrate: virtual clock, latency models, topologies, gossip."""

from repro.net.gossip import GossipProtocol, GossipStats, flood_cost_bytes
from repro.net.latency import (
    DEFAULT_BANDWIDTH_BPS,
    ConstantLatency,
    CoordinateLatency,
    LatencyModel,
    UniformLatency,
)
from repro.net.message import (
    ENVELOPE_OVERHEAD,
    Message,
    MessageKind,
    sized_message,
)
from repro.net.network import Endpoint, Network
from repro.net.simclock import EventHandle, SimClock
from repro.net.topology import (
    Topology,
    clustered_topology,
    full_mesh,
    is_connected,
    random_regular,
    ring,
)
from repro.net.traffic import TrafficLedger, TrafficSnapshot

__all__ = [
    "GossipProtocol",
    "GossipStats",
    "flood_cost_bytes",
    "DEFAULT_BANDWIDTH_BPS",
    "ConstantLatency",
    "CoordinateLatency",
    "LatencyModel",
    "UniformLatency",
    "ENVELOPE_OVERHEAD",
    "Message",
    "MessageKind",
    "sized_message",
    "Endpoint",
    "Network",
    "EventHandle",
    "SimClock",
    "Topology",
    "clustered_topology",
    "full_mesh",
    "is_connected",
    "random_regular",
    "ring",
    "TrafficLedger",
    "TrafficSnapshot",
]
