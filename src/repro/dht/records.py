"""Provider records: the DHT's block-hash → holder-set mapping.

Each node near a block's overlay key keeps a :class:`ProviderStore`
entry mapping that key to the node ids known to hold the block's body,
each holder stamped with a virtual-time expiry.  Records decay rather
than being deleted: a read past a holder's expiry simply skips it, and
republication (driven from the anti-entropy sweep while the overlay is
enabled) refreshes live holders before they lapse.  Expiry on virtual
time means a crashed publisher's stale claims age out of the overlay
without any tombstone protocol.
"""

from __future__ import annotations

#: Default lifetime of one published holder entry, virtual seconds.
#: Generous relative to sweep cadences (~5 s) so a single missed
#: republish round never blanks a record.
DEFAULT_RECORD_TTL = 600.0


class ProviderStore:
    """One node's slice of the provider-record keyspace."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        #: overlay key -> {holder node id -> expires-at (virtual time)}.
        self.records: dict[int, dict[int, float]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def put(
        self, key: int, holders: tuple[int, ...], now: float, ttl: float
    ) -> None:
        """Merge a published holder set, refreshing their expiries."""
        record = self.records.setdefault(key, {})
        expires = now + ttl
        for holder in holders:
            record[holder] = max(record.get(holder, 0.0), expires)

    def get(self, key: int, now: float) -> tuple[int, ...]:
        """Unexpired holders for ``key``, sorted (empty = no record)."""
        record = self.records.get(key)
        if not record:
            return ()
        return tuple(
            sorted(h for h, expires in record.items() if expires > now)
        )

    def expire(self, now: float) -> int:
        """Drop lapsed holders (and emptied records); returns how many."""
        dropped = 0
        for key in list(self.records):
            record = self.records[key]
            for holder in [h for h, e in record.items() if e <= now]:
                del record[holder]
                dropped += 1
            if not record:
                del self.records[key]
        return dropped

    def keys(self) -> tuple[int, ...]:
        """Every stored overlay key, sorted."""
        return tuple(sorted(self.records))


__all__ = ["ProviderStore", "DEFAULT_RECORD_TTL"]
