"""The 160-bit XOR-metric identifier space of the DHT overlay.

Node ids and block keys both map into one Kademlia-style id space:
the first 20 bytes of a domain-separated SHA-256 digest, interpreted
as a big-endian integer.  Closeness is the XOR metric ``d(a, b) =
a ^ b`` — a genuine metric (symmetric, zero iff equal, triangle
inequality under XOR composition) whose unidirectional property makes
iterative lookups converge: every step can strictly decrease the
distance to the target.

Nodes derive their overlay id from their wire ``address`` (the keypair
address they already carry), so the overlay needs no extra identity
material and id assignment stays deterministic per seed.
"""

from __future__ import annotations

from repro.crypto.hashing import Hash32, sha256

#: Width of the identifier space (Kademlia's standard 160).
ID_BITS = 160
#: Bytes of an id on the wire (ids travel as 20-byte digests).
ID_BYTES = ID_BITS // 8

_NODE_DOMAIN = b"dht-node:"
_BLOCK_DOMAIN = b"dht-block:"


def node_key(address: bytes) -> int:
    """A node's 160-bit overlay id, derived from its wire address."""
    return int.from_bytes(sha256(_NODE_DOMAIN + address)[:ID_BYTES], "big")


def block_key(block_hash: Hash32) -> int:
    """The overlay key a block's provider record lives under."""
    return int.from_bytes(
        sha256(_BLOCK_DOMAIN + block_hash)[:ID_BYTES], "big"
    )


def distance(a: int, b: int) -> int:
    """XOR distance between two ids."""
    return a ^ b


def bucket_index(own: int, other: int) -> int:
    """Which k-bucket ``other`` falls into, seen from ``own``.

    Bucket ``i`` holds ids whose XOR distance has its highest set bit at
    position ``i`` — i.e. ids sharing exactly ``ID_BITS - 1 - i`` leading
    prefix bits with ``own``.

    Raises:
        ValueError: for ``own == other`` (a node never buckets itself).
    """
    d = own ^ other
    if d == 0:
        raise ValueError("a node does not bucket its own id")
    return d.bit_length() - 1


def sort_by_distance(keys: list[int], target: int) -> list[int]:
    """Ids ordered nearest-first by XOR distance to ``target``.

    Ties are impossible (XOR distance is injective for a fixed target),
    so the order is total and deterministic.
    """
    return sorted(keys, key=lambda k: k ^ target)
