"""Kademlia-style DHT overlay (opt-in; see DESIGN.md "DHT overlay").

Submodules:

* :mod:`repro.dht.idspace` — the 160-bit XOR-metric id space.
* :mod:`repro.dht.routing` — k-bucket routing tables (pure data).
* :mod:`repro.dht.records` — provider records with virtual-time expiry.
* :mod:`repro.dht.engine` — the protocol engine: PING/FIND_NODE/
  FIND_VALUE/STORE over the deployment's message router, iterative
  α-parallel lookups on the shared request tracker.
"""

from repro.dht.engine import DHTConfig, DHTEngine, DHTStats
from repro.dht.idspace import ID_BITS, block_key, distance, node_key
from repro.dht.records import ProviderStore
from repro.dht.routing import Contact, KBucket, RoutingTable

__all__ = [
    "DHTConfig",
    "DHTEngine",
    "DHTStats",
    "ID_BITS",
    "block_key",
    "distance",
    "node_key",
    "ProviderStore",
    "Contact",
    "KBucket",
    "RoutingTable",
]
