"""The DHT protocol engine: Kademlia-style lookups over the router.

Installed on every ICI deployment so its seven message kinds are always
registered (router coverage and report schemas stay uniform), but — like
the anti-entropy engine — completely dormant until
``deployment.enable_dht()``: until then it adds no observer, owns no
routing state, sends nothing, and draws no randomness, so fixed-path
runs stay byte-identical.

Enabled, the engine keeps one :class:`~repro.dht.routing.RoutingTable`
and one :class:`~repro.dht.records.ProviderStore` per node and speaks
four sub-protocols, all dispatched through the deployment's
:class:`~repro.protocols.router.MessageRouter`:

* **PING/PONG** — explicit liveness refresh; a contact that stays
  silent through the tracker's retries is evicted from its bucket.
* **FIND_NODE/NODES** — iterative node lookup with ``α`` probes in
  flight, each probe a tracked request (retry/timeout/degrade ride the
  shared :class:`~repro.protocols.reliability.RequestTracker`
  machinery, so chaos-weather counters cover the overlay for free).
* **FIND_VALUE/VALUE** — the same iteration, short-circuited by the
  first provider-record hit; the query engine resolves block holders
  through this before falling back to its legacy broadcast tail.
* **STORE** — provider-record publication: on every cluster
  finalization the block's primary holder looks up the record key's
  k-nearest nodes and stores the holder set there, with virtual-time
  expiry and sweep-driven republish keeping records live under churn.

Tables are additionally maintained from *observed* router traffic: the
engine registers as a router observer at enable time and folds every
send/delivery's endpoint into the respective tables, so ordinary block
gossip keeps buckets warm without dedicated maintenance traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable

from repro.crypto.hashing import Hash32
from repro.dht.idspace import block_key, node_key
from repro.dht.records import DEFAULT_RECORD_TTL, ProviderStore
from repro.dht.routing import DEFAULT_K, Contact, RoutingTable
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.node.base import BaseNode
from repro.protocols.reliability import (
    PendingRequest,
    RequestTracker,
    RetryPolicy,
)
from repro.protocols.router import FinalizeEvent, MessageRouter, ProtocolEngine

#: Wire size of a key operand (the 20-byte overlay id).
KEY_BYTES = 20
#: Wire size of one serialized contact (overlay key + node reference).
CONTACT_BYTES = 26
#: Wire size of a ping/pong payload (request id only).
PING_BYTES = 8
#: Wire size of one holder entry inside a record payload.
HOLDER_BYTES = 6

#: Probe pacing: like the repair engine's, two rounds of capped backoff
#: per single-peer plan, so a dead peer degrades after two deadlines.
DHT_RETRY_POLICY = RetryPolicy(
    base_timeout=2.0, backoff=1.5, max_timeout=12.0, rounds=2
)


@dataclass(frozen=True)
class DHTConfig:
    """Overlay knobs (Kademlia's classic parameters plus wiring)."""

    #: Bucket capacity and replication width of provider records.
    k: int = DEFAULT_K
    #: Concurrent probes per iterative lookup.
    alpha: int = 3
    #: Digest-collection fanout when the repair engine routes through
    #: the overlay: the coordinator polls only its ``digest_fanout``
    #: XOR-nearest live cluster peers instead of every member.
    digest_fanout: int = 4
    #: Provider-record holder lifetime, virtual seconds.
    record_ttl: float = DEFAULT_RECORD_TTL
    #: Minimum virtual seconds between republishes of one record.
    republish_interval: float = 30.0
    #: Hard cap on contacts one lookup may query (loop backstop).
    max_lookup_contacts: int = 24

    def __post_init__(self) -> None:
        if self.k < 1 or self.alpha < 1 or self.digest_fanout < 1:
            raise ConfigurationError("k, alpha, digest_fanout must be >= 1")
        if self.record_ttl <= 0 or self.republish_interval <= 0:
            raise ConfigurationError("ttl and republish must be > 0")
        if self.max_lookup_contacts < self.k:
            raise ConfigurationError("max_lookup_contacts must be >= k")


@dataclass
class DHTStats:
    """Integer counters (signature-safe; see chaos outcome discipline)."""

    lookups_started: int = 0
    lookups_completed: int = 0
    value_hits: int = 0
    value_misses: int = 0
    local_hits: int = 0
    lookup_messages: int = 0
    lookup_hops: int = 0
    probe_failures: int = 0
    joins: int = 0
    records_published: int = 0
    stores_sent: int = 0
    pings_sent: int = 0
    contacts_evicted: int = 0
    records_expired: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and determinism signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _Lookup:
    """One iterative lookup's state: shortlist, probes, provenance."""

    __slots__ = (
        "requester",
        "target",
        "mode",
        "on_complete",
        "known",
        "generation",
        "queried",
        "failed",
        "in_flight",
        "messages",
        "hops",
        "value",
        "result",
        "done",
    )

    def __init__(
        self,
        requester: int,
        target: int,
        mode: str,
        on_complete: Callable | None,
    ) -> None:
        self.requester = requester
        self.target = target
        self.mode = mode  # "node" | "value"
        self.on_complete = on_complete
        #: Candidate node id -> overlay key (grows as responses arrive).
        self.known: dict[int, int] = {}
        #: Candidate node id -> discovery depth (seeds are 0).
        self.generation: dict[int, int] = {}
        self.queried: set[int] = set()
        self.failed: set[int] = set()
        self.in_flight: set[int] = set()
        self.messages = 0
        self.hops = 0
        #: FIND_VALUE hit: the provider record's holder tuple.
        self.value: tuple[int, ...] | None = None
        #: Final result handed to ``on_complete``.
        self.result: object | None = None
        self.done = False


class _Flood:
    """Broadcast-resolution baseline state (E20's comparison arm)."""

    __slots__ = ("key", "messages", "responses", "holders")

    def __init__(self, key: int) -> None:
        self.key = key
        self.messages = 0
        self.responses = 0
        self.holders: tuple[int, ...] | None = None


class DHTEngine(ProtocolEngine):
    """Kademlia-style overlay, dormant until :meth:`enable`."""

    name = "dht"

    def __init__(self, deployment) -> None:
        super().__init__(deployment)
        self.enabled = False
        self.config = DHTConfig()
        self.stats = DHTStats()
        #: node id -> routing table (populated at enable/join).
        self.tables: dict[int, RoutingTable] = {}
        #: node id -> provider-record slice.
        self.providers: dict[int, ProviderStore] = {}
        self.tracker = RequestTracker(
            deployment.network.clock,
            policy=DHT_RETRY_POLICY,
            on_retry=lambda r: self.router.note_retry(self._kind_of(r)),
            on_timeout=lambda r: self.router.note_timeout(self._kind_of(r)),
            on_degraded=lambda r: self.router.note_degraded(
                self._kind_of(r)
            ),
        )
        self._next_id = 1
        #: request id -> RouterStats kind label.
        self._request_kind: dict[int, str] = {}
        #: request id -> (lookup | flood | ("ping", owner), peer).
        self._requests: dict[int, tuple[object, int]] = {}
        #: node id -> cached overlay key (survives departures).
        self._keys: dict[int, int] = {}
        #: (cluster id, block hash) -> last publish time (republish gate).
        self._published_at: dict[tuple[int, Hash32], float] = {}

    def install(self, router: MessageRouter) -> None:
        router.register(MessageKind.DHT_PING, self._on_ping, owner=self.name)
        router.register(MessageKind.DHT_PONG, self._on_pong, owner=self.name)
        router.register(
            MessageKind.DHT_FIND_NODE, self._on_find_node, owner=self.name
        )
        router.register(
            MessageKind.DHT_NODES, self._on_nodes, owner=self.name
        )
        router.register(
            MessageKind.DHT_FIND_VALUE, self._on_find_value, owner=self.name
        )
        router.register(
            MessageKind.DHT_VALUE, self._on_value, owner=self.name
        )
        router.register(
            MessageKind.DHT_STORE, self._on_store, owner=self.name
        )

    # ------------------------------------------------------------ lifecycle
    def enable(self, config: DHTConfig | None = None) -> "DHTEngine":
        """Activate the overlay (idempotent).

        Seeds every node's routing table from its cluster co-members
        plus one bridge contact per foreign cluster (the same shape as
        the physical overlay), registers the engine as a router
        observer so ordinary traffic keeps buckets warm, and publishes
        provider records for every block already finalized.  Publishes
        ride the normal message fabric — drive the network afterwards
        to drain them.
        """
        if self.enabled:
            return self
        if config is not None:
            self.config = config
        self.enabled = True
        self.router.add_observer(self)
        for node_id in sorted(self.deployment.nodes):
            self._table(node_id)
        self._seed_tables()
        self._publish_existing()
        return self

    # ---------------------------------------------------------- id plumbing
    def key_of(self, node_id: int) -> int:
        """A node's overlay key (cached; derived from its address)."""
        key = self._keys.get(node_id)
        if key is None:
            key = node_key(self.deployment.nodes[node_id].address)
            self._keys[node_id] = key
        return key

    def contact_of(self, node_id: int) -> Contact:
        """A Contact record for a current member."""
        return Contact(node_id, self.key_of(node_id))

    def _table(self, node_id: int) -> RoutingTable:
        table = self.tables.get(node_id)
        if table is None:
            table = RoutingTable(
                node_id, self.key_of(node_id), k=self.config.k
            )
            self.tables[node_id] = table
            self.providers[node_id] = ProviderStore()
        return table

    def _seed_tables(self) -> None:
        views = sorted(
            self.deployment.clusters.views(), key=lambda v: v.cluster_id
        )
        bridges = {
            view.cluster_id: min(view.members) for view in views if view.members
        }
        for view in views:
            members = sorted(view.members)
            for node_id in members:
                table = self._table(node_id)
                for peer in members:
                    if peer != node_id:
                        table.update(self.contact_of(peer))
                for cluster_id, bridge in sorted(bridges.items()):
                    if cluster_id != view.cluster_id and bridge != node_id:
                        table.update(self.contact_of(bridge))

    # -------------------------------------------------- router observation
    # The engine observes its own deployment's traffic (added at enable):
    # both endpoints of every message are live peers worth remembering.
    def on_send(self, message: Message) -> None:
        table = self.tables.get(message.sender)
        if table is not None and message.recipient in self.deployment.nodes:
            table.update(self.contact_of(message.recipient))

    def on_deliver(self, node: BaseNode, message: Message) -> None:
        table = self.tables.get(node.node_id)
        if table is not None and message.sender in self.deployment.nodes:
            table.update(self.contact_of(message.sender))

    def on_finalize(self, event: FinalizeEvent) -> None:
        if (
            not event.cluster_final
            or not event.accepted
            or event.cluster_id is None
        ):
            return
        # Several members report cluster finality for the same block;
        # only the first publishes (republish is the sweep's job).
        if (event.cluster_id, event.block_hash) in self._published_at:
            return
        self._publish_cluster(event.block_hash, event.cluster_id)

    # ------------------------------------------------------------- requests
    def _allocate(self, kind: str) -> int:
        request_id = self._next_id
        self._next_id += 1
        self._request_kind[request_id] = kind
        return request_id

    def _release(self, request_id: int) -> None:
        self._request_kind.pop(request_id, None)

    def _kind_of(self, request: PendingRequest) -> str:
        return self._request_kind.get(request.request_id, "dht_find_node")

    def _probe_degraded(self, request: PendingRequest) -> None:
        entry = self._requests.pop(request.request_id, None)
        self._release(request.request_id)
        if entry is None:
            return
        obj, peer = entry
        if isinstance(obj, _Lookup):
            self.stats.probe_failures += 1
            obj.in_flight.discard(peer)
            obj.failed.add(peer)
            table = self.tables.get(obj.requester)
            if table is not None and table.remove(peer):
                self.stats.contacts_evicted += 1
            if not obj.done:
                self._advance(obj)
        elif isinstance(obj, tuple) and obj[0] == "ping":
            table = self.tables.get(obj[1])
            if table is not None and table.remove(peer):
                self.stats.contacts_evicted += 1

    # ----------------------------------------------------- iterative lookup
    def lookup_node(
        self,
        requester: int,
        target: int,
        on_complete: Callable | None = None,
    ) -> _Lookup:
        """Iterative FIND_NODE toward ``target`` from ``requester``."""
        return self._start_lookup(requester, target, "node", on_complete)

    def lookup_value(
        self,
        requester: int,
        key: int,
        on_complete: Callable | None = None,
    ) -> _Lookup:
        """Iterative FIND_VALUE for ``key`` from ``requester``."""
        return self._start_lookup(requester, key, "value", on_complete)

    def find_holders(
        self,
        requester: int,
        block_hash: Hash32,
        on_complete: Callable[[tuple[int, ...] | None], None],
    ) -> "_Lookup | None":
        """Resolve a block's holder set through the overlay.

        A locally stored (unexpired) provider record answers without
        any wire traffic; otherwise an iterative FIND_VALUE runs and
        ``on_complete`` receives the holder tuple (or ``None`` on a
        miss — the query engine then falls back to its legacy plan).
        """
        key = block_key(block_hash)
        store = self.providers.get(requester)
        if store is not None:
            holders = store.get(key, self.network.now)
            if holders:
                self.stats.local_hits += 1
                on_complete(holders)
                return None
        return self.lookup_value(requester, key, on_complete)

    def _start_lookup(
        self,
        requester: int,
        target: int,
        mode: str,
        on_complete: Callable | None,
    ) -> _Lookup:
        lookup = _Lookup(requester, target, mode, on_complete)
        self.stats.lookups_started += 1
        for contact in self._table(requester).closest(
            target, self.config.k
        ):
            lookup.known[contact.node_id] = contact.key
            lookup.generation[contact.node_id] = 0
        self._advance(lookup)
        return lookup

    def _candidates(self, lookup: _Lookup) -> list[int]:
        return sorted(
            (
                node_id
                for node_id in lookup.known
                if node_id not in lookup.queried
                and node_id != lookup.requester
            ),
            key=lambda n: lookup.known[n] ^ lookup.target,
        )

    def _converged(self, lookup: _Lookup) -> bool:
        """Have the k nearest known (non-failed) peers all been asked?"""
        nearest = sorted(
            (
                node_id
                for node_id in lookup.known
                if node_id != lookup.requester
                and node_id not in lookup.failed
            ),
            key=lambda n: lookup.known[n] ^ lookup.target,
        )[: self.config.k]
        return bool(nearest) and all(n in lookup.queried for n in nearest)

    def _advance(self, lookup: _Lookup) -> None:
        if lookup.done:
            return
        while len(lookup.in_flight) < self.config.alpha:
            if len(lookup.queried) >= self.config.max_lookup_contacts:
                break
            if self._converged(lookup):
                break
            candidates = self._candidates(lookup)
            if not candidates:
                break
            self._probe(lookup, candidates[0])
        if not lookup.in_flight and not lookup.done:
            self._complete(lookup)

    def _probe(self, lookup: _Lookup, peer: int) -> None:
        lookup.queried.add(peer)
        lookup.in_flight.add(peer)
        kind = (
            MessageKind.DHT_FIND_VALUE
            if lookup.mode == "value"
            else MessageKind.DHT_FIND_NODE
        )
        request_id = self._allocate(kind.value)
        self._requests[request_id] = (lookup, peer)

        def send(target: int, _request: PendingRequest) -> None:
            requester = self.deployment.nodes.get(lookup.requester)
            if requester is None:
                return
            lookup.messages += 1
            requester.send(
                kind, target, (request_id, lookup.target), KEY_BYTES + 8
            )

        self.tracker.begin(
            request_id, [peer], send, on_degraded=self._probe_degraded
        )

    def _absorb(
        self,
        request_id: int,
        contacts: tuple[tuple[int, int], ...],
        holders: tuple[int, ...] | None,
    ) -> None:
        entry = self._requests.pop(request_id, None)
        if entry is None:
            return  # duplicate delivery or post-degrade straggler
        self.tracker.resolve(request_id)
        self._release(request_id)
        obj, peer = entry
        if isinstance(obj, _Flood):
            obj.messages += 1
            obj.responses += 1
            if holders and obj.holders is None:
                obj.holders = holders
            return
        lookup = obj
        assert isinstance(lookup, _Lookup)
        lookup.messages += 1
        lookup.in_flight.discard(peer)
        depth = lookup.generation.get(peer, 0) + 1
        lookup.hops = max(lookup.hops, depth)
        if lookup.done:
            return  # a late answer after completion changes nothing
        if holders and lookup.mode == "value":
            lookup.value = holders
            self._complete(lookup)
            return
        table = self.tables.get(lookup.requester)
        for node_id, key in contacts:
            if node_id == lookup.requester:
                continue
            if node_id not in lookup.known:
                lookup.known[node_id] = key
                lookup.generation[node_id] = depth
            if table is not None:
                table.update(Contact(node_id, key))
        self._advance(lookup)

    def _complete(self, lookup: _Lookup) -> None:
        lookup.done = True
        self.stats.lookups_completed += 1
        self.stats.lookup_messages += lookup.messages
        self.stats.lookup_hops += lookup.hops
        if lookup.mode == "value":
            if lookup.value:
                self.stats.value_hits += 1
            else:
                self.stats.value_misses += 1
            lookup.result = lookup.value
        else:
            lookup.result = [
                Contact(node_id, lookup.known[node_id])
                for node_id in sorted(
                    (
                        n
                        for n in lookup.known
                        if n != lookup.requester and n not in lookup.failed
                    ),
                    key=lambda n: lookup.known[n] ^ lookup.target,
                )[: self.config.k]
            ]
        if lookup.on_complete is not None:
            lookup.on_complete(lookup.result)

    # ------------------------------------------------------------- joining
    def join_node(self, node_id: int, contact_id: int) -> _Lookup:
        """Bootstrap a joiner's table: seed one contact, self-lookup.

        Replaces the legacy full-table membership exchange: the joiner
        learns progressively closer neighbourhoods from the iterative
        FIND_NODE toward its own key, and every response folds into its
        fresh routing table on the way.
        """
        table = self._table(node_id)
        table.update(self.contact_of(contact_id))
        self.stats.joins += 1
        return self.lookup_node(node_id, self.key_of(node_id))

    # ----------------------------------------------------- provider records
    def _publish_existing(self) -> None:
        for view in sorted(
            self.deployment.clusters.views(), key=lambda v: v.cluster_id
        ):
            for header in self.deployment.ledger.store.iter_active_headers():
                self._publish_cluster(header.block_hash, view.cluster_id)

    def _publish_cluster(self, block_hash: Hash32, cluster_id: int) -> None:
        """Publish one (block, cluster)'s holder set into the overlay."""
        from repro.sim.faults import live_members

        deployment = self.deployment
        try:
            members = deployment.clusters.members_of(cluster_id)
        except Exception:
            return  # cluster dissolved since the event fired
        header = deployment.ledger.store.header(block_hash)
        planner = getattr(deployment, "replication_planner", None)
        if planner is not None and not header.is_genesis:
            assigned = planner.read_plan(header, members)
        else:
            assigned = deployment.placement.holders(
                header, members, deployment.config.replication
            )
        holders = tuple(
            live_members(self.network, [m for m in sorted(assigned)])
        )
        if not holders:
            return
        publisher = holders[0]
        key = block_key(block_hash)
        now = self.network.now
        self.stats.records_published += 1
        self._published_at[(cluster_id, block_hash)] = now
        # The publisher always keeps a local copy: the record stays
        # resolvable even while the k-nearest stores are in flight.
        self.providers.setdefault(publisher, ProviderStore()).put(
            key, holders, now, self.config.record_ttl
        )

        def stored(contacts) -> None:
            publisher_node = deployment.nodes.get(publisher)
            if publisher_node is None or not contacts:
                return
            payload_bytes = 16 + KEY_BYTES + HOLDER_BYTES * len(holders)
            for contact in contacts[: self.config.k]:
                if contact.node_id == publisher:
                    continue
                self.stats.stores_sent += 1
                publisher_node.send(
                    MessageKind.DHT_STORE,
                    contact.node_id,
                    (key, holders, self.config.record_ttl),
                    payload_bytes,
                )

        self.lookup_node(publisher, key, stored)

    def on_sweep(self) -> None:
        """Anti-entropy hook: expire lapsed records, republish due ones.

        Called by the repair engine at the top of each sweep while the
        overlay is enabled, giving records the same periodic-maintenance
        cadence the replica floor already has — no timers of its own,
        so full ``run()`` drains still terminate.
        """
        now = self.network.now
        for node_id in sorted(self.providers):
            self.stats.records_expired += self.providers[node_id].expire(
                now
            )
        for view in sorted(
            self.deployment.clusters.views(), key=lambda v: v.cluster_id
        ):
            for header in self.deployment.ledger.store.iter_active_headers():
                last = self._published_at.get(
                    (view.cluster_id, header.block_hash)
                )
                if (
                    last is None
                    or now - last >= self.config.republish_interval
                ):
                    self._publish_cluster(
                        header.block_hash, view.cluster_id
                    )

    def republish_all(self) -> None:
        """Force-republish every (block, cluster) record (heal phases)."""
        self._published_at.clear()
        self.on_sweep()

    # ----------------------------------------------------- repair routing
    def digest_peers(self, coordinator: int, candidates: list[int]) -> list[int]:
        """The coordinator's digest-poll subset: XOR-nearest live peers.

        Replaces whole-cluster digest fanout: only the ``digest_fanout``
        peers nearest the coordinator in the overlay id space are
        polled each sweep; the analysis pass excludes the rest (their
        coverage is unknown, like an unresponsive member's).
        """
        fanout = self.config.digest_fanout
        if len(candidates) <= fanout:
            return list(candidates)
        ckey = self.key_of(coordinator)
        return sorted(candidates, key=lambda m: self.key_of(m) ^ ckey)[
            :fanout
        ]

    # --------------------------------------------------- refresh / auditing
    def refresh_all(self) -> None:
        """PING every contact of every live table (tracked, retried).

        Contacts that stay silent through the retry policy are evicted —
        the explicit refresh pass chaos heal phases run so lookups after
        a crash storm do not waste probes on dead peers.
        """
        from repro.sim.faults import live_members

        for node_id in live_members(self.network, sorted(self.tables)):
            table = self.tables[node_id]
            for contact in table.contacts():
                self._ping(node_id, contact.node_id)

    def _ping(self, owner: int, peer: int) -> None:
        request_id = self._allocate("dht_ping")
        self._requests[request_id] = (("ping", owner), peer)

        def send(target: int, _request: PendingRequest) -> None:
            node = self.deployment.nodes.get(owner)
            if node is None:
                return
            self.stats.pings_sent += 1
            node.send(MessageKind.DHT_PING, target, request_id, PING_BYTES)

        self.tracker.begin(
            request_id, [peer], send, on_degraded=self._probe_degraded
        )

    def flood_resolve(self, requester: int, block_hash: Hash32) -> _Flood:
        """The pre-DHT baseline: ask *every* live peer for the record.

        Exists for E20's comparison arm only — message cost is linear in
        network size by construction, which is exactly the curve the
        experiment contrasts with the iterative lookup's.
        """
        from repro.sim.faults import live_members

        key = block_key(block_hash)
        flood = _Flood(key)
        node = self.deployment.nodes[requester]
        for peer in live_members(self.network, sorted(self.deployment.nodes)):
            if peer == requester:
                continue
            request_id = self._allocate("dht_find_value")
            self._requests[request_id] = (flood, peer)
            flood.messages += 1
            node.send(
                MessageKind.DHT_FIND_VALUE,
                peer,
                (request_id, key),
                KEY_BYTES + 8,
            )
        return flood

    def audit_tables(self) -> dict[str, int]:
        """Routing-table liveness census (chaos/endurance audits)."""
        from repro.sim.faults import live_members

        live = set(
            live_members(self.network, sorted(self.deployment.nodes))
        )
        audit = {
            "tables_audited": 0,
            "contacts": 0,
            "stale_contacts": 0,
            "empty_tables": 0,
        }
        for node_id in sorted(self.tables):
            if node_id not in live:
                continue
            entries = self.tables[node_id].contacts()
            audit["tables_audited"] += 1
            audit["contacts"] += len(entries)
            audit["stale_contacts"] += sum(
                1 for entry in entries if entry.node_id not in live
            )
            if not entries:
                audit["empty_tables"] += 1
        return audit

    # ------------------------------------------------------------- handlers
    def _serialized_closest(
        self, node_id: int, target: int
    ) -> tuple[tuple[int, int], ...]:
        table = self.tables.get(node_id)
        if table is None:
            return ()
        return tuple(
            (contact.node_id, contact.key)
            for contact in table.closest(target, self.config.k)
        )

    def _on_ping(self, node: BaseNode, message: Message) -> None:
        node.send(
            MessageKind.DHT_PONG, message.sender, message.payload, PING_BYTES
        )

    def _on_pong(self, node: BaseNode, message: Message) -> None:
        request_id = message.payload
        if self._requests.pop(request_id, None) is None:
            return
        self.tracker.resolve(request_id)
        self._release(request_id)

    def _on_find_node(self, node: BaseNode, message: Message) -> None:
        request_id, target = message.payload
        contacts = self._serialized_closest(node.node_id, target)
        node.send(
            MessageKind.DHT_NODES,
            message.sender,
            (request_id, contacts),
            8 + CONTACT_BYTES * len(contacts),
        )

    def _on_nodes(self, node: BaseNode, message: Message) -> None:
        request_id, contacts = message.payload
        self._absorb(request_id, contacts, holders=None)

    def _on_find_value(self, node: BaseNode, message: Message) -> None:
        request_id, key = message.payload
        store = self.providers.get(node.node_id)
        holders = (
            store.get(key, self.network.now) if store is not None else ()
        )
        if holders:
            node.send(
                MessageKind.DHT_VALUE,
                message.sender,
                (request_id, key, holders, True),
                8 + KEY_BYTES + HOLDER_BYTES * len(holders),
            )
        else:
            contacts = self._serialized_closest(node.node_id, key)
            node.send(
                MessageKind.DHT_VALUE,
                message.sender,
                (request_id, key, contacts, False),
                8 + KEY_BYTES + CONTACT_BYTES * len(contacts),
            )

    def _on_value(self, node: BaseNode, message: Message) -> None:
        request_id, _key, data, found = message.payload
        if found:
            self._absorb(request_id, (), holders=data)
        else:
            self._absorb(request_id, data, holders=None)

    def _on_store(self, node: BaseNode, message: Message) -> None:
        key, holders, ttl = message.payload
        self.providers.setdefault(node.node_id, ProviderStore()).put(
            key, holders, self.network.now, ttl
        )
