"""K-bucket routing tables for the DHT overlay.

One :class:`RoutingTable` per node: up to :data:`ID_BITS` buckets of at
most ``k`` contacts each, bucket ``i`` covering peers whose XOR distance
from the owner has its highest bit at position ``i``.  Buckets keep
least-recently-seen order (Kademlia's LRU discipline): a re-observed
contact moves to the tail, a new contact joins the tail while there is
room, and a full bucket *rejects* the newcomer — long-lived contacts are
statistically the ones that stay reachable, so the table prefers them
until an explicit liveness probe (PING) evicts a dead head.

Everything here is pure data structure — no clock, no network — which
is what lets the property suite drive it with Hypothesis directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.idspace import ID_BITS, bucket_index

#: Kademlia's bucket capacity (``k``): contacts kept per distance band.
DEFAULT_K = 8


@dataclass(frozen=True)
class Contact:
    """One routing-table entry: a peer's node id and overlay key."""

    node_id: int
    key: int


class KBucket:
    """One distance band: ≤ ``k`` contacts in least-recently-seen order."""

    __slots__ = ("k", "entries")

    def __init__(self, k: int) -> None:
        self.k = k
        #: Oldest (least recently seen) first, newest last.
        self.entries: list[Contact] = []

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        """No room for a new contact."""
        return len(self.entries) >= self.k

    @property
    def head(self) -> Contact | None:
        """The least-recently-seen contact (eviction candidate)."""
        return self.entries[0] if self.entries else None

    def touch(self, contact: Contact) -> bool:
        """Record an observation of ``contact``.

        Known contacts move to the most-recently-seen tail; unknown ones
        append while there is room.  Returns ``False`` when the bucket is
        full and the contact unknown — the caller decides whether to
        probe-and-evict the head or drop the newcomer.
        """
        for index, entry in enumerate(self.entries):
            if entry.node_id == contact.node_id:
                del self.entries[index]
                self.entries.append(contact)
                return True
        if self.full:
            return False
        self.entries.append(contact)
        return True

    def remove(self, node_id: int) -> bool:
        """Drop a contact (eviction after a failed liveness probe)."""
        for index, entry in enumerate(self.entries):
            if entry.node_id == node_id:
                del self.entries[index]
                return True
        return False


class RoutingTable:
    """One node's view of the overlay: lazily materialized k-buckets."""

    __slots__ = ("owner_id", "owner_key", "k", "buckets")

    def __init__(self, owner_id: int, owner_key: int, k: int = DEFAULT_K):
        self.owner_id = owner_id
        self.owner_key = owner_key
        self.k = k
        #: bucket index -> bucket, created on first use (160 potential
        #: bands, a handful populated at simulated network sizes).
        self.buckets: dict[int, KBucket] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())

    def __contains__(self, node_id: int) -> bool:
        return any(
            entry.node_id == node_id
            for bucket in self.buckets.values()
            for entry in bucket.entries
        )

    def bucket_for(self, key: int) -> KBucket:
        """The (lazily created) bucket covering ``key``'s distance band."""
        index = bucket_index(self.owner_key, key)
        bucket = self.buckets.get(index)
        if bucket is None:
            bucket = self.buckets[index] = KBucket(self.k)
        return bucket

    def update(self, contact: Contact) -> Contact | None:
        """Fold an observed contact in; returns a probe candidate.

        Applies the LRU discipline.  When the target bucket is full the
        newcomer is dropped and the stale *head* is returned so the
        engine can PING it — a dead head is evicted on probe failure,
        making room for fresher peers on the next observation.
        """
        if contact.node_id == self.owner_id:
            return None
        bucket = self.bucket_for(contact.key)
        if bucket.touch(contact):
            return None
        return bucket.head

    def remove(self, node_id: int) -> bool:
        """Evict a contact wherever it lives (post-probe-failure)."""
        return any(
            bucket.remove(node_id) for bucket in self.buckets.values()
        )

    def contacts(self) -> list[Contact]:
        """Every contact, in deterministic (bucket, recency) order."""
        return [
            entry
            for index in sorted(self.buckets)
            for entry in self.buckets[index].entries
        ]

    def closest(self, target: int, count: int | None = None) -> list[Contact]:
        """The ``count`` known contacts nearest ``target`` (XOR order)."""
        if count is None:
            count = self.k
        ordered = sorted(self.contacts(), key=lambda c: c.key ^ target)
        return ordered[:count]

    def check_invariants(self) -> None:
        """Structural invariants (the property suite calls this).

        Raises:
            AssertionError: on any violation — over-full bucket,
                misfiled contact, duplicate node id, or self-entry.
        """
        seen: set[int] = set()
        for index, bucket in self.buckets.items():
            assert len(bucket.entries) <= self.k, (index, len(bucket))
            for entry in bucket.entries:
                assert entry.node_id != self.owner_id
                assert bucket_index(self.owner_key, entry.key) == index
                assert entry.node_id not in seen, entry.node_id
                seen.add(entry.node_id)


__all__ = [
    "Contact",
    "KBucket",
    "RoutingTable",
    "DEFAULT_K",
    "ID_BITS",
]
