"""In-cluster block placement policies.

Given a block and a cluster's member list, a placement policy decides which
``r`` members hold the full body (``r`` = replication factor).  The policy
is the heart of ICIStrategy's storage saving: a cluster of ``m`` nodes with
replication ``r`` stores each body ``r`` times instead of ``m`` times.

All policies are **deterministic functions of public data** (the block hash
or height plus the member list), so any node can compute who holds a block
without a directory service — the property the intra-cluster retrieval
protocol relies on.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.chain.block import BlockHeader
from repro.errors import PlacementError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.domains import FailureDomainMap


class PlacementPolicy(ABC):
    """Base class: choose a block's holders within a cluster."""

    @abstractmethod
    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """The ``replication`` member ids that must store the block body.

        Determinism contract: equal inputs yield equal outputs across
        processes and runs.

        Raises:
            PlacementError: when the cluster is too small or inputs are
                inconsistent.
        """

    @staticmethod
    def _check(members: Sequence[int], replication: int) -> list[int]:
        if replication < 1:
            raise PlacementError("replication factor must be >= 1")
        if not members:
            raise PlacementError("cannot place into an empty cluster")
        if replication > len(members):
            raise PlacementError(
                f"replication {replication} exceeds cluster size "
                f"{len(members)}"
            )
        # Canonical ordering: policies must not depend on caller ordering.
        return sorted(members)


class RendezvousPlacement(PlacementPolicy):
    """Highest-random-weight (rendezvous) hashing — the default policy.

    Each member gets a per-block score ``hash(block_hash || member)``; the
    top ``r`` scores hold the block.  Uniform in expectation, and —
    crucially for cheap bootstrapping — **membership-stable**: when a node
    joins a cluster of ``m``, only the expected ``r/(m+1)`` fraction of
    blocks change holders (exactly the blocks the joiner wins).
    """

    #: Soft cap on memoized placements; the cache resets when exceeded so
    #: long churn simulations cannot grow it without bound.
    _CACHE_LIMIT = 200_000

    def __init__(self) -> None:
        self._cache: dict[tuple, tuple[int, ...]] = {}

    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """See :meth:`PlacementPolicy.holders`."""
        # Every cluster member recomputes the same placement for the same
        # block (the protocol's directory-free property), so memoizing on
        # the full public input is a pure win: placements are deterministic
        # functions of (block hash, membership, replication).
        key = (header.block_hash, tuple(members), replication)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        canonical = self._check(members, replication)
        block_hash = header.block_hash
        scored = sorted(
            canonical,
            key=lambda member: (
                _member_block_digest(block_hash, member),
                member,
            ),
            reverse=True,
        )
        result = tuple(sorted(scored[:replication]))
        if len(self._cache) >= self._CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = result
        return result


class DomainSpreadPlacement(PlacementPolicy):
    """Rendezvous ranking post-filtered for failure-domain diversity.

    Walks the same highest-random-weight ranking as
    :class:`RendezvousPlacement` (identical per-member scores, so the
    enabled and disabled policies are directly comparable), but picks
    greedily for blast-radius spread: first members in **distinct
    zones**, then members in repeat zones but distinct ``(zone, rack)``
    labels, and only then best-effort fill in rank order.  With at
    least ``r`` live zones the ``r`` replicas can never share a zone —
    the property that keeps one
    :class:`~repro.sim.faults.DomainOutageEvent` from erasing a block.

    When a cluster spans fewer domains than copies the fallback is
    **audited, not silent**: every computed placement that could not
    reach full zone spread increments :attr:`domain_spread_deficit`
    (chaos/endurance outcomes surface it), so an operator sees exactly
    how many placements are running with a correlated blast radius.

    Memoization keys include the domain map's version counter: a
    re-assignment or membership sync invalidates stale spreads without
    flushing unrelated entries.
    """

    _CACHE_LIMIT = 200_000

    def __init__(self, domains: "FailureDomainMap") -> None:
        self._domains = domains
        self._cache: dict[tuple, tuple[int, ...]] = {}
        #: Placements (distinct block/membership/version inputs) that
        #: could not put every replica in its own zone.
        self.domain_spread_deficit = 0

    @property
    def domains(self) -> "FailureDomainMap":
        """The map this policy spreads against."""
        return self._domains

    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """See :meth:`PlacementPolicy.holders`."""
        key = (
            header.block_hash,
            tuple(members),
            replication,
            self._domains.version,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        canonical = self._check(members, replication)
        block_hash = header.block_hash
        ranked = sorted(
            canonical,
            key=lambda member: (
                _member_block_digest(block_hash, member),
                member,
            ),
            reverse=True,
        )
        chosen: list[int] = []
        used_zones: set[int] = set()
        used_labels: set = set()
        # Pass 1: the top-ranked member of each so-far-unused zone.
        for member in ranked:
            if len(chosen) == replication:
                break
            label = self._domains.domain_of(member)
            if label.zone not in used_zones:
                chosen.append(member)
                used_zones.add(label.zone)
                used_labels.add(label)
        # Pass 2: zones must repeat, but racks inside them need not.
        if len(chosen) < replication:
            for member in ranked:
                if len(chosen) == replication:
                    break
                if member in chosen:
                    continue
                label = self._domains.domain_of(member)
                if label not in used_labels:
                    chosen.append(member)
                    used_labels.add(label)
        # Pass 3: best-effort fill in rank order (clusters smaller than
        # their domain vocabulary can express).
        if len(chosen) < replication:
            for member in ranked:
                if len(chosen) == replication:
                    break
                if member not in chosen:
                    chosen.append(member)
        if len({self._domains.zone_of(m) for m in chosen}) < len(chosen):
            self.domain_spread_deficit += 1
        result = tuple(sorted(chosen))
        if len(self._cache) >= self._CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = result
        return result


class ModuloSlotPlacement(PlacementPolicy):
    """Map ``block_hash mod m`` to a starting member, take ``r`` in a row.

    Uniform in expectation over block hashes, but a membership change of
    any kind remaps nearly every block — the E9 ablation quantifies the
    migration cost this causes versus :class:`RendezvousPlacement`.
    """

    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """See :meth:`PlacementPolicy.holders`."""
        canonical = self._check(members, replication)
        start = int.from_bytes(header.block_hash[:8], "big") % len(canonical)
        return tuple(
            canonical[(start + offset) % len(canonical)]
            for offset in range(replication)
        )


class RoundRobinPlacement(PlacementPolicy):
    """Height-based rotation: block ``h`` goes to member ``h mod m``.

    Perfectly balanced when blocks arrive at every height, but placement
    shifts wholesale when membership changes (the ablation's point).
    """

    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """See :meth:`PlacementPolicy.holders`."""
        canonical = self._check(members, replication)
        start = header.height % len(canonical)
        return tuple(
            canonical[(start + offset) % len(canonical)]
            for offset in range(replication)
        )


class CapacityWeightedPlacement(PlacementPolicy):
    """Weight members by storage capacity via rendezvous (HRW) hashing.

    Each member gets a deterministic per-block score scaled by its
    capacity; the top ``r`` scores hold the block.  Members with twice the
    capacity receive roughly twice the blocks, and membership changes move
    only the affected blocks (consistent-hashing property).
    """

    def __init__(self, capacities: dict[int, float]) -> None:
        for node, capacity in capacities.items():
            if capacity <= 0:
                raise PlacementError(
                    f"capacity of node {node} must be positive"
                )
        self._capacities = dict(capacities)

    def capacity_of(self, node_id: int) -> float:
        """A member's configured capacity (default 1.0)."""
        return self._capacities.get(node_id, 1.0)

    def holders(
        self,
        header: BlockHeader,
        members: Sequence[int],
        replication: int,
    ) -> tuple[int, ...]:
        """See :meth:`PlacementPolicy.holders`."""
        canonical = self._check(members, replication)
        block_hash = header.block_hash
        scored: list[tuple[float, int]] = []
        for member in canonical:
            digest = int.from_bytes(
                _member_block_digest(block_hash, member), "big"
            )
            # Map digest to (0, 1), then weight per HRW-with-weights:
            # score = -capacity / ln(u); larger is better.
            uniform = (digest + 1) / float(2**64 + 1)
            score = -self.capacity_of(member) / math.log(uniform)
            scored.append((score, member))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return tuple(member for _, member in scored[:replication])


def _member_block_digest(block_hash: bytes, member: int) -> bytes:
    """8-byte mixing of a block hash with a member id (for HRW scoring)."""
    return _sha256(
        block_hash + member.to_bytes(8, "big")
    ).digest()[:8]


_sha256 = hashlib.sha256


def placement_load(
    headers: Sequence[BlockHeader],
    members: Sequence[int],
    replication: int,
    policy: PlacementPolicy,
) -> dict[int, int]:
    """Blocks-per-member histogram for a header sequence under a policy.

    Used by the E9 ablation to compare balance across policies.
    """
    load = {member: 0 for member in members}
    for header in headers:
        for holder in policy.holders(header, members, replication):
            load[holder] += 1
    return load


def load_imbalance(load: dict[int, int]) -> float:
    """Max/mean ratio of a load histogram (1.0 = perfectly balanced)."""
    if not load:
        raise PlacementError("empty load histogram")
    values = list(load.values())
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean
