"""Closed-form communication models for block dissemination.

Companion to :mod:`repro.storage.accounting`: analytic per-block traffic
for each strategy, used to cross-check the simulator in E4 and to reason
about the paper's communication claim at scales too large to simulate.

All formulas count *payload* bytes of one block's dissemination (header
flooding + body transport + verification votes), with the simulator's
envelope overhead per message.
"""

from __future__ import annotations

from repro.chain.block import HEADER_SIZE
from repro.consensus.quorum import byzantine_quorum
from repro.core.verification import CommitVote, PrepareAttestation
from repro.errors import ConfigurationError
from repro.net.gossip import (
    ANNOUNCE_PAYLOAD_BYTES,
    REQUEST_PAYLOAD_BYTES,
    flood_cost_bytes,
)
from repro.net.message import ENVELOPE_OVERHEAD


def _check(n_nodes: int, group_size: int) -> None:
    if n_nodes < 1:
        raise ConfigurationError("n_nodes must be positive")
    if not 1 <= group_size <= n_nodes:
        raise ConfigurationError("group size must be in [1, n_nodes]")


def header_flood_bytes(n_nodes: int, degree: int = 8) -> int:
    """Announce/request/deliver flooding of one 84-byte header."""
    return flood_cost_bytes(
        n_nodes, HEADER_SIZE, degree, envelope=ENVELOPE_OVERHEAD
    )


def full_replication_block_bytes(
    n_nodes: int, body_bytes: int, degree: int = 8
) -> int:
    """Flooding one full block to every node."""
    _check(n_nodes, 1)
    return flood_cost_bytes(
        n_nodes, HEADER_SIZE + body_bytes, degree, envelope=ENVELOPE_OVERHEAD
    )


def rapidchain_block_bytes(
    n_nodes: int, committee_size: int, body_bytes: int, degree: int = 8
) -> int:
    """Header floods everywhere; the body fans out inside one committee."""
    _check(n_nodes, committee_size)
    body_transfers = committee_size * (
        HEADER_SIZE + body_bytes + ENVELOPE_OVERHEAD
    )
    return header_flood_bytes(n_nodes, degree) + body_transfers


def ici_block_bytes(
    n_nodes: int,
    cluster_size: int,
    replication: int,
    body_bytes: int,
    degree: int = 8,
    aggregate_votes: bool = True,
) -> int:
    """ICIStrategy: header flood + per-cluster holder bodies + votes.

    * bodies: ``(N/m)·r`` transfers of the full block;
    * prepares: each of a cluster's ``r`` holders attests to ``m−1``
      members;
    * commits: ``m−1`` members → aggregator (or all-to-all without
      aggregation);
    * result: the aggregator's quorum certificate to ``m−1`` members.
    """
    _check(n_nodes, cluster_size)
    if not 1 <= replication <= cluster_size:
        raise ConfigurationError("replication must be in [1, cluster size]")
    n_clusters = n_nodes / cluster_size
    bodies = (
        n_clusters
        * replication
        * (HEADER_SIZE + body_bytes + ENVELOPE_OVERHEAD)
    )
    prepares = (
        n_clusters
        * replication
        * (cluster_size - 1)
        * (PrepareAttestation.WIRE_BYTES + ENVELOPE_OVERHEAD)
    )
    commit_wire = CommitVote.WIRE_BYTES + ENVELOPE_OVERHEAD
    if aggregate_votes:
        quorum = byzantine_quorum(cluster_size)
        certificate = 32 + 1 + quorum * CommitVote.WIRE_BYTES
        commits = n_clusters * (cluster_size - 1) * commit_wire
        results = (
            n_clusters
            * (cluster_size - 1)
            * (certificate + ENVELOPE_OVERHEAD)
        )
        votes = commits + results
    else:
        votes = (
            n_clusters
            * cluster_size
            * (cluster_size - 1)
            * commit_wire
        )
    return round(header_flood_bytes(n_nodes, degree) + bodies + prepares + votes)


def ici_advantage_factor(
    n_nodes: int,
    cluster_size: int,
    replication: int,
    body_bytes: int,
    degree: int = 8,
) -> float:
    """Full-replication dissemination bytes over ICI's, per block.

    Grows toward ``m/r`` as bodies dominate (large blocks): that is the
    paper's communication claim in its asymptotic form.
    """
    return full_replication_block_bytes(
        n_nodes, body_bytes, degree
    ) / ici_block_bytes(n_nodes, cluster_size, replication, body_bytes, degree)


__all__ = [
    "ANNOUNCE_PAYLOAD_BYTES",
    "REQUEST_PAYLOAD_BYTES",
    "header_flood_bytes",
    "full_replication_block_bytes",
    "rapidchain_block_bytes",
    "ici_block_bytes",
    "ici_advantage_factor",
]
