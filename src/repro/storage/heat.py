"""Heat-aware adaptive replication: access scoring and tier planning.

The paper fixes the in-cluster replication factor ``r`` per deployment,
which leaves cold history over-replicated and hot blocks bottlenecked on
``r`` serving replicas.  This module closes the loop the ROADMAP names:
observed access heat drives a *per-block* replication target, and the
anti-entropy engine (:mod:`repro.protocols.repair`) converges actual
placements toward it — it already adds replicas; with a planner attached
it also sheds them.

Three pieces:

* :class:`HeatTracker` — a router observer (the same hook surface the
  metrics recorder and tracing observer use).  Every delivered
  ``BLOCK_REQUEST`` (a query reaching a holder) and ``REPAIR_REQUEST``
  (a re-replication pull) counts as one access to that block.  Accesses
  accumulate into an exponentially decayed rate on **virtual time**, so
  two same-seed runs score identically on any machine.
* :class:`HeatConfig` — the scoring weights, decay half-life, and tier
  quantiles, all validated.
* :class:`ReplicationPlanner` — ranks every active block by a weighted
  (read rate, recency, size) score, classifies them by *rank quantile*
  (top slice hot, bottom slice cold, rest warm — rank-based so a flat
  score distribution cannot flip the whole chain into one tier), and
  maps tiers to replication targets: hot ``r + hot_bonus``, warm ``r``,
  cold ``max(r - cold_margin, 1)``.

The subsystem is **opt-in and dormant by default**: nothing here is
constructed unless :meth:`~repro.core.icistrategy.ICIDeployment.
enable_adaptive_replication` runs, so fixed-``r`` deployments keep
byte-identical simulated metrics (the bench baseline gate enforces it).

Shed-safety invariants (enforced by the repair engine, audited here):

* a shed never drops a cluster below ``min(target, live)`` live copies,
  and never below **one** — the last in-cluster copy is also the last
  cross-cluster copy from that cluster's point of view;
* blocks younger than :attr:`HeatConfig.warmup_seconds` are never
  classified cold (no heat evidence yet), and nothing is classified
  until the tracker has seen :attr:`HeatConfig.min_observations`
  accesses overall;
* genesis is exempt (regenerable, but it anchors every audit).

Every shed is followed by a recount of actual live holders; a recount
below the floor increments :attr:`AdaptiveStats.floor_violations` —
the endurance audit pins that counter at zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.crypto.hashing import Hash32
from repro.errors import ConfigurationError
from repro.obs.tracer import proto_track

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.block import BlockHeader
    from repro.net.message import Message
    from repro.net.simclock import SimClock
    from repro.node.base import BaseNode
    from repro.obs.tracer import Tracer

#: Tier labels, hottest first (also the rank order the planner assigns).
HOT = "hot"
WARM = "warm"
COLD = "cold"
TIERS = (HOT, WARM, COLD)


@dataclass(frozen=True)
class HeatConfig:
    """Scoring and tiering knobs for adaptive replication.

    Attributes:
        half_life: virtual seconds for an access's weight to halve.
        read_weight: weight of the decayed access rate in the score.
        recency_weight: weight of the time-since-last-access term.
        size_weight: weight of the (small-is-cheap) size term.
        size_scale: body bytes at which the size term reaches 0.5.
        repair_weight: heat contributed by one ``REPAIR_REQUEST`` pull
            relative to a query hit (re-requests are demand too, but
            second-hand).
        hot_quantile: blocks ranked above this score quantile are hot
            (0.9 → top 10%).
        cold_quantile: blocks ranked below this quantile are cold
            (0.7 → bottom 70%; archival chains are mostly cold).
        hot_bonus: extra replicas per cluster for hot blocks.
        cold_margin: replicas removed for cold blocks (floor-clamped
            to 1).
        warmup_seconds: a block stays at least warm this long after the
            planner first sees it.
        min_observations: no block is classified away from warm until
            the tracker has witnessed this many accesses in total.
    """

    half_life: float = 30.0
    read_weight: float = 1.0
    recency_weight: float = 0.5
    size_weight: float = 0.25
    size_scale: float = 4096.0
    repair_weight: float = 0.5
    hot_quantile: float = 0.9
    cold_quantile: float = 0.7
    hot_bonus: int = 2
    cold_margin: int = 1
    warmup_seconds: float = 10.0
    min_observations: int = 8

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ConfigurationError("half_life must be > 0")
        for name in ("read_weight", "recency_weight", "size_weight"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.size_scale <= 0:
            raise ConfigurationError("size_scale must be > 0")
        if self.repair_weight < 0:
            raise ConfigurationError("repair_weight must be >= 0")
        if not 0.0 < self.hot_quantile <= 1.0:
            raise ConfigurationError("hot_quantile must be in (0, 1]")
        if not 0.0 <= self.cold_quantile < 1.0:
            raise ConfigurationError("cold_quantile must be in [0, 1)")
        if self.cold_quantile >= self.hot_quantile:
            raise ConfigurationError(
                "cold_quantile must be below hot_quantile"
            )
        if self.hot_bonus < 0 or self.cold_margin < 0:
            raise ConfigurationError("hot_bonus/cold_margin must be >= 0")
        if self.warmup_seconds < 0:
            raise ConfigurationError("warmup_seconds must be >= 0")
        if self.min_observations < 0:
            raise ConfigurationError("min_observations must be >= 0")


@dataclass
class AdaptiveStats:
    """What the planner classified and the repair engine shed.

    Deterministic counters only — this dict joins the endurance
    signature when (and only when) the adaptive path is enabled.
    """

    refreshes: int = 0
    reclassifications: int = 0
    hot_blocks: int = 0
    warm_blocks: int = 0
    cold_blocks: int = 0
    replicas_shed: int = 0
    bytes_shed: int = 0
    sheds_blocked: int = 0
    #: Post-shed recounts that found fewer live copies than the floor.
    #: The shed guard makes this structurally zero; audits pin it.
    floor_violations: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and determinism signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _BlockHeat:
    """Decayed access accumulator for one block."""

    __slots__ = ("rate", "last_access", "accesses")

    def __init__(self) -> None:
        self.rate = 0.0
        self.last_access = 0.0
        self.accesses = 0


class HeatTracker:
    """Router observer accumulating per-block access heat.

    Installed with ``router.add_observer`` next to the metrics recorder;
    it draws no randomness, sends nothing, and schedules nothing, so
    attaching it cannot perturb the simulation schedule.
    """

    def __init__(
        self, clock: "SimClock", config: HeatConfig | None = None
    ) -> None:
        self.config = config or HeatConfig()
        self._clock = clock
        self._heat: dict[Hash32, _BlockHeat] = {}
        self.total_accesses = 0

    # -------------------------------------------------------- router hooks
    def on_send(self, message: "Message") -> None:
        """Unused (observer protocol)."""

    def on_deliver(self, node: "BaseNode", message: "Message") -> None:
        """Count query hits and repair pulls as block accesses."""
        from repro.net.message import MessageKind

        kind = message.kind
        if kind is MessageKind.BLOCK_REQUEST:
            # payload = (request_id, block_hash)
            self.note_access(message.payload[1])
        elif kind is MessageKind.REPAIR_REQUEST:
            self.note_access(
                message.payload[1], weight=self.config.repair_weight
            )

    def on_finalize(self, event) -> None:
        """Unused (observer protocol)."""

    # ------------------------------------------------------------- scoring
    def note_access(self, block_hash: Hash32, weight: float = 1.0) -> None:
        """Fold one access at the current virtual time into the rate."""
        now = self._clock.now
        heat = self._heat.get(block_hash)
        if heat is None:
            heat = self._heat[block_hash] = _BlockHeat()
        heat.rate = heat.rate * self._decay(now - heat.last_access) + weight
        heat.last_access = now
        heat.accesses += 1
        self.total_accesses += 1

    def _decay(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 1.0
        return math.exp(-elapsed * math.log(2.0) / self.config.half_life)

    def rate(self, block_hash: Hash32, now: float | None = None) -> float:
        """The decayed access rate of one block at ``now``."""
        heat = self._heat.get(block_hash)
        if heat is None:
            return 0.0
        if now is None:
            now = self._clock.now
        return heat.rate * self._decay(now - heat.last_access)

    def accesses(self, block_hash: Hash32) -> int:
        """Raw (undecayed) access count of one block."""
        heat = self._heat.get(block_hash)
        return heat.accesses if heat is not None else 0

    def score(
        self, block_hash: Hash32, size_bytes: int, now: float | None = None
    ) -> float:
        """Weighted heat score: read rate + recency + small-size bonus."""
        config = self.config
        if now is None:
            now = self._clock.now
        heat = self._heat.get(block_hash)
        if heat is None:
            rate = recency = 0.0
        else:
            decay = self._decay(now - heat.last_access)
            rate = heat.rate * decay
            recency = decay
        size_term = config.size_scale / (config.size_scale + size_bytes)
        return (
            config.read_weight * rate
            + config.recency_weight * recency
            + config.size_weight * size_term
        )


class ReplicationPlanner:
    """Tier classification and per-block replication targets.

    Refreshed at the start of every anti-entropy sweep; between
    refreshes :meth:`target_for` and :meth:`read_plan` answer from the
    last classification, so the repair engine and the query engine act
    on one consistent view per sweep.
    """

    def __init__(
        self,
        deployment,
        tracker: HeatTracker,
        config: HeatConfig | None = None,
    ) -> None:
        self.deployment = deployment
        self.tracker = tracker
        self.config = config or tracker.config
        self.stats = AdaptiveStats()
        self.tiers: dict[Hash32, str] = {}
        self._first_seen: dict[Hash32, float] = {}
        self._track = proto_track("heat")
        self._tracer: "Tracer | None" = None

    # ------------------------------------------------------------- targets
    def target_for(self, block_hash: Hash32) -> int:
        """Replication target for one block under its current tier."""
        base = self.deployment.config.replication
        tier = self.tiers.get(block_hash, WARM)
        if tier == HOT:
            return base + self.config.hot_bonus
        if tier == COLD:
            return max(base - self.config.cold_margin, 1)
        return base

    def tier_of(self, block_hash: Hash32) -> str:
        """Current tier of one block (unclassified blocks are warm)."""
        return self.tiers.get(block_hash, WARM)

    def read_plan(
        self, header: "BlockHeader", members: Iterable[int]
    ) -> tuple[int, ...]:
        """Query/keep plan: the placement's top-``target`` members.

        The same deterministic placement function produces the repair
        engine's keep-set and fill-set, so the three views (who serves
        reads, who keeps a copy, who is owed one) always agree.
        """
        members = tuple(members)
        target = min(self.target_for(header.block_hash), len(members))
        return self.deployment.placement.holders(
            header, members, max(target, 1)
        )

    # ------------------------------------------------------ classification
    def refresh(self, now: float | None = None) -> int:
        """Re-rank every active block; returns reclassification count.

        Rank-quantile tiers: blocks are ordered by score (hash as the
        deterministic tie-break), the top ``1 - hot_quantile`` slice is
        hot, the bottom ``cold_quantile`` slice is cold.  Guards: hot
        needs a nonzero observed rate, cold needs the block to be past
        warm-up and the tracker past ``min_observations``.
        """
        deployment = self.deployment
        if now is None:
            now = deployment.network.now
        self.stats.refreshes += 1
        store = deployment.ledger.store
        scored: list[tuple[float, str, Hash32]] = []
        sizes: dict[Hash32, int] = {}
        for header in store.iter_active_headers():
            if header.is_genesis:
                continue
            block_hash = header.block_hash
            self._first_seen.setdefault(block_hash, now)
            size = store.body(block_hash).body_size_bytes
            sizes[block_hash] = size
            scored.append(
                (
                    self.tracker.score(block_hash, size, now),
                    block_hash.hex(),
                    block_hash,
                )
            )
        scored.sort(key=lambda entry: (-entry[0], entry[1]))
        n = len(scored)
        hot_count = int(n * (1.0 - self.config.hot_quantile))
        cold_count = int(n * self.config.cold_quantile)
        observed = self.tracker.total_accesses >= self.config.min_observations
        changes = 0
        counts = {HOT: 0, WARM: 0, COLD: 0}
        for index, (score, _, block_hash) in enumerate(scored):
            if not observed:
                tier = WARM
            elif (
                index < hot_count
                and self.tracker.rate(block_hash, now) > 0.0
            ):
                tier = HOT
            elif (
                index >= n - cold_count
                and now - self._first_seen[block_hash]
                >= self.config.warmup_seconds
            ):
                tier = COLD
            else:
                tier = WARM
            counts[tier] += 1
            previous = self.tiers.get(block_hash, WARM)
            if tier != previous:
                changes += 1
                self.tiers[block_hash] = tier
                self._trace_reclassified(
                    block_hash, previous, tier, score, now
                )
        self.stats.reclassifications += changes
        self.stats.hot_blocks = counts[HOT]
        self.stats.warm_blocks = counts[WARM]
        self.stats.cold_blocks = counts[COLD]
        if self._tracer is not None:
            from repro.obs.hooks import record_tier_storage

            record_tier_storage(self._tracer, self.deployment, self, now)
        return changes

    def tier_counts(self) -> dict[str, int]:
        """Blocks per tier as of the last refresh."""
        return {
            HOT: self.stats.hot_blocks,
            WARM: self.stats.warm_blocks,
            COLD: self.stats.cold_blocks,
        }

    def tier_body_bytes(self) -> dict[str, int]:
        """Actual held body bytes per tier, network-wide (oracle count)."""
        deployment = self.deployment
        totals = {HOT: 0, WARM: 0, COLD: 0}
        store = deployment.ledger.store
        nodes = deployment.nodes
        for header in store.iter_active_headers():
            if header.is_genesis:
                continue
            block_hash = header.block_hash
            held = sum(
                1
                for node in nodes.values()
                if node.store.has_body(block_hash)
            )
            size = store.body(block_hash).body_size_bytes
            totals[self.tier_of(block_hash)] += held * size
        return totals

    # ----------------------------------------------------- shed accounting
    def note_shed(self, block_hash: Hash32, freed_bytes: int) -> None:
        """The repair engine dropped one surplus replica."""
        self.stats.replicas_shed += 1
        self.stats.bytes_shed += freed_bytes

    def note_shed_blocked(self) -> None:
        """A shed was refused by the floor / last-copy guard."""
        self.stats.sheds_blocked += 1

    def note_floor_violation(self) -> None:
        """A post-shed recount found the floor broken (must stay 0)."""
        self.stats.floor_violations += 1

    def as_dict(self) -> Mapping[str, int]:
        """Stats view for signatures and reports."""
        return self.stats.as_dict()

    # -------------------------------------------------------------- tracing
    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Mirror reclassifications and tier bytes (``None`` detaches)."""
        self._tracer = tracer

    def _trace_reclassified(
        self,
        block_hash: Hash32,
        previous: str,
        tier: str,
        score: float,
        now: float,
    ) -> None:
        if self._tracer is None:
            return
        self._tracer.instant(
            "heat_reclassified",
            self._track,
            ts=now,
            category="heat",
            args={
                "block": block_hash.hex()[:12],
                "from": previous,
                "to": tier,
                "score": round(score, 6),
            },
        )
