"""Storage accounting: per-node and network-wide byte reports.

These reports are the primary output of the paper's evaluation — E1, E2,
and E3 all reduce to "how many bytes does each node / the whole network
store under each strategy".  The module also provides the closed-form
models from DESIGN.md so measured simulator numbers can be cross-checked.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Mapping

from repro.chain.chainstore import ChainStore


@dataclass(frozen=True)
class NodeStorageReport:
    """Bytes one node dedicates to the ledger."""

    node_id: int
    header_bytes: int
    body_bytes: int
    header_count: int
    body_count: int

    @property
    def total_bytes(self) -> int:
        """Total ledger bytes (headers + held bodies)."""
        return self.header_bytes + self.body_bytes


@dataclass(frozen=True)
class NetworkStorageReport:
    """Aggregate storage across a whole deployment."""

    per_node: tuple[NodeStorageReport, ...]

    @property
    def node_count(self) -> int:
        """Number of nodes in the report."""
        return len(self.per_node)

    @property
    def total_bytes(self) -> int:
        """Sum of every node's ledger bytes — the network's storage bill."""
        return sum(report.total_bytes for report in self.per_node)

    @property
    def max_node_bytes(self) -> int:
        """Largest single-node footprint."""
        return max(
            (report.total_bytes for report in self.per_node), default=0
        )

    @property
    def mean_node_bytes(self) -> float:
        """Average per-node footprint."""
        if not self.per_node:
            return 0.0
        return self.total_bytes / len(self.per_node)

    @property
    def stdev_node_bytes(self) -> float:
        """Population stdev of per-node footprints."""
        if len(self.per_node) < 2:
            return 0.0
        return statistics.pstdev(
            report.total_bytes for report in self.per_node
        )

    def ratio_to(self, other: "NetworkStorageReport") -> float:
        """This deployment's total storage as a fraction of ``other``'s."""
        if other.total_bytes == 0:
            return float("inf") if self.total_bytes else 1.0
        return self.total_bytes / other.total_bytes


def report_node(node_id: int, store: ChainStore) -> NodeStorageReport:
    """Snapshot one chain store's byte usage."""
    return NodeStorageReport(
        node_id=node_id,
        header_bytes=store.header_bytes,
        body_bytes=store.body_bytes,
        header_count=store.header_count,
        body_count=store.body_count,
    )


def report_network(
    stores: Mapping[int, ChainStore]
) -> NetworkStorageReport:
    """Snapshot every node's chain store."""
    return NetworkStorageReport(
        per_node=tuple(
            report_node(node_id, store)
            for node_id, store in sorted(stores.items())
        )
    )


# ------------------------------------------------------------ closed forms
def full_replication_total(n_nodes: int, ledger_bytes: int) -> int:
    """Network storage under full replication: every node stores D."""
    return n_nodes * ledger_bytes


def rapidchain_total(
    n_nodes: int, committee_size: int, ledger_bytes: int
) -> float:
    """Network storage under RapidChain committee sharding.

    ``k = N/g`` committees each store shard ``D/k`` on every member →
    network total ``g·D`` regardless of N.
    """
    if committee_size < 1 or committee_size > n_nodes:
        raise ValueError("committee size must be in [1, n_nodes]")
    return committee_size * ledger_bytes


def ici_total(
    n_nodes: int,
    cluster_size: int,
    replication: int,
    ledger_bytes: int,
) -> float:
    """Network storage under ICIStrategy.

    ``N/g`` clusters each store all of D with in-cluster replication r →
    network total ``(N/g)·r·D``.
    """
    if cluster_size < 1 or cluster_size > n_nodes:
        raise ValueError("cluster size must be in [1, n_nodes]")
    if replication < 1 or replication > cluster_size:
        raise ValueError("replication must be in [1, cluster_size]")
    n_clusters = n_nodes / cluster_size
    return n_clusters * replication * ledger_bytes


def ici_per_node(
    cluster_size: int, replication: int, ledger_bytes: int
) -> float:
    """Expected per-node body bytes under ICIStrategy: ``D·r/g``."""
    return ledger_bytes * replication / cluster_size


def rapidchain_per_node(
    n_nodes: int, committee_size: int, ledger_bytes: int
) -> float:
    """Per-node bytes under RapidChain: shard size ``D·g/N``."""
    return ledger_bytes * committee_size / n_nodes
