"""Erasure codecs: XOR parity groups and a GF(256) Reed–Solomon code.

The paper stores ``r`` full replicas per block inside a cluster.  Two
coding extensions trade replicas for parity:

* **XOR parity groups** (single-loss; :func:`encode_group` /
  :func:`recover_chunk`): group ``k`` block bodies, store one XOR parity
  chunk on an extra member, and any single lost body in the group is
  reconstructable from the ``k-1`` survivors plus parity.  Storage
  overhead drops from ``r·D`` to ``(1 + 1/k)·D`` per cluster at the cost
  of read amplification during repair.
* **Reed–Solomon k-of-n** (:func:`rs_encode` / :func:`rs_decode`): split
  one body into ``k`` data shards, extend them to ``n`` coded chunks
  over GF(256), and *any* ``k`` of the ``n`` survive an arbitrary
  ``n - k`` erasures — the archival tier's codec
  (:mod:`repro.storage.coded`).  Pure python: field arithmetic runs on
  precomputed log/exp tables, and scaling a whole chunk by a field
  coefficient is one ``bytes.translate`` over a per-coefficient
  256-entry table, so the per-byte loop never touches the interpreter.

Chunks are padded to a common length; original lengths are kept
alongside so decoding strips padding exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.crypto.hashing import xor_bytes
from repro.errors import StorageError


@dataclass(frozen=True)
class ParityGroup:
    """One coding group: ``k`` data chunks protected by a parity chunk.

    Attributes:
        member_ids: identifiers (e.g. block hashes) of the data chunks, in
            group order.
        lengths: original byte length of each data chunk.
        parity: XOR of the padded data chunks.
    """

    member_ids: tuple[bytes, ...]
    lengths: tuple[int, ...]
    parity: bytes

    @property
    def group_size(self) -> int:
        """Number of data chunks in the group."""
        return len(self.member_ids)

    @property
    def padded_length(self) -> int:
        """Common padded chunk length in bytes."""
        return len(self.parity)

    @property
    def parity_overhead_bytes(self) -> int:
        """Extra bytes stored versus storing nothing (the parity chunk)."""
        return len(self.parity)

    def index_of(self, member_id: bytes) -> int:
        """Position of a data chunk in the group.

        Raises:
            StorageError: when the id is not in this group.
        """
        try:
            return self.member_ids.index(member_id)
        except ValueError:
            raise StorageError(
                f"chunk {member_id.hex()[:12]}… not in parity group"
            ) from None


def _pad(chunk: bytes, length: int) -> bytes:
    if len(chunk) > length:
        raise StorageError("chunk longer than pad target")
    return chunk + b"\x00" * (length - len(chunk))


def encode_group(
    chunks: list[tuple[bytes, bytes]],
) -> ParityGroup:
    """Build a parity group from ``(id, body)`` pairs.

    Raises:
        StorageError: for an empty group or duplicate ids.
    """
    if not chunks:
        raise StorageError("parity group needs at least one chunk")
    ids = [chunk_id for chunk_id, _ in chunks]
    if len(set(ids)) != len(ids):
        raise StorageError("duplicate chunk ids in parity group")
    max_length = max(len(body) for _, body in chunks)
    padded = [_pad(body, max_length) for _, body in chunks]
    return ParityGroup(
        member_ids=tuple(ids),
        lengths=tuple(len(body) for _, body in chunks),
        parity=xor_bytes(padded),
    )


def recover_chunk(
    group: ParityGroup,
    lost_id: bytes,
    surviving: dict[bytes, bytes],
) -> bytes:
    """Reconstruct a single lost data chunk.

    Args:
        group: the parity group the chunk belongs to.
        lost_id: id of the missing chunk.
        surviving: bodies of **all other** group members, keyed by id.

    Returns:
        The original (un-padded) body of the lost chunk.

    Raises:
        StorageError: when more than one chunk is missing or a surviving
            chunk has the wrong length.
    """
    lost_index = group.index_of(lost_id)
    pieces = [group.parity]
    for index, member_id in enumerate(group.member_ids):
        if member_id == lost_id:
            continue
        body = surviving.get(member_id)
        if body is None:
            raise StorageError(
                "XOR parity can recover exactly one lost chunk; "
                f"chunk {member_id.hex()[:12]}… is also missing"
            )
        if len(body) != group.lengths[index]:
            raise StorageError(
                f"surviving chunk {member_id.hex()[:12]}… has wrong length"
            )
        pieces.append(_pad(body, group.padded_length))
    recovered = xor_bytes(pieces)
    return recovered[: group.lengths[lost_index]]


def parity_storage_total(
    n_nodes: int,
    cluster_size: int,
    group_size: int,
    ledger_bytes: int,
) -> float:
    """Closed-form network storage with single parity per group.

    Each cluster stores ``D`` of data once plus ``D/k`` parity:
    total ``(N/g)·D·(1 + 1/k)``.
    """
    if group_size < 1:
        raise StorageError("group size must be positive")
    if cluster_size < 1 or cluster_size > n_nodes:
        raise StorageError("cluster size must be in [1, n_nodes]")
    n_clusters = n_nodes / cluster_size
    return n_clusters * ledger_bytes * (1.0 + 1.0 / group_size)


# ----------------------------------------------- GF(256) Reed–Solomon code
# Field tables for GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
# (0x11d, the AES/QR convention).  _GF_EXP is doubled so products of two
# logs never need a modulo on the hot path.
_GF_EXP = [0] * 512
_GF_LOG = [0] * 256
_value = 1
for _power in range(255):
    _GF_EXP[_power] = _value
    _GF_LOG[_value] = _power
    _value <<= 1
    if _value & 0x100:
        _value ^= 0x11D
for _power in range(255, 512):
    _GF_EXP[_power] = _GF_EXP[_power - 255]
del _value, _power

#: coefficient -> 256-entry ``bytes.translate`` table mapping every byte
#: value to its GF(256) product with the coefficient.  Built lazily; a
#: handful of coefficients (one per Lagrange basis term) covers a whole
#: codec configuration, so chunk scaling is one C-level translate call.
_SCALE_TABLES: dict[int, bytes] = {}

#: (known points, evaluation point) -> Lagrange basis coefficients.
_LAGRANGE_CACHE: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def _gf_div(a: int, b: int) -> int:
    if b == 0:
        raise StorageError("GF(256) division by zero")
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] - _GF_LOG[b]) % 255]


def _scale(chunk: bytes, coefficient: int) -> bytes:
    """Multiply every byte of ``chunk`` by a GF(256) coefficient."""
    if coefficient == 0:
        return bytes(len(chunk))
    if coefficient == 1:
        return chunk
    table = _SCALE_TABLES.get(coefficient)
    if table is None:
        log_c = _GF_LOG[coefficient]
        table = bytes(
            _GF_EXP[log_c + _GF_LOG[byte]] if byte else 0
            for byte in range(256)
        )
        _SCALE_TABLES[coefficient] = table
    return chunk.translate(table)


def _lagrange_coefficients(
    known: tuple[int, ...], point: int
) -> tuple[int, ...]:
    """Basis weights reconstructing ``f(point)`` from ``f`` at ``known``.

    In GF(256) addition is XOR, so ``ℓ_i(x) = Π_{j≠i} (x⊕x_j)/(x_i⊕x_j)``.
    Any value of a degree-``< len(known)`` polynomial is then the weighted
    XOR of its known values — the whole codec reduces to scale-and-XOR
    over chunks.
    """
    cached = _LAGRANGE_CACHE.get((known, point))
    if cached is not None:
        return cached
    coefficients = []
    for i, x_i in enumerate(known):
        numerator = denominator = 1
        for j, x_j in enumerate(known):
            if j == i:
                continue
            numerator = _gf_mul(numerator, point ^ x_j)
            denominator = _gf_mul(denominator, x_i ^ x_j)
        coefficients.append(_gf_div(numerator, denominator))
    result = tuple(coefficients)
    _LAGRANGE_CACHE[(known, point)] = result
    return result


def _combine(
    chunks: list[bytes], coefficients: tuple[int, ...], length: int
) -> bytes:
    """Weighted GF(256) sum of equal-length chunks."""
    pieces = [
        _scale(chunk, coefficient)
        for chunk, coefficient in zip(chunks, coefficients)
        if coefficient != 0
    ]
    if not pieces:
        return bytes(length)
    if len(pieces) == 1:
        return pieces[0]
    return xor_bytes(pieces)


def _check_code_shape(data_chunks: int, total_chunks: int) -> None:
    if data_chunks < 1:
        raise StorageError("Reed–Solomon needs at least one data chunk")
    if total_chunks < data_chunks:
        raise StorageError("total chunks must be >= data chunks")
    if total_chunks > 256:
        raise StorageError(
            "GF(256) Reed–Solomon supports at most 256 chunks"
        )


def rs_shard_length(data_length: int, data_chunks: int) -> int:
    """Per-chunk byte length for a body of ``data_length`` bytes."""
    if data_length < 0:
        raise StorageError("data length must be >= 0")
    if data_chunks < 1:
        raise StorageError("Reed–Solomon needs at least one data chunk")
    return -(-data_length // data_chunks)  # ceil division


def rs_encode(
    data: bytes, data_chunks: int, total_chunks: int
) -> list[bytes]:
    """Systematic Reed–Solomon encode: ``k`` data + ``n-k`` parity chunks.

    The body is split into ``data_chunks`` equal shards (last one
    zero-padded); shard ``i`` is read as the value of a degree-``< k``
    polynomial at field point ``i``, and parity chunk ``k+j`` is that
    polynomial evaluated at point ``k+j``.  Chunks 0..k-1 are therefore
    the data verbatim, and *any* ``k`` of the ``n`` chunks reconstruct
    the body exactly (:func:`rs_decode`).

    Raises:
        StorageError: for an invalid ``(k, n)`` shape.
    """
    _check_code_shape(data_chunks, total_chunks)
    shard_len = rs_shard_length(len(data), data_chunks)
    shards = [
        _pad(data[i * shard_len : (i + 1) * shard_len], shard_len)
        for i in range(data_chunks)
    ]
    if total_chunks == data_chunks:
        return shards
    known = tuple(range(data_chunks))
    parity = [
        _combine(
            shards,
            _lagrange_coefficients(known, point),
            shard_len,
        )
        for point in range(data_chunks, total_chunks)
    ]
    return shards + parity


def rs_decode(
    chunks: Mapping[int, bytes],
    data_chunks: int,
    total_chunks: int,
    data_length: int,
) -> bytes:
    """Reconstruct the original body from any ``k`` surviving chunks.

    Args:
        chunks: surviving chunk payloads keyed by chunk index.
        data_chunks: ``k`` of the code.
        total_chunks: ``n`` of the code.
        data_length: original body length (strips shard padding exactly).

    Raises:
        StorageError: with fewer than ``k`` survivors, an out-of-range
            index, or a survivor of the wrong length.
    """
    _check_code_shape(data_chunks, total_chunks)
    shard_len = rs_shard_length(data_length, data_chunks)
    for index, chunk in chunks.items():
        if not 0 <= index < total_chunks:
            raise StorageError(f"chunk index {index} outside the code")
        if len(chunk) != shard_len:
            raise StorageError(
                f"chunk {index} has length {len(chunk)}, "
                f"expected {shard_len}"
            )
    if len(chunks) < data_chunks:
        raise StorageError(
            f"Reed–Solomon needs {data_chunks} of {total_chunks} chunks "
            f"to reconstruct; only {len(chunks)} survive"
        )
    known = tuple(sorted(chunks))[:data_chunks]
    basis = [chunks[index] for index in known]
    shards = []
    for point in range(data_chunks):
        present = chunks.get(point)
        if present is not None:
            shards.append(present)
            continue
        shards.append(
            _combine(
                basis,
                _lagrange_coefficients(known, point),
                shard_len,
            )
        )
    return b"".join(shards)[:data_length]
