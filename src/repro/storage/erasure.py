"""XOR parity groups — the erasure-coding extension.

The paper stores ``r`` full replicas per block inside a cluster.  A natural
extension (future-work territory; ablated in the extended benches) trades a
replica for parity: group ``k`` block bodies, store one XOR parity chunk on
an extra member, and any single lost body in the group is reconstructable
from the ``k-1`` survivors plus parity.  Storage overhead drops from
``r·D`` to ``(1 + 1/k)·D`` per cluster at the cost of read amplification
during repair.

Chunks are padded to the group's maximum body length; the original length
is kept alongside so decoding strips padding exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import xor_bytes
from repro.errors import StorageError


@dataclass(frozen=True)
class ParityGroup:
    """One coding group: ``k`` data chunks protected by a parity chunk.

    Attributes:
        member_ids: identifiers (e.g. block hashes) of the data chunks, in
            group order.
        lengths: original byte length of each data chunk.
        parity: XOR of the padded data chunks.
    """

    member_ids: tuple[bytes, ...]
    lengths: tuple[int, ...]
    parity: bytes

    @property
    def group_size(self) -> int:
        """Number of data chunks in the group."""
        return len(self.member_ids)

    @property
    def padded_length(self) -> int:
        """Common padded chunk length in bytes."""
        return len(self.parity)

    @property
    def parity_overhead_bytes(self) -> int:
        """Extra bytes stored versus storing nothing (the parity chunk)."""
        return len(self.parity)

    def index_of(self, member_id: bytes) -> int:
        """Position of a data chunk in the group.

        Raises:
            StorageError: when the id is not in this group.
        """
        try:
            return self.member_ids.index(member_id)
        except ValueError:
            raise StorageError(
                f"chunk {member_id.hex()[:12]}… not in parity group"
            ) from None


def _pad(chunk: bytes, length: int) -> bytes:
    if len(chunk) > length:
        raise StorageError("chunk longer than pad target")
    return chunk + b"\x00" * (length - len(chunk))


def encode_group(
    chunks: list[tuple[bytes, bytes]],
) -> ParityGroup:
    """Build a parity group from ``(id, body)`` pairs.

    Raises:
        StorageError: for an empty group or duplicate ids.
    """
    if not chunks:
        raise StorageError("parity group needs at least one chunk")
    ids = [chunk_id for chunk_id, _ in chunks]
    if len(set(ids)) != len(ids):
        raise StorageError("duplicate chunk ids in parity group")
    max_length = max(len(body) for _, body in chunks)
    padded = [_pad(body, max_length) for _, body in chunks]
    return ParityGroup(
        member_ids=tuple(ids),
        lengths=tuple(len(body) for _, body in chunks),
        parity=xor_bytes(padded),
    )


def recover_chunk(
    group: ParityGroup,
    lost_id: bytes,
    surviving: dict[bytes, bytes],
) -> bytes:
    """Reconstruct a single lost data chunk.

    Args:
        group: the parity group the chunk belongs to.
        lost_id: id of the missing chunk.
        surviving: bodies of **all other** group members, keyed by id.

    Returns:
        The original (un-padded) body of the lost chunk.

    Raises:
        StorageError: when more than one chunk is missing or a surviving
            chunk has the wrong length.
    """
    lost_index = group.index_of(lost_id)
    pieces = [group.parity]
    for index, member_id in enumerate(group.member_ids):
        if member_id == lost_id:
            continue
        body = surviving.get(member_id)
        if body is None:
            raise StorageError(
                "XOR parity can recover exactly one lost chunk; "
                f"chunk {member_id.hex()[:12]}… is also missing"
            )
        if len(body) != group.lengths[index]:
            raise StorageError(
                f"surviving chunk {member_id.hex()[:12]}… has wrong length"
            )
        pieces.append(_pad(body, group.padded_length))
    recovered = xor_bytes(pieces)
    return recovered[: group.lengths[lost_index]]


def parity_storage_total(
    n_nodes: int,
    cluster_size: int,
    group_size: int,
    ledger_bytes: int,
) -> float:
    """Closed-form network storage with single parity per group.

    Each cluster stores ``D`` of data once plus ``D/k`` parity:
    total ``(N/g)·D·(1 + 1/k)``.
    """
    if group_size < 1:
        raise StorageError("group size must be positive")
    if cluster_size < 1 or cluster_size > n_nodes:
        raise StorageError("cluster size must be in [1, n_nodes]")
    n_clusters = n_nodes / cluster_size
    return n_clusters * ledger_bytes * (1.0 + 1.0 / group_size)
