"""Archival tier: cold blocks become k-of-n Reed–Solomon chunk sets.

The adaptive planner (:mod:`repro.storage.heat`) already prices cold
blocks down to ``max(r - cold_margin, 1)`` full replicas.  This tier
goes past the last replica: a block classified cold transitions from
replication to **coded storage** — the body is split and extended into
``n = k + m`` GF(256) Reed–Solomon chunks (:func:`repro.storage.
erasure.rs_encode`), spread across ``n`` *distinct* live cluster
members by the deployment's rendezvous placement, and every full
replica in the cluster is dropped.  Per-cluster cost falls from
``floor·D`` to ``(n/k)·D`` while durability *rises*: any ``n - k``
chunk holders can die and the body still decodes byte-exact.

Reads keep working through the query engine's failover tail: when every
planned holder misses, the engine asks this tier to reconstruct the
body on demand (lazy decode, charged as ``k`` chunk reads of read
amplification).  The anti-entropy sweep maintains the invariant the
endurance audit pins — the **coded floor**: every archived block keeps
at least ``k`` live chunks, never two on one member.  Dead chunks are
re-homed onto live members that hold no chunk of the block; a block
that warms back up is *thawed* — decoded once and handed back to the
replica tier at its planner target.

Opt-in and dormant by default: nothing here is constructed unless
:meth:`~repro.core.icistrategy.ICIDeployment.enable_archival_tier`
runs, so fixed-``r`` and adaptive-only deployments keep byte-identical
simulated metrics (the bench baseline gate enforces it).

Simulator shortcut (same oracle the repair analysis and the reconcile
pass use): chunk payloads live in this manager keyed by holder instead
of inside each node's store, mirroring how :class:`~repro.core.parity.
ParityManager` keeps parity chunks.  Placement, liveness, floors, and
read-amplification charges all follow the real holders.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Sequence

from repro.chain.block import Block, deserialize_body, serialize_body
from repro.crypto.hashing import Hash32
from repro.errors import ConfigurationError
from repro.obs.tracer import proto_track
from repro.storage.erasure import rs_decode, rs_encode
from repro.storage.heat import COLD

if TYPE_CHECKING:  # pragma: no cover
    from repro.chain.block import BlockHeader
    from repro.core.icistrategy import ICIDeployment
    from repro.obs.tracer import Tracer
    from repro.storage.heat import ReplicationPlanner


@dataclass(frozen=True)
class ArchivalConfig:
    """Shape of the archival code.

    Attributes:
        data_chunks: ``k`` — chunks needed to reconstruct a body.
        parity_chunks: ``m`` — extra chunks; any ``m`` holders may die.

    The defaults (3+1) put a cold block at ``4/3 ≈ 1.33×`` its body
    size per cluster and fit a five-member cluster with one spare.
    """

    data_chunks: int = 3
    parity_chunks: int = 1

    def __post_init__(self) -> None:
        if self.data_chunks < 1:
            raise ConfigurationError("data_chunks must be >= 1")
        if self.parity_chunks < 1:
            raise ConfigurationError(
                "parity_chunks must be >= 1 (a 0-parity code cannot "
                "survive a single chunk-holder failure)"
            )
        if self.data_chunks + self.parity_chunks > 256:
            raise ConfigurationError(
                "GF(256) supports at most 256 total chunks"
            )

    @property
    def total_chunks(self) -> int:
        """``n = k + m``."""
        return self.data_chunks + self.parity_chunks


@dataclass
class ArchivalStats:
    """What the tier archived, repaired, and decoded (deterministic)."""

    blocks_archived: int = 0
    blocks_thawed: int = 0
    chunks_placed: int = 0
    chunks_repaired: int = 0
    reconstructions: int = 0
    failed_reconstructions: int = 0
    #: Full-replica bytes freed by archiving (the tier's storage win).
    replica_bytes_freed: int = 0
    #: Read amplification: chunk bytes read for decodes and repairs.
    chunk_bytes_read: int = 0
    #: Sweeps that found an archived block below the coded floor
    #: (fewer than ``k`` live chunks).  Transient while holders are
    #: down; the endurance audit requires the floor restored at the end.
    floor_deficits: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and determinism signatures)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _ArchivedBlock:
    """One cluster's coded form of one block."""

    header: "BlockHeader"
    data_length: int
    chunks: list[bytes]
    #: chunk index -> current holder (always distinct holders).
    holders: dict[int, int] = field(default_factory=dict)


class ArchivalTier:
    """Per-cluster coded storage for cold blocks.

    Driven by the anti-entropy sweep: :meth:`should_archive` /
    :meth:`archive` move cold blocks in, :meth:`maintain` re-homes dead
    chunks and thaws re-warmed blocks, and the query engine calls
    :meth:`reconstruct` when its replica failover plan is exhausted.
    """

    def __init__(
        self,
        deployment: "ICIDeployment",
        planner: "ReplicationPlanner",
        config: ArchivalConfig | None = None,
    ) -> None:
        self.deployment = deployment
        self.planner = planner
        self.config = config or ArchivalConfig()
        self.stats = ArchivalStats()
        self._entries: dict[tuple[int, Hash32], _ArchivedBlock] = {}
        self._chunk_bytes_by_node: dict[int, int] = {}
        self._track = proto_track("archival")
        self._tracer: "Tracer | None" = None

    # ----------------------------------------------------------- predicates
    def is_archived(self, cluster_id: int, block_hash: Hash32) -> bool:
        """Does this cluster hold the block in coded form?"""
        return (cluster_id, block_hash) in self._entries

    def should_archive(self, cluster_id: int, block_hash: Hash32) -> bool:
        """Cold per the planner, not genesis, not already coded."""
        if self.is_archived(cluster_id, block_hash):
            return False
        return self.planner.tier_of(block_hash) == COLD

    def can_reconstruct(self, cluster_id: int, block_hash: Hash32) -> bool:
        """Are at least ``k`` chunks on live holders right now?"""
        entry = self._entries.get((cluster_id, block_hash))
        if entry is None:
            return False
        return len(self._live_chunks(entry)) >= self.config.data_chunks

    def live_chunk_holders(
        self, cluster_id: int, block_hash: Hash32
    ) -> list[int]:
        """Distinct live members holding chunks of one archived block.

        The failure-domain audit checks these span distinct zones the
        same way replica holders must; chunk placement already rides
        ``deployment.placement``, so a spread-aware policy spreads
        chunks automatically.
        """
        entry = self._entries.get((cluster_id, block_hash))
        if entry is None:
            return []
        return sorted(set(self._live_chunks(entry).values()))

    def coded_floor_ok(self, cluster_id: int, block_hash: Hash32) -> bool:
        """The audit invariant: ≥ ``k`` live chunks, never co-located."""
        entry = self._entries.get((cluster_id, block_hash))
        if entry is None:
            return False
        alive = self._live_chunks(entry)
        holders = list(alive.values())
        return (
            len(alive) >= self.config.data_chunks
            and len(set(holders)) == len(holders)
        )

    # ------------------------------------------------------------ archiving
    def archive(
        self, cluster_id: int, header: "BlockHeader", live: Sequence[int]
    ) -> bool:
        """Code one cold block into this cluster; drop its full replicas.

        Returns ``False`` (leaving the replica tier untouched) when the
        cluster has fewer than ``n`` live members — every chunk needs a
        distinct holder or a single crash could take two.
        """
        n = self.config.total_chunks
        if len(live) < n:
            return False
        deployment = self.deployment
        block_hash = header.block_hash
        body = serialize_body(deployment.ledger.store.body(block_hash))
        chunks = rs_encode(body, self.config.data_chunks, n)
        ranked = deployment.placement.holders(
            header, tuple(sorted(live)), n
        )
        entry = _ArchivedBlock(
            header=header,
            data_length=len(body),
            chunks=chunks,
            holders=dict(enumerate(ranked)),
        )
        freed = 0
        for member in deployment.clusters.members_of(cluster_id):
            node = deployment.nodes.get(member)
            if node is not None and node.store.has_body(block_hash):
                freed += node.unassign_body(block_hash)
        self._entries[(cluster_id, block_hash)] = entry
        for index, holder in entry.holders.items():
            self._credit(holder, len(chunks[index]))
        self.stats.blocks_archived += 1
        self.stats.chunks_placed += n
        self.stats.replica_bytes_freed += freed
        self._trace(
            "block_archived",
            {
                "cluster": cluster_id,
                "block": block_hash.hex()[:12],
                "chunks": n,
                "freed": freed,
            },
        )
        self._sample_storage()
        return True

    # ---------------------------------------------------------- maintenance
    def maintain(
        self, cluster_id: int, header: "BlockHeader", live: Sequence[int]
    ) -> None:
        """One sweep's upkeep of one archived block.

        Thaws the block back to the replica tier when the planner no
        longer calls it cold; otherwise re-homes chunks whose holders
        died onto live members holding no chunk of this block.  A block
        below the coded floor (fewer than ``k`` live chunks) is counted
        and retried next sweep — offline holders may yet recover.
        """
        block_hash = header.block_hash
        entry = self._entries[(cluster_id, block_hash)]
        if self.planner.tier_of(block_hash) != COLD:
            self._thaw(cluster_id, entry, live)
            return
        live_set = set(live)
        alive = {
            index: holder
            for index, holder in entry.holders.items()
            if holder in live_set
        }
        dead = sorted(set(entry.holders) - set(alive))
        if not dead:
            return
        if len(alive) < self.config.data_chunks:
            self.stats.floor_deficits += 1
            return
        occupied = set(alive.values())
        candidates = tuple(sorted(live_set - occupied))
        if not candidates:
            return
        ranked = self.deployment.placement.holders(
            entry.header, candidates, min(len(dead), len(candidates))
        )
        shard_len = len(entry.chunks[0]) if entry.chunks else 0
        for index, target in zip(dead, ranked):
            self._debit(entry.holders[index], shard_len)
            entry.holders[index] = target
            self._credit(target, shard_len)
            # Rebuilding one chunk reads k live chunks and re-encodes.
            self.stats.chunk_bytes_read += (
                self.config.data_chunks * shard_len
            )
            self.stats.chunks_repaired += 1
            self._trace(
                "chunk_repaired",
                {
                    "cluster": cluster_id,
                    "block": block_hash.hex()[:12],
                    "chunk": index,
                    "target": target,
                },
            )
        self._sample_storage()

    def _thaw(
        self, cluster_id: int, entry: _ArchivedBlock, live: Sequence[int]
    ) -> None:
        """Decode a re-warmed block and hand it back to the replica tier."""
        deployment = self.deployment
        block_hash = entry.header.block_hash
        block = self._decode(entry)
        if block is None:
            self.stats.floor_deficits += 1
            return
        members = deployment.clusters.members_of(cluster_id)
        targets = [
            target
            for target in self.planner.read_plan(entry.header, members)
            if target in deployment.nodes
            and deployment.network.is_online(target)
        ]
        if not targets:
            targets = [
                member for member in live if member in deployment.nodes
            ][:1]
        if not targets:
            self.stats.floor_deficits += 1
            return
        for target in targets:
            deployment.nodes[target].assign_body(block)
        self._forget(cluster_id, entry)
        self.stats.blocks_thawed += 1
        self._trace(
            "block_thawed",
            {
                "cluster": cluster_id,
                "block": block_hash.hex()[:12],
                "replicas": len(targets),
            },
        )
        self._sample_storage()

    def _forget(self, cluster_id: int, entry: _ArchivedBlock) -> None:
        for index, holder in entry.holders.items():
            self._debit(holder, len(entry.chunks[index]))
        del self._entries[(cluster_id, entry.header.block_hash)]

    # ------------------------------------------------------- reconstruction
    def reconstruct(
        self, cluster_id: int, block_hash: Hash32
    ) -> Block | None:
        """Lazily decode one archived body (the query failover tail).

        Returns ``None`` when the block is not archived here or fewer
        than ``k`` chunks are live; the decoded body is *not* re-adopted
        as a replica — cold blocks stay coded until the planner rewarms
        them.
        """
        entry = self._entries.get((cluster_id, block_hash))
        if entry is None:
            return None
        block = self._decode(entry)
        if block is None:
            self.stats.failed_reconstructions += 1
            return None
        self.stats.reconstructions += 1
        self._trace(
            "coded_reconstruct",
            {
                "cluster": cluster_id,
                "block": block_hash.hex()[:12],
                "chunks_read": self.config.data_chunks,
            },
        )
        return block

    def _decode(self, entry: _ArchivedBlock) -> Block | None:
        alive = self._live_chunks(entry)
        k = self.config.data_chunks
        if len(alive) < k:
            return None
        # rs_decode uses the first k present indices; charge exactly
        # those chunk reads as read amplification.
        used = sorted(alive)[:k]
        present = {index: entry.chunks[index] for index in used}
        for index in used:
            self.stats.chunk_bytes_read += len(entry.chunks[index])
            self._trace(
                "chunk_read",
                {
                    "block": entry.header.block_hash.hex()[:12],
                    "chunk": index,
                    "holder": alive[index],
                },
            )
        raw = rs_decode(
            present, k, self.config.total_chunks, entry.data_length
        )
        return deserialize_body(entry.header, raw)

    def _live_chunks(self, entry: _ArchivedBlock) -> dict[int, int]:
        deployment = self.deployment
        return {
            index: holder
            for index, holder in entry.holders.items()
            if holder in deployment.nodes
            and deployment.network.is_online(holder)
        }

    # ----------------------------------------------------------- accounting
    def _credit(self, holder: int, size: int) -> None:
        self._chunk_bytes_by_node[holder] = (
            self._chunk_bytes_by_node.get(holder, 0) + size
        )

    def _debit(self, holder: int, size: int) -> None:
        remaining = self._chunk_bytes_by_node.get(holder, 0) - size
        if remaining > 0:
            self._chunk_bytes_by_node[holder] = remaining
        else:
            self._chunk_bytes_by_node.pop(holder, None)

    @property
    def archived_blocks(self) -> int:
        """Archived (cluster, block) entries currently coded."""
        return len(self._entries)

    @property
    def total_chunk_bytes(self) -> int:
        """Coded bytes the tier stores across the whole network."""
        return sum(self._chunk_bytes_by_node.values())

    def chunk_bytes_of(self, node_id: int) -> int:
        """Coded bytes charged to one node."""
        return self._chunk_bytes_by_node.get(node_id, 0)

    def holders_of(
        self, cluster_id: int, block_hash: Hash32
    ) -> dict[int, int]:
        """chunk index -> holder for one archived block (audits/tests)."""
        entry = self._entries.get((cluster_id, block_hash))
        return dict(entry.holders) if entry is not None else {}

    def as_dict(self) -> dict[str, int]:
        """Stats view for signatures and reports."""
        return self.stats.as_dict()

    # -------------------------------------------------------------- tracing
    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Mirror archive/thaw/repair decisions (``None`` detaches)."""
        self._tracer = tracer

    def _sample_storage(self) -> None:
        if self._tracer is None:
            return
        from repro.obs.hooks import record_coded_storage

        record_coded_storage(
            self._tracer, self, self.deployment.network.now
        )

    def _trace(self, name: str, args: dict | None = None) -> None:
        if self._tracer is None:
            return
        self._tracer.instant(
            name,
            self._track,
            ts=self.deployment.network.clock.now,
            category="archival",
            args=args,
        )
