"""Replication health: availability analysis and repair planning.

With replication factor ``r`` inside a cluster, a block body survives as
long as at least one of its ``r`` holders is alive.  This module answers
the questions experiment E7 sweeps: given failures, which blocks are lost,
what is the survival probability, and what must be re-replicated when a
member departs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.chain.block import BlockHeader
from repro.errors import StorageError
from repro.storage.placement import PlacementPolicy


@dataclass(frozen=True)
class AvailabilityReport:
    """Survival outcome of a failure scenario within one cluster."""

    total_blocks: int
    lost_blocks: int
    at_risk_blocks: int  # exactly one live replica remains

    @property
    def survival_fraction(self) -> float:
        """Fraction of blocks still retrievable from the cluster."""
        if self.total_blocks == 0:
            return 1.0
        return 1.0 - self.lost_blocks / self.total_blocks

    @property
    def all_available(self) -> bool:
        """Did every block survive?"""
        return self.lost_blocks == 0


def availability_under_failures(
    headers: Sequence[BlockHeader],
    members: Sequence[int],
    replication: int,
    policy: PlacementPolicy,
    failed: set[int],
) -> AvailabilityReport:
    """Which blocks survive when ``failed`` members of a cluster crash.

    Placement is re-derived from the policy, so the report reflects exactly
    what the deterministic layout implies.
    """
    lost = 0
    at_risk = 0
    for header in headers:
        holders = policy.holders(header, members, replication)
        alive = [holder for holder in holders if holder not in failed]
        if not alive:
            lost += 1
        elif len(alive) == 1:
            at_risk += 1
    return AvailabilityReport(
        total_blocks=len(headers), lost_blocks=lost, at_risk_blocks=at_risk
    )


def analytic_block_survival(
    cluster_size: int, replication: int, failure_probability: float
) -> float:
    """Closed-form P(block survives) with independent member failures.

    A block is lost only when **all** ``r`` of its holders fail:
    ``P(survive) = 1 - p^r``.  E7 checks simulated results against this.
    """
    if not 0.0 <= failure_probability <= 1.0:
        raise StorageError("failure probability must be in [0, 1]")
    if replication < 1 or replication > cluster_size:
        raise StorageError("replication must be in [1, cluster_size]")
    return 1.0 - failure_probability**replication


def analytic_ledger_survival(
    n_blocks: int,
    cluster_size: int,
    replication: int,
    failure_probability: float,
) -> float:
    """P(every one of ``n_blocks`` survives), treating blocks independently.

    An approximation (placements share holders), but tight for
    ``n_blocks >> cluster_size``; the property tests bound the gap.
    """
    per_block = analytic_block_survival(
        cluster_size, replication, failure_probability
    )
    return per_block**n_blocks


@dataclass(frozen=True)
class RepairPlan:
    """Blocks that must be copied after a membership change.

    Attributes:
        transfers: ``(block_hash, source_node, target_node)`` copy orders.
        bytes_moved: total body bytes the plan transfers.
    """

    transfers: tuple[tuple[bytes, int, int], ...]
    bytes_moved: int

    @property
    def transfer_count(self) -> int:
        """Number of copy orders in the plan."""
        return len(self.transfers)


def plan_repair_after_departure(
    headers: Sequence[BlockHeader],
    body_bytes: Callable[[bytes], int],
    old_members: Sequence[int],
    departed: int,
    replication: int,
    policy: PlacementPolicy,
) -> RepairPlan:
    """Plan the copies needed when ``departed`` leaves a cluster.

    For every block, placement is recomputed over the surviving member
    list.  Any member that newly becomes a holder must fetch the body from
    a surviving old holder (preferring one that keeps the block under the
    new placement, falling back to any old holder still alive).

    Raises:
        StorageError: when a block had all replicas on the departed node
            (unrecoverable without erasure coding), or when the departed
            node is not a member.
    """
    if departed not in old_members:
        raise StorageError(f"node {departed} is not a cluster member")
    new_members = [m for m in old_members if m != departed]
    if replication > len(new_members):
        raise StorageError(
            "departure leaves fewer members than the replication factor"
        )
    transfers: list[tuple[bytes, int, int]] = []
    bytes_moved = 0
    for header in headers:
        old_holders = set(policy.holders(header, old_members, replication))
        new_holders = set(policy.holders(header, new_members, replication))
        survivors = old_holders - {departed}
        gained = new_holders - old_holders
        if not gained:
            continue
        if not survivors:
            raise StorageError(
                f"block {header.block_hash.hex()[:12]}… lost all replicas"
            )
        source = min(survivors & new_holders, default=min(survivors))
        for target in sorted(gained):
            transfers.append((header.block_hash, source, target))
            bytes_moved += body_bytes(header.block_hash)
    return RepairPlan(
        transfers=tuple(transfers), bytes_moved=bytes_moved
    )


def expected_repair_fraction(
    cluster_size: int, replication: int
) -> float:
    """Expected fraction of blocks needing repair when one member leaves.

    Under uniform placement each member holds ``r/m`` of the blocks, so a
    departure touches that fraction in expectation.
    """
    if cluster_size < 1:
        raise StorageError("cluster size must be positive")
    return min(1.0, replication / cluster_size)


def sample_failure_sets(
    members: Sequence[int],
    n_failures: int,
    n_samples: int,
    seed: int = 0,
) -> Iterable[set[int]]:
    """Deterministic random failure sets for Monte-Carlo availability runs."""
    import random

    if n_failures > len(members):
        raise StorageError("cannot fail more members than exist")
    rng = random.Random(seed)
    member_list = list(members)
    for _ in range(n_samples):
        yield set(rng.sample(member_list, n_failures))


def binomial_failure_probability(
    cluster_size: int, replication: int, n_failures: int
) -> float:
    """Exact P(a given block is lost | exactly ``n_failures`` members fail).

    Hypergeometric: all ``r`` holders must be inside the failed set:
    ``C(m-r, f-r) / C(m, f)`` for ``f >= r`` else 0.
    """
    if n_failures < replication:
        return 0.0
    return math.comb(cluster_size - replication, n_failures - replication) / math.comb(
        cluster_size, n_failures
    )
