"""Paper-scale storage-layout simulation (placement only, no messages).

The message-driven simulator honestly exercises protocols but tops out
around a few hundred nodes per run.  Storage layout, however, is a pure
function of (membership, placement policy, block sizes) — so this module
computes **exact per-node byte layouts at the paper's literal scale**
(N=1000, committees of 250, thousands of 1 MB blocks) in milliseconds,
letting E2 cross-check its closed forms against a real placement rather
than only against algebra.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.chain.block import HEADER_SIZE, BlockHeader
from repro.clustering.algorithms import RandomBalancedClustering
from repro.clustering.membership import ClusterTable
from repro.crypto.hashing import ZERO_HASH, sha256
from repro.errors import ConfigurationError
from repro.storage.accounting import (
    NetworkStorageReport,
    NodeStorageReport,
)
from repro.storage.placement import PlacementPolicy, RendezvousPlacement


@dataclass(frozen=True)
class SyntheticBlock:
    """A block stand-in: header + body size, no transactions."""

    header: BlockHeader
    body_bytes: int


def synthetic_chain(
    n_blocks: int,
    mean_body_bytes: int = 1_000_000,
    jitter: float = 0.1,
    seed: int = 0,
) -> list[SyntheticBlock]:
    """A deterministic chain of sized block stand-ins.

    Body sizes are uniform in ``mean ± jitter·mean`` (real blocks vary);
    hashes chain properly so placement sees realistic entropy.
    """
    if n_blocks < 0:
        raise ConfigurationError("n_blocks must be >= 0")
    if not 0 <= jitter < 1:
        raise ConfigurationError("jitter must be in [0, 1)")
    rng = random.Random(seed)
    blocks: list[SyntheticBlock] = []
    prev = ZERO_HASH
    for height in range(n_blocks):
        header = BlockHeader(
            height=height,
            prev_hash=prev,
            merkle_root=sha256(f"root-{seed}-{height}".encode()),
            timestamp=float(height),
            nonce=height,
        )
        low = int(mean_body_bytes * (1 - jitter))
        high = int(mean_body_bytes * (1 + jitter))
        blocks.append(
            SyntheticBlock(
                header=header,
                body_bytes=rng.randint(low, max(high, low)),
            )
        )
        prev = header.block_hash
    return blocks


def ici_layout(
    clusters: ClusterTable,
    blocks: Sequence[SyntheticBlock],
    replication: int = 1,
    policy: PlacementPolicy | None = None,
) -> NetworkStorageReport:
    """Exact per-node layout under ICIStrategy placement."""
    policy = policy or RendezvousPlacement()
    body_bytes = {node: 0 for node in clusters.all_nodes()}
    body_count = {node: 0 for node in clusters.all_nodes()}
    for view in clusters.views():
        for block in blocks:
            for holder in policy.holders(
                block.header, view.members, replication
            ):
                body_bytes[holder] += block.body_bytes
                body_count[holder] += 1
    return _report(clusters, blocks, body_bytes, body_count)


def rapidchain_layout(
    committees: ClusterTable,
    blocks: Sequence[SyntheticBlock],
) -> NetworkStorageReport:
    """Exact per-node layout under RapidChain committee sharding."""
    body_bytes = {node: 0 for node in committees.all_nodes()}
    body_count = {node: 0 for node in committees.all_nodes()}
    k = committees.cluster_count
    for block in blocks:
        home = int.from_bytes(block.header.block_hash[:8], "big") % k
        for member in committees.members_of(home):
            body_bytes[member] += block.body_bytes
            body_count[member] += 1
    return _report(committees, blocks, body_bytes, body_count)


def full_replication_layout(
    node_ids: Sequence[int],
    blocks: Sequence[SyntheticBlock],
) -> NetworkStorageReport:
    """Every node stores everything."""
    total = sum(block.body_bytes for block in blocks)
    headers = HEADER_SIZE * len(blocks)
    return NetworkStorageReport(
        per_node=tuple(
            NodeStorageReport(
                node_id=node,
                header_bytes=headers,
                body_bytes=total,
                header_count=len(blocks),
                body_count=len(blocks),
            )
            for node in sorted(node_ids)
        )
    )


def balanced_clusters(
    n_nodes: int, n_groups: int, seed: int = 0
) -> ClusterTable:
    """Convenience: random balanced groups for layout studies."""
    return RandomBalancedClustering(seed=seed).form_clusters(
        list(range(n_nodes)), n_groups
    )


def _report(
    clusters: ClusterTable,
    blocks: Sequence[SyntheticBlock],
    body_bytes: dict[int, int],
    body_count: dict[int, int],
) -> NetworkStorageReport:
    headers = HEADER_SIZE * len(blocks)
    return NetworkStorageReport(
        per_node=tuple(
            NodeStorageReport(
                node_id=node,
                header_bytes=headers,
                body_bytes=body_bytes[node],
                header_count=len(blocks),
                body_count=body_count[node],
            )
            for node in clusters.all_nodes()
        )
    )
