"""repro — ICIStrategy: multi-node collaborative blockchain storage.

A from-scratch reproduction of *"A Multi-node Collaborative Storage
Strategy via Clustering in Blockchain Network"* (Li, Qin, Liu, Chu —
ICDCS 2020).  The package bundles the strategy itself plus every
substrate it runs on: a UTXO ledger, a discrete-event network simulator,
clustering, intra-cluster BFT verification, and the baselines the paper
compares against (full replication and RapidChain-style sharding).

Quickstart::

    from repro import ICIConfig, ICIDeployment, ScenarioRunner

    deployment = ICIDeployment(
        n_nodes=40, config=ICIConfig(n_clusters=4, replication=2)
    )
    runner = ScenarioRunner(deployment)
    runner.produce_blocks(10)
    print(deployment.storage_report().mean_node_bytes)
"""

from repro.baselines import (
    FullReplicationDeployment,
    RapidChainDeployment,
)
from repro.core import (
    BootstrapReport,
    DeploymentMetrics,
    ICIConfig,
    ICIDeployment,
    QueryRecord,
    StorageDeployment,
)
from repro.sim import (
    BENCH_LIMITS,
    RunReport,
    Scenario,
    ScenarioRunner,
    TransactionWorkload,
    WorkloadConfig,
    build_deployment,
)

__version__ = "1.0.0"

__all__ = [
    "FullReplicationDeployment",
    "RapidChainDeployment",
    "BootstrapReport",
    "DeploymentMetrics",
    "ICIConfig",
    "ICIDeployment",
    "QueryRecord",
    "StorageDeployment",
    "BENCH_LIMITS",
    "RunReport",
    "Scenario",
    "ScenarioRunner",
    "TransactionWorkload",
    "WorkloadConfig",
    "build_deployment",
    "__version__",
]
