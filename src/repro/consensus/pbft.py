"""Intra-cluster collaborative verification state machine.

The PBFT-flavoured protocol ICIStrategy runs inside each cluster when a new
block arrives:

1. **Prepare** — the block's assigned *holders* fully validate the body
   (signatures, Merkle commitment, stateful checks) and broadcast a signed
   PREPARE attestation (accept/reject) to all cluster members.
2. **Commit** — every member checks the header chain linkage plus the
   holders' attestations; once a majority of holders attest accept, the
   member broadcasts COMMIT.
3. **Decide** — a member finalizes the block when it has collected a
   Byzantine quorum (``⌊2m/3⌋+1``) of COMMITs.

The state machine here is *pure*: callers feed events in and get decisions
out; all networking lives in :mod:`repro.core.verification`.  That split
keeps the protocol unit-testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.consensus.quorum import Vote, VoteTally, byzantine_quorum
from repro.errors import ConsensusError


class RoundPhase(Enum):
    """Lifecycle of one block's verification inside a cluster."""

    AWAITING_PREPARES = "awaiting_prepares"
    AWAITING_COMMITS = "awaiting_commits"
    ACCEPTED = "accepted"
    REJECTED = "rejected"


@dataclass
class VerificationRound:
    """Per-member view of one block's intra-cluster verification.

    Each cluster member runs its own round instance; instances exchange
    PREPARE/COMMIT events through the messaging layer.

    Attributes:
        block_hash: the block under verification.
        members: cluster membership (including this member).
        holders: the placement-assigned body holders.
        member_id: the member whose view this is.
    """

    block_hash: bytes
    members: tuple[int, ...]
    holders: tuple[int, ...]
    member_id: int
    phase: RoundPhase = RoundPhase.AWAITING_PREPARES
    prepare_votes: dict[int, Vote] = field(default_factory=dict)
    commit_tally: VoteTally = field(init=False)
    sent_commit: bool = False
    decided_at: float | None = None

    def __post_init__(self) -> None:
        if self.member_id not in self.members:
            raise ConsensusError("round owner must be a cluster member")
        if not set(self.holders) <= set(self.members):
            raise ConsensusError("holders must be cluster members")
        if not self.holders:
            raise ConsensusError("a block must have at least one holder")
        self.commit_tally = VoteTally(cluster_size=len(self.members))

    # ------------------------------------------------------------ thresholds
    @property
    def prepare_quorum(self) -> int:
        """Holder attestations needed before members commit: majority."""
        return len(self.holders) // 2 + 1

    @property
    def commit_quorum(self) -> int:
        """Commits needed to decide: the Byzantine quorum."""
        return byzantine_quorum(len(self.members))

    # --------------------------------------------------------------- events
    def on_prepare(self, holder: int, vote: Vote) -> bool:
        """Record a holder's PREPARE; returns ``True`` when this member
        should now broadcast its COMMIT (transition to the commit phase).

        Non-holders' prepares are ignored; duplicate prepares keep the
        first verdict.
        """
        if self.phase in (RoundPhase.ACCEPTED, RoundPhase.REJECTED):
            return False
        if holder not in self.holders:
            return False
        self.prepare_votes.setdefault(holder, vote)
        return self._maybe_enter_commit()

    def _maybe_enter_commit(self) -> bool:
        if self.phase is not RoundPhase.AWAITING_PREPARES or self.sent_commit:
            return False
        accepts = sum(
            1 for v in self.prepare_votes.values() if v is Vote.ACCEPT
        )
        rejects = sum(
            1 for v in self.prepare_votes.values() if v is Vote.REJECT
        )
        if accepts >= self.prepare_quorum:
            self.phase = RoundPhase.AWAITING_COMMITS
            self.sent_commit = True
            self._pending_commit = Vote.ACCEPT
            return True
        if rejects >= self.prepare_quorum:
            self.phase = RoundPhase.AWAITING_COMMITS
            self.sent_commit = True
            self._pending_commit = Vote.REJECT
            return True
        return False

    @property
    def my_commit_vote(self) -> Vote:
        """The COMMIT this member should broadcast (valid after the prepare
        quorum fired).

        Raises:
            ConsensusError: when queried before the commit phase.
        """
        vote = getattr(self, "_pending_commit", None)
        if vote is None:
            raise ConsensusError("commit vote not yet determined")
        return vote

    def on_commit(self, member: int, vote: Vote, now: float = 0.0) -> bool:
        """Record a member's COMMIT; returns ``True`` at the decision edge."""
        if self.phase in (RoundPhase.ACCEPTED, RoundPhase.REJECTED):
            return False
        if member not in self.members:
            return False
        self.commit_tally.record(member, vote)
        if self.commit_tally.accepted:
            self.phase = RoundPhase.ACCEPTED
            self.decided_at = now
            return True
        if self.commit_tally.rejected:
            self.phase = RoundPhase.REJECTED
            self.decided_at = now
            return True
        return False

    # -------------------------------------------------------------- queries
    @property
    def decided(self) -> bool:
        """Has this round reached a verdict?"""
        return self.phase in (RoundPhase.ACCEPTED, RoundPhase.REJECTED)

    @property
    def accepted(self) -> bool:
        """Did this round accept the block?"""
        return self.phase is RoundPhase.ACCEPTED
