"""Block proposer scheduling — the PoW/PoS abstraction.

The experiments do not measure mining; they measure what happens to a block
*after* it exists.  So block production is abstracted into a deterministic
proposer schedule: at each height, a pseudo-random (seeded) node wins the
right to seal the next block.  The ``nonce`` field of the header records
the round, standing in for the proof-of-work witness.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.chain.block import Block, build_block
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction, make_coinbase
from repro.chain.validation import DEFAULT_LIMITS, ValidationLimits
from repro.crypto.hashing import Hash32
from repro.errors import ConsensusError


class ProposerSchedule:
    """Deterministic rotation of block proposers.

    The proposer at height ``h`` is chosen by hashing ``(seed, h)`` into
    the eligible node list, mimicking lottery-style leader election without
    simulating work.
    """

    def __init__(self, node_ids: Sequence[int], seed: int = 0) -> None:
        if not node_ids:
            raise ConsensusError("proposer schedule needs at least one node")
        self._node_ids = sorted(node_ids)
        self._seed = seed

    def proposer_at(self, height: int) -> int:
        """The node id entitled to seal the block at ``height``."""
        if height < 0:
            raise ConsensusError("height must be non-negative")
        digest = hashlib.sha256(
            f"proposer/{self._seed}/{height}".encode("ascii")
        ).digest()
        index = int.from_bytes(digest[:8], "big") % len(self._node_ids)
        return self._node_ids[index]

    def remove(self, node_id: int) -> None:
        """Drop a departed node from the rotation."""
        if node_id in self._node_ids:
            self._node_ids.remove(node_id)
        if not self._node_ids:
            raise ConsensusError("proposer schedule emptied")

    def add(self, node_id: int) -> None:
        """Admit a node to the rotation (idempotent)."""
        if node_id not in self._node_ids:
            self._node_ids.append(node_id)
            self._node_ids.sort()

    @property
    def eligible(self) -> tuple[int, ...]:
        """Nodes currently in the rotation."""
        return tuple(self._node_ids)


class BlockProposer:
    """Assembles the next block from a mempool for a scheduled proposer."""

    def __init__(
        self,
        miner_address: bytes,
        limits: ValidationLimits = DEFAULT_LIMITS,
    ) -> None:
        self._miner_address = miner_address
        self._limits = limits

    def propose(
        self,
        height: int,
        prev_hash: Hash32,
        mempool: Mempool,
        timestamp: float,
        extra_transactions: Sequence[Transaction] = (),
        utxos=None,
    ) -> Block:
        """Seal the block at ``height`` on top of ``prev_hash``.

        ``extra_transactions`` lets workload drivers inject transactions
        directly (bypassing relay) for storage-focused experiments.
        When ``utxos`` (the parent chain state) is supplied, the coinbase
        additionally claims the included transactions' fees.
        """
        budget = self._limits.max_block_body_bytes
        placeholder = make_coinbase(
            reward=self._limits.block_reward,
            miner_address=self._miner_address,
            height=height,
        )
        budget -= placeholder.size_bytes
        selected: list[Transaction] = []
        used = 0
        for tx in extra_transactions:
            if used + tx.size_bytes > budget:
                break
            selected.append(tx)
            used += tx.size_bytes
        selected.extend(mempool.select_for_block(budget - used))

        fees = 0
        if utxos is not None:
            from repro.chain.validation import check_transaction_stateful
            from repro.errors import ValidationError

            for tx in selected:
                try:
                    fees += check_transaction_stateful(tx, utxos)
                except ValidationError:
                    fees += 0  # intra-block spend; fee counted as 0
        coinbase = make_coinbase(
            reward=self._limits.block_reward + fees,
            miner_address=self._miner_address,
            height=height,
        )
        return build_block(
            height=height,
            prev_hash=prev_hash,
            transactions=[coinbase, *selected],
            timestamp=timestamp,
            nonce=height,
        )
