"""Quorum arithmetic and vote tracking for intra-cluster verification.

ICIStrategy accepts a block inside a cluster once a Byzantine quorum of
members has attested to it.  This module holds the pure logic — quorum
thresholds, vote tallies, equivocation detection — separate from the
message-driven state machine in :mod:`repro.consensus.pbft`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConsensusError


def byzantine_quorum(cluster_size: int) -> int:
    """Votes needed to tolerate ``f = ⌊(m-1)/3⌋`` Byzantine members.

    Classic BFT threshold: ``2f + 1`` out of ``m = 3f + 1`` (rounded for
    arbitrary m as ``⌊2m/3⌋ + 1``).
    """
    if cluster_size < 1:
        raise ConsensusError("cluster size must be positive")
    return (2 * cluster_size) // 3 + 1


def max_byzantine_tolerated(cluster_size: int) -> int:
    """The ``f`` such that quorum certificates stay sound: ``⌊(m-1)/3⌋``."""
    if cluster_size < 1:
        raise ConsensusError("cluster size must be positive")
    return (cluster_size - 1) // 3


class Vote(Enum):
    """A member's verdict on a block."""

    ACCEPT = "accept"
    REJECT = "reject"


@dataclass
class VoteTally:
    """Collects one cluster's votes on one block.

    Equivocation (a member voting both ways) marks the member faulty and
    discards both votes — the standard defensive treatment.
    """

    cluster_size: int
    votes: dict[int, Vote] = field(default_factory=dict)
    equivocators: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.cluster_size < 1:
            raise ConsensusError("cluster size must be positive")

    @property
    def quorum(self) -> int:
        """Votes required to accept: ``⌊2m/3⌋ + 1``."""
        return byzantine_quorum(self.cluster_size)

    def record(self, member: int, vote: Vote) -> None:
        """Record a vote; conflicting votes flag the member."""
        if member in self.equivocators:
            return
        previous = self.votes.get(member)
        if previous is not None and previous != vote:
            del self.votes[member]
            self.equivocators.add(member)
            return
        self.votes[member] = vote

    @property
    def accepts(self) -> int:
        """Accept votes recorded so far."""
        return sum(1 for v in self.votes.values() if v is Vote.ACCEPT)

    @property
    def rejects(self) -> int:
        """Reject votes recorded so far."""
        return sum(1 for v in self.votes.values() if v is Vote.REJECT)

    @property
    def accepted(self) -> bool:
        """True once an accept quorum certificate exists."""
        return self.accepts >= self.quorum

    @property
    def rejected(self) -> bool:
        """True once acceptance is impossible (too many rejects)."""
        possible = self.cluster_size - self.rejects - len(self.equivocators)
        return possible < self.quorum

    @property
    def decided(self) -> bool:
        """Has the tally reached either verdict?"""
        return self.accepted or self.rejected
