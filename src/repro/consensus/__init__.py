"""Consensus: proposer scheduling and intra-cluster PBFT-style verification."""

from repro.consensus.pbft import RoundPhase, VerificationRound
from repro.consensus.proposer import BlockProposer, ProposerSchedule
from repro.consensus.quorum import (
    Vote,
    VoteTally,
    byzantine_quorum,
    max_byzantine_tolerated,
)

__all__ = [
    "RoundPhase",
    "VerificationRound",
    "BlockProposer",
    "ProposerSchedule",
    "Vote",
    "VoteTally",
    "byzantine_quorum",
    "max_byzantine_tolerated",
]
