"""Simulated key pairs and addresses.

The experiments in this repository measure storage, communication, and
latency — not cryptographic strength — so real elliptic-curve operations are
replaced by a deterministic HMAC-style construction (see
``DESIGN.md`` → *Substitutions*).  Key and signature **sizes** match the real
thing (33-byte compressed public keys, 64-byte signatures, 20-byte addresses)
so byte accounting in the simulator is realistic.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from functools import lru_cache

from repro.crypto.hashing import sha256

#: Size in bytes of a private key.
PRIVATE_KEY_SIZE = 32
#: Size in bytes of a (compressed-format) public key.
PUBLIC_KEY_SIZE = 33
#: Size in bytes of an address (RIPEMD160-style truncated hash).
ADDRESS_SIZE = 20

_PUBKEY_DOMAIN = b"repro/pubkey/v1"


def derive_public_key(private_key: bytes) -> bytes:
    """Deterministically derive the 33-byte public key for a private key."""
    if len(private_key) != PRIVATE_KEY_SIZE:
        raise ValueError(f"private key must be {PRIVATE_KEY_SIZE} bytes")
    digest = hmac.new(_PUBKEY_DOMAIN, private_key, hashlib.sha256).digest()
    # Prefix byte mimics a compressed-point parity marker.
    parity = b"\x02" if digest[-1] % 2 == 0 else b"\x03"
    return parity + digest


@lru_cache(maxsize=1 << 16)
def address_of(public_key: bytes) -> bytes:
    """Derive a 20-byte address from a public key (hash-then-truncate).

    Memoized: stateful validation re-derives the address of every input's
    witness on every validating node, over a small population of wallets.
    """
    if len(public_key) != PUBLIC_KEY_SIZE:
        raise ValueError(f"public key must be {PUBLIC_KEY_SIZE} bytes")
    return sha256(public_key)[:ADDRESS_SIZE]


@dataclass(frozen=True)
class KeyPair:
    """A simulated signing key pair.

    Attributes:
        private_key: 32 secret bytes.
        public_key: 33-byte derived public key.
    """

    private_key: bytes
    public_key: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if len(self.private_key) != PRIVATE_KEY_SIZE:
            raise ValueError(f"private key must be {PRIVATE_KEY_SIZE} bytes")
        if not self.public_key:
            object.__setattr__(
                self, "public_key", derive_public_key(self.private_key)
            )
        elif self.public_key != derive_public_key(self.private_key):
            raise ValueError("public key does not match private key")

    @property
    def address(self) -> bytes:
        """The 20-byte address controlled by this key pair."""
        return address_of(self.public_key)

    @classmethod
    def from_seed(cls, seed: int) -> "KeyPair":
        """Derive a key pair deterministically from an integer seed.

        Used pervasively in tests and workloads so runs are reproducible.
        """
        private = sha256(b"repro/seed/" + str(seed).encode("ascii"))
        return cls(private_key=private)

    def __repr__(self) -> str:  # avoid leaking the private key in logs
        return f"KeyPair(address={self.address.hex()[:12]}…)"


class KeyRing:
    """A deterministic factory and registry of key pairs.

    Workload generators use a key ring to mint wallets; the ring can look a
    key pair back up by address, which the validation layer uses to check
    signatures without a global PKI.
    """

    def __init__(self, namespace: str = "default") -> None:
        self._namespace = namespace
        self._by_address: dict[bytes, KeyPair] = {}
        self._counter = 0

    def new_keypair(self) -> KeyPair:
        """Mint the next key pair in this ring's deterministic sequence."""
        seed_material = f"repro/ring/{self._namespace}/{self._counter}"
        self._counter += 1
        keypair = KeyPair(private_key=sha256(seed_material.encode("ascii")))
        self._by_address[keypair.address] = keypair
        return keypair

    def get(self, address: bytes) -> KeyPair | None:
        """Look up a key pair by its address, or ``None`` if unknown."""
        return self._by_address.get(address)

    def __len__(self) -> int:
        return len(self._by_address)

    def __contains__(self, address: bytes) -> bool:
        return address in self._by_address
