"""Merkle trees over transaction hashes, with inclusion proofs.

The tree follows the Bitcoin convention: leaves are 32-byte digests, an odd
level duplicates its last element, and inner nodes are
``sha256d(left || right)``.  Inclusion proofs are audit paths of
``(sibling_hash, sibling_is_right)`` pairs; SPV-style verification in the
light-node and collaborative-verification code paths uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.hashing import Hash32, ZERO_HASH, hash_concat
from repro.errors import MerkleError


@dataclass(frozen=True)
class MerkleProof:
    """An audit path proving a leaf's inclusion under a Merkle root.

    Attributes:
        leaf: The leaf digest being proven.
        index: The leaf's position in the original leaf sequence.
        path: Sibling digests from leaf level to just below the root, each
            paired with ``True`` when the sibling sits to the right.
    """

    leaf: Hash32
    index: int
    path: tuple[tuple[Hash32, bool], ...]

    @property
    def size_bytes(self) -> int:
        """Wire size of the proof: 32 bytes per sibling + 4-byte index."""
        return 32 * len(self.path) + 32 + 4

    def compute_root(self) -> Hash32:
        """Fold the audit path into the root this proof commits to."""
        current = self.leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = hash_concat(current, sibling)
            else:
                current = hash_concat(sibling, current)
        return current

    def verify(self, root: Hash32) -> bool:
        """Return ``True`` when this proof is valid under ``root``."""
        return self.compute_root() == root


class MerkleTree:
    """A full Merkle tree built from a sequence of leaf digests.

    The tree keeps every level so proofs can be generated in O(log n)
    without recomputation.  An empty leaf set yields the conventional
    all-zero root (the genesis block has no transactions in some tests).
    """

    def __init__(self, leaves: Sequence[Hash32]) -> None:
        for leaf in leaves:
            if len(leaf) != 32:
                raise MerkleError("merkle leaves must be 32-byte digests")
        self._leaves: tuple[Hash32, ...] = tuple(leaves)
        self._levels: list[list[Hash32]] = self._build_levels(self._leaves)

    @staticmethod
    def _build_levels(leaves: tuple[Hash32, ...]) -> list[list[Hash32]]:
        if not leaves:
            return [[ZERO_HASH]]
        levels = [list(leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            next_level: list[Hash32] = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                next_level.append(hash_concat(left, right))
            levels.append(next_level)
        return levels

    @property
    def root(self) -> Hash32:
        """The Merkle root committing to all leaves."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        """Number of leaves the tree was built from."""
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``.

        Raises:
            MerkleError: if ``index`` is out of range or the tree is empty.
        """
        if not self._leaves:
            raise MerkleError("cannot prove inclusion in an empty tree")
        if not 0 <= index < len(self._leaves):
            raise MerkleError(
                f"leaf index {index} out of range [0, {len(self._leaves)})"
            )
        path: list[tuple[Hash32, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling_is_right = position % 2 == 0
            sibling_index = position + 1 if sibling_is_right else position - 1
            if sibling_index >= len(level):
                sibling_index = position  # odd level duplicates last node
            path.append((level[sibling_index], sibling_is_right))
            position //= 2
        return MerkleProof(
            leaf=self._leaves[index], index=index, path=tuple(path)
        )


def merkle_root(leaves: Sequence[Hash32]) -> Hash32:
    """Convenience: compute just the root of a leaf sequence."""
    return MerkleTree(leaves).root
