"""Crypto substrate: hashing, simulated keys/signatures, Merkle trees."""

from repro.crypto.hashing import (
    HASH_SIZE,
    Hash32,
    ZERO_HASH,
    hash_concat,
    hash_fields,
    hash_int,
    hash_str,
    hex_digest,
    sha256,
    sha256d,
    short_hex,
    xor_bytes,
)
from repro.crypto.keys import (
    ADDRESS_SIZE,
    PRIVATE_KEY_SIZE,
    PUBLIC_KEY_SIZE,
    KeyPair,
    KeyRing,
    address_of,
    derive_public_key,
)
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root
from repro.crypto.signatures import SIGNATURE_SIZE, require_valid, sign, verify

__all__ = [
    "HASH_SIZE",
    "Hash32",
    "ZERO_HASH",
    "hash_concat",
    "hash_fields",
    "hash_int",
    "hash_str",
    "hex_digest",
    "sha256",
    "sha256d",
    "short_hex",
    "xor_bytes",
    "ADDRESS_SIZE",
    "PRIVATE_KEY_SIZE",
    "PUBLIC_KEY_SIZE",
    "KeyPair",
    "KeyRing",
    "address_of",
    "derive_public_key",
    "MerkleProof",
    "MerkleTree",
    "merkle_root",
    "SIGNATURE_SIZE",
    "require_valid",
    "sign",
    "verify",
]
