"""Hash primitives used throughout the ledger and storage layers.

All hashes in the system are double SHA-256 (as in Bitcoin), exposed as the
32-byte :class:`Hash32` newtype-ish alias plus helpers for hashing structured
values deterministically.
"""

from __future__ import annotations

import hashlib
import struct
from functools import lru_cache
from typing import Iterable, Union

#: A 32-byte digest.  Plain ``bytes`` at runtime; the alias documents intent.
Hash32 = bytes

#: Number of bytes in a digest.
HASH_SIZE = 32

#: The all-zero hash, used as the previous-hash of the genesis block.
ZERO_HASH: Hash32 = b"\x00" * HASH_SIZE

_BytesLike = Union[bytes, bytearray, memoryview]


def sha256(data: _BytesLike) -> Hash32:
    """Single SHA-256 of ``data``."""
    return hashlib.sha256(bytes(data)).digest()


def sha256d(data: _BytesLike) -> Hash32:
    """Double SHA-256 of ``data`` (Bitcoin-style block/tx hashing)."""
    return hashlib.sha256(hashlib.sha256(bytes(data)).digest()).digest()


@lru_cache(maxsize=1 << 16)
def hash_concat(left: Hash32, right: Hash32) -> Hash32:
    """Hash the concatenation of two digests (Merkle inner node).

    Memoized: rebuilding the Merkle tree of a block another node already
    built (body deserialization, SPV proof folding) repeats exactly these
    inner-node hashes.
    """
    return sha256d(left + right)


def hash_int(value: int) -> Hash32:
    """Hash an unsigned 64-bit integer deterministically."""
    return sha256d(struct.pack(">Q", value & 0xFFFFFFFFFFFFFFFF))


def hash_str(value: str) -> Hash32:
    """Hash a unicode string (UTF-8 encoded)."""
    return sha256d(value.encode("utf-8"))


def hash_fields(*fields: _BytesLike) -> Hash32:
    """Hash a sequence of byte fields with length framing.

    Length framing makes the encoding injective: ``hash_fields(b"ab", b"c")``
    differs from ``hash_fields(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    for field in fields:
        raw = bytes(field)
        hasher.update(struct.pack(">I", len(raw)))
        hasher.update(raw)
    return hashlib.sha256(hasher.digest()).digest()


def hex_digest(digest: Hash32) -> str:
    """Render a digest as lowercase hex for logs and debugging."""
    return digest.hex()


def short_hex(digest: Hash32, length: int = 8) -> str:
    """First ``length`` hex characters of a digest, for compact display."""
    return digest.hex()[:length]


def xor_bytes(chunks: Iterable[_BytesLike]) -> bytes:
    """XOR an iterable of equal-length byte strings (parity computation).

    Raises:
        ValueError: if the iterable is empty or lengths differ.
    """
    result: bytearray | None = None
    for chunk in chunks:
        raw = bytes(chunk)
        if result is None:
            result = bytearray(raw)
        else:
            if len(raw) != len(result):
                raise ValueError(
                    f"xor_bytes requires equal lengths, got {len(result)} and {len(raw)}"
                )
            for i, byte in enumerate(raw):
                result[i] ^= byte
    if result is None:
        raise ValueError("xor_bytes requires at least one chunk")
    return bytes(result)
