"""Deterministic simulated signatures.

A signature here is ``HMAC-SHA256(private_key, message)`` followed by a
second keyed round, truncated/padded to 64 bytes so it is byte-compatible in
size with an ECDSA signature.  Verification re-derives the MAC from the
*private* key, which the verifier obtains through the deterministic
``public key -> private key`` relationship baked into :mod:`repro.crypto.keys`
(the public key embeds an HMAC of the private key, so the simulation verifies
by recomputing from the signer's registered key material).

To keep verification honest without a real trapdoor function, signatures are
verified against the **public key** via a mirrored construction: signing and
verifying both compute ``HMAC(public_key, message || tag)`` where ``tag`` is
derived from the private key at signing time and embedded in the signature.
Forging a signature without the private key requires guessing the 32-byte
tag, which the tests treat as infeasible.
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache

from repro.crypto.keys import KeyPair, PUBLIC_KEY_SIZE
from repro.errors import SignatureError

#: Size in bytes of a signature (matches ECDSA raw r||s encoding).
SIGNATURE_SIZE = 64

_TAG_DOMAIN = b"repro/sigtag/v1"


def _signing_tag(private_key: bytes, message: bytes) -> bytes:
    """The 32-byte secret tag binding the private key to this message."""
    return hmac.new(_TAG_DOMAIN + private_key, message, hashlib.sha256).digest()


def _outer_mac(public_key: bytes, message: bytes, tag: bytes) -> bytes:
    """The publicly-recomputable half of the signature."""
    return hmac.new(public_key, message + tag, hashlib.sha256).digest()


def sign(keypair: KeyPair, message: bytes) -> bytes:
    """Produce a 64-byte signature over ``message``.

    Layout: ``tag (32) || outer_mac (32)``.
    """
    tag = _signing_tag(keypair.private_key, message)
    outer = _outer_mac(keypair.public_key, message, tag)
    return tag + outer


def verify(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature against a public key and message.

    Returns ``True``/``False`` rather than raising; callers at consensus
    boundaries convert a ``False`` into :class:`~repro.errors.ValidationError`.

    Verification is memoized: in a simulated deployment every cluster
    member re-verifies the same (key, message, signature) triple, and the
    outcome is a pure function of those bytes.
    """
    if len(public_key) != PUBLIC_KEY_SIZE:
        return False
    if len(signature) != SIGNATURE_SIZE:
        return False
    return _verify_cached(public_key, message, signature)


@lru_cache(maxsize=1 << 16)
def _verify_cached(public_key: bytes, message: bytes, signature: bytes) -> bool:
    tag, outer = signature[:32], signature[32:]
    expected = _outer_mac(public_key, message, tag)
    return hmac.compare_digest(outer, expected)


def require_valid(public_key: bytes, message: bytes, signature: bytes) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public_key, message, signature):
        raise SignatureError(
            f"invalid signature for pubkey {public_key.hex()[:12]}…"
        )
