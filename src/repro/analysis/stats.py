"""Summary statistics helpers shared by benches and tests."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    p95: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample.

    Raises:
        ConfigurationError: for an empty sample.
    """
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    ordered = sorted(values)
    return Summary(
        count=len(ordered),
        mean=statistics.fmean(ordered),
        stdev=statistics.pstdev(ordered) if len(ordered) > 1 else 0.0,
        minimum=ordered[0],
        median=statistics.median(ordered),
        p95=percentile(ordered, 95.0),
        maximum=ordered[-1],
    )


def percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_values:
        raise ConfigurationError("cannot take percentile of empty sample")
    if not 0.0 <= pct <= 100.0:
        raise ConfigurationError("percentile must be in [0, 100]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = pct / 100.0 * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(sorted_values[low])
    weight = rank - low
    return float(
        sorted_values[low] * (1 - weight) + sorted_values[high] * weight
    )


def relative_error(measured: float, expected: float) -> float:
    """|measured − expected| / |expected| (∞ when expected is 0 and differ)."""
    if expected == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - expected) / abs(expected)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    if not values:
        raise ConfigurationError("cannot aggregate an empty sample")
    if any(value <= 0 for value in values):
        raise ConfigurationError("geometric mean needs positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))
