"""Full-deployment markdown reports.

Renders everything a deployment knows about itself — storage layout,
traffic breakdown, verification costs, latencies, membership events —
into one markdown document.  The CLI's ``run --report FILE`` writes it;
operators get the same post-mortem the benches print, in one place.
"""

from __future__ import annotations

import statistics
from typing import TextIO

from repro.analysis.tables import format_bytes, format_seconds
from repro.net.message import MessageKind


def _md_table(headers: list[str], rows: list[tuple]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_deployment_report(deployment, title: str = "Deployment report") -> str:
    """Markdown report for any :class:`StorageDeployment`."""
    sections = [f"# {title}", ""]
    sections.append(_section_population(deployment))
    sections.append(_section_storage(deployment))
    sections.append(_section_traffic(deployment))
    sections.append(_section_router(deployment))
    sections.append(_section_verification(deployment))
    sections.append(_section_latency(deployment))
    sections.append(_section_events(deployment))
    return "\n\n".join(part for part in sections if part)


def write_deployment_report(
    deployment, stream: TextIO, title: str = "Deployment report"
) -> None:
    """Write the markdown report to an open text stream."""
    stream.write(render_deployment_report(deployment, title=title))
    stream.write("\n")


# ----------------------------------------------------------------- sections
def _section_population(deployment) -> str:
    rows = [("nodes", deployment.node_count)]
    clusters = getattr(deployment, "clusters", None) or getattr(
        deployment, "committees", None
    )
    if clusters is not None:
        rows.append(("clusters/committees", clusters.cluster_count))
        rows.append(
            ("group sizes", ", ".join(map(str, clusters.sizes())))
        )
    ledger = getattr(deployment, "ledger", None)
    if ledger is not None:
        rows.append(("chain height", ledger.height))
    reorgs = getattr(deployment, "reorg_count", None)
    if reorgs:
        rows.append(("reorgs", reorgs))
    return "## Population\n\n" + _md_table(["quantity", "value"], rows)


def _section_storage(deployment) -> str:
    storage = deployment.storage_report()
    rows = [
        ("network total", format_bytes(storage.total_bytes)),
        ("mean per node", format_bytes(storage.mean_node_bytes)),
        ("max per node", format_bytes(storage.max_node_bytes)),
        ("stdev per node", format_bytes(storage.stdev_node_bytes)),
    ]
    parity = getattr(deployment, "parity", None)
    if parity is not None:
        rows.append(
            ("parity bytes", format_bytes(parity.total_parity_bytes))
        )
        rows.append(("parity groups", parity.sealed_groups))
    return "## Storage\n\n" + _md_table(["quantity", "value"], rows)


def _section_traffic(deployment) -> str:
    traffic = deployment.network.traffic
    rows = [
        (
            kind.value,
            traffic.messages_by_kind.get(kind, 0),
            format_bytes(traffic.bytes_by_kind.get(kind, 0)),
        )
        for kind in MessageKind
        if traffic.bytes_by_kind.get(kind, 0)
    ]
    rows.sort(key=lambda row: row[0])
    rows.append(
        ("TOTAL", traffic.total_messages, format_bytes(traffic.total_bytes))
    )
    return "## Traffic\n\n" + _md_table(
        ["message kind", "messages", "bytes"], rows
    )


def _section_router(deployment) -> str:
    stats = getattr(deployment.metrics, "router_stats", None)
    if stats is None or not stats.total_sends:
        return ""
    # Every registered kind renders — zero-count rows included — so a
    # freshly added (or dormant, e.g. disabled-overlay) message kind is
    # visibly idle instead of silently missing from the post-mortem.
    router = getattr(deployment, "router", None)
    registered = {
        kind.value for kind in getattr(router, "handled_kinds", ())
    }
    rows = [
        (
            kind,
            stats.sends.get(kind, 0),
            format_bytes(stats.send_bytes.get(kind, 0)),
            stats.deliveries.get(kind, 0),
        )
        for kind in sorted(
            set(stats.sends) | set(stats.deliveries) | registered
        )
    ]
    rows.append(
        (
            "TOTAL",
            stats.total_sends,
            format_bytes(sum(stats.send_bytes.values())),
            stats.total_deliveries,
        )
    )
    table = _md_table(
        ["message kind", "sends", "sent bytes", "deliveries"], rows
    )
    tail = (
        f"\nFinalize events observed: {stats.finalize_events}."
        "\n(Sends count node-initiated messages; gossip relays enter the"
        " network directly and appear under deliveries and Traffic only.)"
    )
    return "## Router activity\n\n" + table + tail


def _section_verification(deployment) -> str:
    costs = deployment.metrics.costs
    rows = [
        ("full body validations", costs.full_validations),
        ("header-only checks", costs.header_checks),
        ("simulated CPU seconds", f"{costs.cpu_seconds:.4f}"),
    ]
    rejected = deployment.metrics.blocks_rejected
    rows.append(("blocks rejected", len(rejected)))
    compact = getattr(deployment, "compact_stats", None)
    if compact is not None and compact.announcements:
        rows.append(
            ("compact mempool hit rate", f"{compact.hit_rate:.0%}")
        )
    return "## Verification\n\n" + _md_table(["quantity", "value"], rows)


def _section_latency(deployment) -> str:
    metrics = deployment.metrics
    rows = []
    clusters = getattr(deployment, "clusters", None) or getattr(
        deployment, "committees", None
    )
    if clusters is not None and metrics.block_submitted_at:
        latencies = [
            lat
            for block_hash in metrics.block_submitted_at
            if (
                lat := metrics.finalize_latency(
                    block_hash, clusters.cluster_count
                )
            )
            is not None
        ]
        if latencies:
            rows.append(
                (
                    "block finalize (all clusters), mean",
                    format_seconds(statistics.fmean(latencies)),
                )
            )
            rows.append(
                (
                    "block finalize, max",
                    format_seconds(max(latencies)),
                )
            )
    query_latencies = metrics.completed_query_latencies()
    if query_latencies:
        rows.append(
            (
                "block retrieval, mean",
                format_seconds(statistics.fmean(query_latencies)),
            )
        )
    if not rows:
        return ""
    return "## Latency\n\n" + _md_table(["quantity", "value"], rows)


# ------------------------------------------------------- benchmark summary
def render_bench_summary(payload: dict, comparison=None) -> str:
    """Markdown summary of one benchmark-suite payload.

    ``payload`` is a :mod:`repro.bench.schema` document; ``comparison``
    is an optional :class:`repro.bench.baseline.BaselineComparison` whose
    verdict gets appended.
    """
    host = payload.get("host", {})
    lines = [
        f"# Benchmark run ({payload['profile']} profile)",
        "",
        f"- created: {payload.get('created_at', 'unknown')}",
        f"- python: {host.get('python', 'unknown')} "
        f"on {host.get('platform', 'unknown')}",
        f"- calibration kernel: "
        f"{payload['calibration']['wall_seconds']:.4f}s",
        "",
    ]
    rows = []
    for bench_id, entry in payload["benchmarks"].items():
        wall = entry["wall_seconds"]
        simulated = entry["simulated"]
        messages = sum(
            sim.get("messages", 0) for sim in simulated.values()
        )
        rows.append(
            (
                bench_id,
                entry.get("title", ""),
                f"{wall['min']:.3f}",
                f"{wall['mean']:.3f}",
                f"{entry.get('peak_rss_kb', 0) // 1024} MB",
                messages or "-",
            )
        )
    lines.append(
        _md_table(
            [
                "bench",
                "kernel",
                "wall min (s)",
                "wall mean (s)",
                "peak RSS",
                "sim messages",
            ],
            rows,
        )
    )
    if comparison is not None:
        lines += ["", "## Baseline comparison", ""]
        lines += [f"- {line}" for line in comparison.summary_lines()]
    return "\n".join(lines) + "\n"


def _dht_overlay_lines(dht: dict) -> list[str]:
    """The "## DHT overlay" section chaos/endurance summaries share."""
    return [
        "",
        "## DHT overlay",
        "",
        _md_table(
            ["counter", "value"],
            [
                (
                    "iterative lookups",
                    f"{dht.get('lookups_completed', 0)}"
                    f"/{dht.get('lookups_started', 0)} completed "
                    f"({dht.get('lookup_messages', 0)} messages, "
                    f"{dht.get('lookup_hops', 0)} hops)",
                ),
                (
                    "value lookups hit/miss",
                    f"{dht.get('value_hits', 0)}"
                    f"/{dht.get('value_misses', 0)} "
                    f"(+{dht.get('local_hits', 0)} local-record hits)",
                ),
                (
                    "records published",
                    f"{dht.get('records_published', 0)} "
                    f"({dht.get('stores_sent', 0)} STOREs, "
                    f"{dht.get('records_expired', 0)} expired)",
                ),
                (
                    "probe failures / evictions",
                    f"{dht.get('probe_failures', 0)}"
                    f"/{dht.get('contacts_evicted', 0)} "
                    f"({dht.get('pings_sent', 0)} refresh pings)",
                ),
                ("joins via self-lookup", dht.get("joins", 0)),
                (
                    "table census",
                    f"{dht.get('tables_audited', 0)} live tables, "
                    f"{dht.get('contacts', 0)} contacts "
                    f"({dht.get('stale_contacts', 0)} stale, "
                    f"{dht.get('empty_tables', 0)} empty tables)",
                ),
                (
                    "audit lookups",
                    f"{dht.get('audit_lookups_ok', 0)}"
                    f"/{dht.get('audit_lookups', 0)} resolved",
                ),
            ],
        ),
    ]


def _degraded_pct(outcome, kind: str) -> str:
    """Degraded requests as a share of tracked sends for one kind.

    ``outcome.sends`` is the per-kind ``RouterStats.sends`` capture;
    kinds without a send count (or pre-capture outcomes) render ``-``.
    """
    sends = getattr(outcome, "sends", None) or {}
    total = sends.get(kind, 0)
    degraded = outcome.degraded.get(kind, 0)
    if not total and not degraded:
        return "-"
    # Degrades are noted requester-side, so they can outnumber the
    # *observed* sends of their kind (a responder that died before ever
    # sending); the share is capped at 100% rather than extrapolated.
    return f"{degraded / max(total, degraded):.1%}"


def _protocol_recovery_table(outcome) -> str:
    """The per-kind retry/timeout/degraded table both summaries share."""
    kinds = sorted(
        set(outcome.retries) | set(outcome.timeouts) | set(outcome.degraded)
    )
    return _md_table(
        ["message kind", "retries", "timeouts", "degraded", "degraded %"],
        [
            (
                kind,
                outcome.retries.get(kind, 0),
                outcome.timeouts.get(kind, 0),
                outcome.degraded.get(kind, 0),
                _degraded_pct(outcome, kind),
            )
            for kind in kinds
        ]
        or [("(none)", 0, 0, 0, "-")],
    )


def _failure_domain_lines(domains: dict) -> list[str]:
    """The "## Failure domains" section chaos/endurance summaries share."""
    diversity = (
        "restored" if domains.get("diversity_met") else "NOT restored"
    )
    return [
        "",
        "## Failure domains",
        "",
        _md_table(
            ["counter", "value"],
            [
                (
                    "zone outage",
                    f"zone {domains.get('zone_killed', -1)} of "
                    f"{domains.get('zones', 0)} "
                    f"({domains.get('outage_victims', 0)} victims)",
                ),
                (
                    "live zones at audit",
                    f"{domains.get('live_zones', 0)}"
                    f"/{domains.get('zones', 0)}",
                ),
                (
                    "placements short of full spread",
                    domains.get("spread_deficit", 0),
                ),
                (
                    "diversity repairs",
                    domains.get("diversity_repairs", 0),
                ),
                ("**zone diversity**", f"**{diversity}**"),
            ],
        ),
    ]


def render_chaos_summary(outcome) -> str:
    """Markdown post-mortem of one :func:`repro.sim.chaos.run_chaos`."""
    config = outcome.config
    verdict = "restored" if outcome.integrity_restored else "VIOLATED"
    lines = [
        f"# Chaos run (seed {config.seed})",
        "",
        f"- nodes: {config.n_nodes} in {config.n_clusters} clusters, "
        f"r={config.replication}",
        f"- fault rates: drop {config.drop_rate:.0%}, "
        f"duplicate {config.duplicate_rate:.0%}, "
        f"delay {config.delay_rate:.0%} (+{config.delay_seconds:g}s)",
        "- outages: "
        f"crashed {outcome.crashed or 'none'}, "
        f"stalled {outcome.stalled or 'none'}, "
        f"partitioned {outcome.partitioned or 'none'}",
        f"- blocks: {outcome.blocks_produced} produced, "
        f"{outcome.finalized_blocks} finalized everywhere",
        f"- virtual time: {outcome.virtual_seconds:.1f}s over "
        f"{outcome.events_processed} events",
        f"- **cluster integrity: {verdict}** "
        f"({sum(outcome.cluster_integrity.values())}"
        f"/{len(outcome.cluster_integrity)} clusters hold the full ledger)",
        "",
        "## Fault interception",
        "",
        _md_table(
            ["fault", "count"],
            sorted(outcome.fault_stats.items()),
        ),
        "",
        "## Protocol recovery",
        "",
    ]
    lines.append(_protocol_recovery_table(outcome))
    percentiles = getattr(outcome, "latency_percentiles", None)
    if percentiles:
        lines += [
            "",
            "## Delivery latency (virtual time)",
            "",
            _md_table(
                ["message kind", "delivered", "p50", "p95", "p99", "max"],
                [
                    (
                        kind,
                        entry.get("count", 0),
                        format_seconds(entry.get("p50", 0.0)),
                        format_seconds(entry.get("p95", 0.0)),
                        format_seconds(entry.get("p99", 0.0)),
                        format_seconds(entry.get("max", 0.0)),
                    )
                    for kind, entry in sorted(percentiles.items())
                    if entry.get("count", 0)
                ]
                or [("(none)", 0, "-", "-", "-", "-")],
            ),
        ]
    if getattr(outcome, "dht", None):
        lines += _dht_overlay_lines(outcome.dht)
    if getattr(outcome, "domains", None):
        lines += _failure_domain_lines(outcome.domains)
    lines += [
        "",
        "## Exercised under faults",
        "",
        _md_table(
            ["probe", "result"],
            [
                (
                    "queries",
                    f"{outcome.queries_completed}/{outcome.queries_attempted}"
                    f" completed, {outcome.queries_degraded} degraded",
                ),
                (
                    "join bootstrap",
                    "skipped"
                    if outcome.bootstrap_complete is None
                    else (
                        "complete"
                        if outcome.bootstrap_complete
                        else "incomplete"
                    )
                    + f" ({outcome.bootstrap_bodies_unavailable}"
                    " bodies unavailable)",
                ),
                ("bodies refetched at heal", outcome.refetched_bodies),
            ],
        ),
    ]
    return "\n".join(lines) + "\n"


def render_endurance_summary(outcome) -> str:
    """Markdown audit of one :func:`repro.sim.chaos.run_endurance`."""
    config = outcome.config
    verdict = "restored" if outcome.integrity_restored else "VIOLATED"
    floor = "met" if outcome.replica_floor_met else "NOT met"
    repair = outcome.repair
    ttr = outcome.time_to_repair
    lines = [
        f"# Endurance run (seed {config.seed})",
        "",
        f"- nodes: {config.n_nodes} in {config.n_clusters} clusters, "
        f"r={config.replication}",
        f"- fault rates: drop {config.drop_rate:.0%}, "
        f"duplicate {config.duplicate_rate:.0%}, "
        f"delay {config.delay_rate:.0%} (+{config.delay_seconds:g}s)",
        f"- churn: {outcome.joins} joins, {outcome.leaves} leaves, "
        f"{outcome.churn_crashes} crashes "
        f"({outcome.skipped_events} events skipped)",
        "- outages: "
        f"crashed {outcome.outage_crashed or 'none'}, "
        f"partitioned {outcome.partitioned or 'none'}",
        f"- blocks: {outcome.blocks_produced} produced; healing "
        f"converged after {outcome.heal_rounds} sweep rounds",
        f"- virtual time: {outcome.virtual_seconds:.1f}s over "
        f"{outcome.events_processed} events",
        f"- **cluster integrity: {verdict}** "
        f"({sum(outcome.cluster_integrity.values())}"
        f"/{len(outcome.cluster_integrity)} clusters hold the full "
        f"ledger; replication floor {floor})",
        "",
        "## Anti-entropy repair",
        "",
        _md_table(
            ["counter", "value"],
            [
                ("sweeps", repair.get("sweeps", 0)),
                (
                    "digests",
                    f"{repair.get('digests_received', 0)}"
                    f"/{repair.get('digests_requested', 0)} received "
                    f"({repair.get('digest_failures', 0)} failed)",
                ),
                (
                    "under-replication detected",
                    repair.get("under_replicated", 0),
                ),
                (
                    "repairs scheduled",
                    repair.get("repairs_scheduled", 0),
                ),
                (
                    "blocks re-replicated",
                    f"{repair.get('blocks_re_replicated', 0)} "
                    f"({repair.get('bytes_re_replicated', 0)} bytes)",
                ),
                (
                    "repair attempts degraded",
                    repair.get("repairs_degraded", 0),
                ),
                (
                    "deferred by departures",
                    outcome.deferred_blocks,
                ),
                ("unrecoverable", repair.get("unrecoverable", 0)),
                (
                    "time-to-repair p50/p95",
                    f"{format_seconds(ttr.get('p50', 0.0))} / "
                    f"{format_seconds(ttr.get('p95', 0.0))}"
                    if ttr
                    else "-",
                ),
            ],
        ),
        "",
        "## Fault interception",
        "",
        _md_table(
            ["fault", "count"],
            sorted(outcome.fault_stats.items()),
        ),
        "",
        "## Protocol recovery",
        "",
    ]
    lines.append(_protocol_recovery_table(outcome))
    if outcome.latency_percentiles:
        lines += [
            "",
            "## Delivery latency (virtual time)",
            "",
            _md_table(
                ["message kind", "delivered", "p50", "p95", "p99", "max"],
                [
                    (
                        kind,
                        entry.get("count", 0),
                        format_seconds(entry.get("p50", 0.0)),
                        format_seconds(entry.get("p95", 0.0)),
                        format_seconds(entry.get("p99", 0.0)),
                        format_seconds(entry.get("max", 0.0)),
                    )
                    for kind, entry in sorted(
                        outcome.latency_percentiles.items()
                    )
                    if entry.get("count", 0)
                ]
                or [("(none)", 0, "-", "-", "-", "-")],
            ),
        ]
    if outcome.adaptive:
        adaptive = outcome.adaptive
        lines += [
            "",
            "## Adaptive replication",
            "",
            _md_table(
                ["counter", "value"],
                [
                    (
                        "tier census (hot/warm/cold)",
                        f"{adaptive.get('hot_blocks', 0)}"
                        f"/{adaptive.get('warm_blocks', 0)}"
                        f"/{adaptive.get('cold_blocks', 0)}",
                    ),
                    (
                        "heat refreshes",
                        f"{adaptive.get('refreshes', 0)} "
                        f"({adaptive.get('reclassifications', 0)} "
                        "tier changes)",
                    ),
                    (
                        "replicas shed",
                        f"{adaptive.get('replicas_shed', 0)} "
                        f"({adaptive.get('bytes_shed', 0)} bytes)",
                    ),
                    (
                        "sheds blocked at the floor",
                        adaptive.get("sheds_blocked", 0),
                    ),
                    (
                        "floor violations",
                        adaptive.get("floor_violations", 0),
                    ),
                    ("storm reads", adaptive.get("storm_reads", 0)),
                    (
                        "total ledger bytes",
                        outcome.storage_total_bytes,
                    ),
                ],
            ),
        ]
    if outcome.archival:
        archival = outcome.archival
        lines += [
            "",
            "## Archival coding",
            "",
            _md_table(
                ["counter", "value"],
                [
                    (
                        "blocks archived / thawed",
                        f"{archival.get('blocks_archived', 0)}"
                        f"/{archival.get('blocks_thawed', 0)}",
                    ),
                    (
                        "coded entries at end",
                        f"{archival.get('archived_blocks', 0)} "
                        f"({archival.get('chunk_bytes', 0)} chunk bytes)",
                    ),
                    (
                        "chunks placed / repaired",
                        f"{archival.get('chunks_placed', 0)}"
                        f"/{archival.get('chunks_repaired', 0)}",
                    ),
                    (
                        "lazy reconstructions",
                        f"{archival.get('reconstructions', 0)} "
                        f"({archival.get('failed_reconstructions', 0)} "
                        "failed)",
                    ),
                    (
                        "replica bytes freed",
                        archival.get("replica_bytes_freed", 0),
                    ),
                    (
                        "chunk bytes read (amplification)",
                        archival.get("chunk_bytes_read", 0),
                    ),
                    (
                        "floor deficits seen in sweeps",
                        archival.get("floor_deficits", 0),
                    ),
                ],
            ),
        ]
    if getattr(outcome, "dht", None):
        lines += _dht_overlay_lines(outcome.dht)
    if getattr(outcome, "domains", None):
        lines += _failure_domain_lines(outcome.domains)
    lines += [
        "",
        "## Exercised after heal",
        "",
        _md_table(
            ["probe", "result"],
            [
                (
                    "queries",
                    f"{outcome.queries_completed}/{outcome.queries_attempted}"
                    f" completed, {outcome.queries_degraded} degraded",
                ),
            ],
        ),
    ]
    return "\n".join(lines) + "\n"


#: Eight-level activity sparkline glyphs for node timelines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(counts) -> str:
    peak = max(counts, default=0)
    if peak == 0:
        return "·" * len(counts)
    return "".join(
        "·" if count == 0
        else _SPARK_BLOCKS[
            min((count * len(_SPARK_BLOCKS)) // peak,
                len(_SPARK_BLOCKS) - 1)
        ]
        for count in counts
    )


def render_trace_summary(summary, title: str = "Trace summary") -> str:
    """Markdown view of one :class:`repro.obs.summary.TraceSummary`.

    Three tables: per-message-kind queue-latency percentiles (virtual
    time), per-node send/receive/bytes timelines (with an activity
    sparkline over the trace's virtual-time span), and the phase spans.
    """
    lines = [
        f"# {title}",
        "",
        f"- events: {summary.events} retained "
        f"({summary.recorded} recorded, {summary.evicted} evicted)",
        f"- virtual span: {format_seconds(summary.span_seconds)} "
        f"(from {summary.t_start:.3f}s to {summary.t_end:.3f}s)",
        "",
        "## Delivery latency by message kind (virtual time)",
        "",
    ]
    latency_rows = [
        (
            latency.kind,
            latency.count,
            format_seconds(latency.p50),
            format_seconds(latency.p95),
            format_seconds(latency.p99),
            format_seconds(latency.max),
            latency.unmatched,
        )
        for _, latency in sorted(summary.kinds.items())
        if latency.count
    ]
    lines.append(
        _md_table(
            ["message kind", "delivered", "p50", "p95", "p99", "max",
             "unmatched"],
            latency_rows or [("(none)", 0, "-", "-", "-", "-", 0)],
        )
    )
    if summary.nodes:
        lines += ["", "## Per-node timelines", ""]
        node_rows = []
        single_label = (
            len({node.label for node in summary.nodes.values()}) <= 1
        )
        for key in sorted(
            summary.nodes,
            key=lambda k: (summary.nodes[k].label, summary.nodes[k].node_id),
        ):
            node = summary.nodes[key]
            name = (
                str(node.node_id)
                if single_label
                else f"{node.label}/{node.node_id}"
            )
            node_rows.append(
                (
                    name,
                    node.sends,
                    node.receives,
                    format_bytes(node.bytes_sent),
                    format_bytes(node.bytes_received),
                    f"`{_sparkline(node.timeline)}`",
                )
            )
        lines.append(
            _md_table(
                ["node", "sends", "recvs", "bytes out", "bytes in",
                 "activity"],
                node_rows,
            )
        )
    if summary.phases:
        lines += ["", "## Phases", ""]
        lines.append(
            _md_table(
                ["phase", "start", "duration"],
                [
                    (name, f"{start:.3f}s", format_seconds(dur))
                    for name, start, dur in summary.phases
                ],
            )
        )
    return "\n".join(lines) + "\n"


def render_trace_profile(
    profiles, title: str = "Callback wall-cost profile"
) -> str:
    """Ranked markdown table of per-callback wall cost.

    ``profiles`` is the output of
    :func:`repro.obs.profile.profile_chrome_trace`: one row per callback
    qualname, already sorted by descending total wall cost.  The share
    column is each row's fraction of the summed wall time, so the table
    reads as "where did this run's real time go".
    """
    lines = [f"# {title}", ""]
    if not profiles:
        lines += [
            "No callback spans in this trace (recorded with "
            "`--no-callback-spans`?).",
        ]
        return "\n".join(lines) + "\n"
    grand_total = sum(p.total_us for p in profiles) or 1.0
    rows = [
        (
            f"`{p.name}`",
            p.calls,
            f"{p.total_us / 1e3:.2f}",
            f"{p.mean_us:.1f}",
            f"{p.max_us:.1f}",
            f"{100.0 * p.total_us / grand_total:.1f}%",
        )
        for p in profiles
    ]
    lines += [
        f"- callbacks: {sum(p.calls for p in profiles)} calls across "
        f"{len(profiles)} distinct handlers",
        f"- total wall: {grand_total / 1e3:.2f} ms",
        "",
        _md_table(
            ["callback", "calls", "total ms", "mean us", "max us",
             "share"],
            rows,
        ),
    ]
    return "\n".join(lines) + "\n"


def _section_events(deployment) -> str:
    metrics = deployment.metrics
    rows = []
    for join in metrics.bootstraps:
        rows.append(
            (
                "join",
                join.node_id,
                format_bytes(join.total_bytes),
                format_seconds(join.duration) if join.duration else "-",
                "complete" if join.complete else "PENDING",
            )
        )
    for departure in metrics.departures:
        rows.append(
            (
                "leave" if departure.graceful else "crash",
                departure.node_id,
                format_bytes(departure.bytes_moved),
                format_seconds(departure.duration)
                if departure.duration is not None
                else "-",
                f"{len(departure.lost_blocks)} lost"
                if departure.lost_blocks
                else "complete",
            )
        )
    if not rows:
        return ""
    return "## Membership events\n\n" + _md_table(
        ["event", "node", "bytes", "duration", "status"], rows
    )
