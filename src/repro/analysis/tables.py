"""Result tables: fixed-width text renderings of experiment output.

Benches print through these helpers so every experiment's output has the
same shape as the paper's tables: one row per configuration, aligned
columns, explicit units.
"""

from __future__ import annotations

from typing import Sequence


def format_bytes(count: float) -> str:
    """Human bytes with binary prefixes (two significant decimals)."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(size) < 1024.0 or unit == "TiB":
            return f"{size:,.2f} {unit}"
        size /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human latency: ms below a second, seconds above."""
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Numeric cells are right-aligned, text cells left-aligned; the caller
    pre-formats units (see :func:`format_bytes` / :func:`format_seconds`).
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def align(value: str, index: int, original: object) -> str:
        """Right-align numbers, left-align text."""
        if isinstance(original, (int, float)):
            return value.rjust(widths[index])
        return value.ljust(widths[index])

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row, raw in zip(cells, rows):
        lines.append(
            "  ".join(
                align(value, index, raw[index])
                for index, value in enumerate(row)
            )
        )
    return "\n".join(lines)


def render_ratio_row(
    label: str, value: float, reference: float
) -> tuple[str, str, str]:
    """A ``(label, value, percent-of-reference)`` row for ratio tables."""
    percent = 100.0 * value / reference if reference else float("nan")
    return (label, format_bytes(value), f"{percent:.1f}%")
