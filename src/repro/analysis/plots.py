"""ASCII line/bar plots for figure-style experiment output.

The benches regenerate the paper's *figures* as text series plus a small
ASCII rendering — good enough to eyeball the curve shapes (linear growth,
1/m decay, crossovers) in CI logs without a display server.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def ascii_series(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more y-series against shared x values.

    Each series gets a distinct glyph; axes are annotated with min/max.

    Raises:
        ConfigurationError: on empty/ragged input.
    """
    if not xs or not series:
        raise ConfigurationError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} length {len(ys)} != x length {len(xs)}"
            )
    glyphs = "*o+x#@%&"
    x_min, x_max = min(xs), max(xs)
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(sorted(series.items())):
        glyph = glyphs[index % len(glyphs)]
        for x, y in zip(xs, ys):
            column = int((x - x_min) / x_span * (width - 1))
            row = int((y - y_min) / y_span * (height - 1))
            grid[height - 1 - row][column] = glyph

    lines = [f"{y_label}  (top={y_max:g}, bottom={y_min:g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must align")
    if not labels:
        raise ConfigurationError("nothing to plot")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(value / peak * width), 1 if value > 0 else 0)
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)
