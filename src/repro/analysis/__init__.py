"""Analysis: result tables, ASCII plots, summary statistics."""

from repro.analysis.plots import ascii_bars, ascii_series
from repro.analysis.stats import (
    Summary,
    geometric_mean,
    percentile,
    relative_error,
    summarize,
)
from repro.analysis.tables import (
    format_bytes,
    format_seconds,
    render_ratio_row,
    render_table,
)

__all__ = [
    "ascii_bars",
    "ascii_series",
    "Summary",
    "geometric_mean",
    "percentile",
    "relative_error",
    "summarize",
    "format_bytes",
    "format_seconds",
    "render_ratio_row",
    "render_table",
]
