"""Clustering: formation algorithms, membership tables, coordinates."""

from repro.clustering.algorithms import (
    ClusteringAlgorithm,
    KMeansClustering,
    LatencyAwareGreedyClustering,
    RandomBalancedClustering,
    clusters_for_target_size,
)
from repro.clustering.coordinates import (
    Coordinate,
    centroid,
    distance,
    mean_pairwise_distance,
    place_regions,
    place_uniform,
)
from repro.clustering.membership import ClusterTable, ClusterView
from repro.clustering.vivaldi import VivaldiEstimator, embedding_quality

__all__ = [
    "ClusteringAlgorithm",
    "KMeansClustering",
    "LatencyAwareGreedyClustering",
    "RandomBalancedClustering",
    "clusters_for_target_size",
    "Coordinate",
    "centroid",
    "distance",
    "mean_pairwise_distance",
    "place_regions",
    "place_uniform",
    "ClusterTable",
    "ClusterView",
    "VivaldiEstimator",
    "embedding_quality",
]
